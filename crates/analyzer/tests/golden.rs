//! Golden test for the JSON report shape.
//!
//! The JSON output is the analyzer's machine interface (CI consumes it); this
//! test pins it byte-for-byte over the full fixture set, so any change to the
//! shape — field names, ordering, escaping, waiver accounting — is a conscious,
//! reviewed diff of `fixtures/golden_report.json`.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! BLESS=1 cargo test -p stat-analyzer --test golden
//! ```

use std::fs;
use std::path::Path;

use stat_analyzer::{analyze_sources, Config};

#[test]
fn fixture_report_matches_golden_json() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("list fixtures/")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 6,
        "expected one fixture per lint plus the waiver fixture, found {names:?}"
    );
    let sources: Vec<(String, String)> = names
        .iter()
        .map(|n| {
            let src = fs::read_to_string(dir.join(n)).expect("read fixture");
            (format!("fixtures/{n}"), src)
        })
        .collect();
    let json = analyze_sources(&sources, &Config::fixtures()).json();

    let golden_path = dir.join("golden_report.json");
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden_path, &json).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\n(run `BLESS=1 cargo test -p stat-analyzer --test golden` to create it)",
            golden_path.display()
        )
    });
    assert_eq!(
        json, golden,
        "JSON report drifted from the golden; if intentional, re-bless with \
         `BLESS=1 cargo test -p stat-analyzer --test golden` and review the diff"
    );
}
