//! Per-lint expectations over the intentionally-bad fixture files.
//!
//! Each fixture under `fixtures/` packs one lint's flagged shapes next to the
//! near-miss shapes it must stay quiet on; these tests pin the exact finding
//! counts so a lint that goes blind (or trigger-happy) fails loudly, with the
//! full report in the assertion message.

use std::fs;
use std::path::Path;

use stat_analyzer::{analyze_sources, Config, Report};

fn analyze_fixture(name: &str) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    analyze_sources(&[(format!("fixtures/{name}"), src)], &Config::fixtures())
}

fn count(report: &Report, lint: &str) -> usize {
    report.findings.iter().filter(|f| f.lint == lint).count()
}

fn used(report: &Report, lint: &str) -> usize {
    report
        .waivers
        .iter()
        .find(|w| w.lint == lint)
        .map(|w| w.used)
        .unwrap_or(0)
}

#[test]
fn hot_path_panic_fixture() {
    let report = analyze_fixture("hot_path_panic.rs");
    assert_eq!(
        count(&report, "hot-path-panic"),
        6,
        "unwrap, expect, panic!, todo!, unreachable!, and one index:\n{}",
        report.human()
    );
    assert_eq!(report.findings.len(), 6, "{}", report.human());
    assert_eq!(used(&report, "hot-path-panic"), 1, "the waived index");
}

#[test]
fn condvar_discipline_fixture() {
    let report = analyze_fixture("condvar_discipline.rs");
    assert_eq!(
        count(&report, "condvar-discipline"),
        2,
        "the lone Condvar and the naked wait:\n{}",
        report.human()
    );
    assert_eq!(report.findings.len(), 2, "{}", report.human());
}

#[test]
fn lock_hold_hygiene_fixture() {
    let report = analyze_fixture("lock_hold_hygiene.rs");
    assert_eq!(
        count(&report, "lock-hold-hygiene"),
        1,
        "only the call under the live guard:\n{}",
        report.human()
    );
    assert_eq!(report.findings.len(), 1, "{}", report.human());
}

#[test]
fn discarded_result_fixture() {
    let report = analyze_fixture("discarded_result.rs");
    assert_eq!(
        count(&report, "discarded-result"),
        2,
        "the `let _ =` and the bare statement:\n{}",
        report.human()
    );
    assert_eq!(report.findings.len(), 2, "{}", report.human());
}

#[test]
fn truncating_cast_fixture() {
    let report = analyze_fixture("truncating_cast.rs");
    assert_eq!(
        count(&report, "truncating-cast"),
        2,
        "the two bare narrowings (not the widening, waived cast, or use-rename):\n{}",
        report.human()
    );
    assert_eq!(report.findings.len(), 2, "{}", report.human());
    assert_eq!(used(&report, "truncating-cast"), 1);
}

#[test]
fn waiver_machinery_fixture() {
    let report = analyze_fixture("waivers.rs");
    assert_eq!(count(&report, "unused-waiver"), 1, "{}", report.human());
    assert_eq!(count(&report, "invalid-waiver"), 1, "{}", report.human());
    assert_eq!(
        count(&report, "hot-path-panic"),
        1,
        "a bare allow() must NOT suppress — the unwrap it decorated survives:\n{}",
        report.human()
    );
    assert_eq!(report.findings.len(), 3, "{}", report.human());
    assert_eq!(
        used(&report, "hot-path-panic"),
        2,
        "the trailing line waiver and the fn-scope waiver"
    );
}
