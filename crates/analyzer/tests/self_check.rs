//! The analyzer run over the live workspace, as a test.
//!
//! This is the same analysis CI runs via `cargo run -p stat-analyzer -- --deny`,
//! wired into `cargo test` so a hot-path panic or lock-discipline regression
//! fails the ordinary test suite too — nobody has to remember the extra command.

use std::path::Path;

use stat_analyzer::{analyze_sources, discover_workspace_files, Config};

#[test]
fn the_workspace_is_clean_under_the_committed_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let sources = discover_workspace_files(&root).expect("discover workspace sources");
    assert!(
        sources.len() > 50,
        "discovery looks broken: only {} files found under {}",
        sources.len(),
        root.display()
    );
    let report = analyze_sources(&sources, &Config::workspace());
    assert!(
        report.is_clean(),
        "the workspace has unwaived findings or blown waiver budgets:\n{}",
        report.human()
    );
    // Budgets are pinned to the exact current usage: a deleted waiver must
    // shrink its budget in config.rs (and results/ANALYSIS.md) in the same diff,
    // so the committed inventory never overstates how much is waived.
    for w in &report.waivers {
        assert_eq!(
            w.used, w.budget,
            "waiver budget for `{}` is {} but only {} are in use; \
             tighten Config::workspace() to match",
            w.lint, w.budget, w.used
        );
    }
}
