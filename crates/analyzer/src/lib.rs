//! `stat-analyzer` — the workspace's source-level static-analysis pass.
//!
//! The SC'08 paper's core claim is that a debugger for 208K cores must itself be
//! engineered to survive 208K cores: the tool cannot panic, convoy, or silently
//! drop errors at the exact moment it is diagnosing someone else's panic, convoy
//! or dropped error.  This crate turns that claim into a CI gate.  It carries a
//! small hand-rolled Rust lexer (no `syn`; the container is offline and the
//! vendored dependency set is fixed), a line classifier that understands
//! `#[cfg(test)]` regions, and five token-level lints aimed at the TBON hot path:
//!
//! | lint | rule |
//! |------|------|
//! | `hot-path-panic`    | no `unwrap`/`expect`/`panic!`-family/slice-index in designated hot-path modules |
//! | `condvar-discipline`| `Condvar::wait` sits in a predicate loop; condvar declared beside its mutex |
//! | `lock-hold-hygiene` | no `dyn`-trait (user filter) call while a `MutexGuard` is live |
//! | `discarded-result`  | no `let _ =` / bare-statement discard of fallible calls |
//! | `truncating-cast`   | no bare narrowing `as` casts in the word-math modules |
//!
//! Findings are suppressed only by an inline waiver carrying a reason —
//! `// stat-analyzer: allow(<lint>) — <why this site is sound>` — and the total
//! waiver count per lint is capped by a committed budget
//! ([`config::Config::waiver_budgets`]), so the analyzer can only be silenced by
//! a reviewed diff.  Run it as `cargo run -p stat-analyzer -- --deny`.

pub mod config;
pub mod driver;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod source;
pub mod waiver;

pub use config::Config;
pub use driver::{analyze_paths, analyze_sources, discover_workspace_files};
pub use report::{Finding, Report, WaiverUsage};
