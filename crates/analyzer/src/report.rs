//! Findings and report assembly: human-readable and JSON output.
//!
//! The JSON shape is the stable machine interface (golden-tested); the human
//! report is for terminal use and may evolve freely.  Both are deterministic:
//! findings sort by `(file, line, lint, message)` and waiver accounting follows
//! registry order, so the same tree always produces byte-identical output.

use crate::source::SourceFile;

/// One lint hit at a specific source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The lint id (kebab-case, as registered).
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Why this is a problem and what to do instead.
    pub message: String,
    /// The trimmed source line, for context in reports.
    pub snippet: String,
}

impl Finding {
    /// Build a finding against `file` at `line`, capturing the line text as the
    /// snippet.
    pub fn new(lint: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
        Finding {
            lint,
            file: file.rel_path.clone(),
            line,
            message,
            snippet: file.line_text(line).trim().to_string(),
        }
    }
}

/// Waiver accounting for one lint: how many waivers are in use vs. allowed.
#[derive(Clone, Debug)]
pub struct WaiverUsage {
    /// The lint id.
    pub lint: String,
    /// Waivers actually suppressing a finding somewhere in the tree.
    pub used: usize,
    /// The committed budget from [`crate::config::Config::waiver_budgets`].
    pub budget: usize,
}

impl WaiverUsage {
    /// Whether use exceeds the committed budget.
    pub fn over_budget(&self) -> bool {
        self.used > self.budget
    }
}

/// The assembled result of an analyzer run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Unwaived findings, sorted by `(file, line, lint, message)`.
    pub findings: Vec<Finding>,
    /// Per-lint waiver accounting, in registry order.
    pub waivers: Vec<WaiverUsage>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Clean means zero findings and every lint within its waiver budget.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && !self.waivers.iter().any(WaiverUsage::over_budget)
    }

    /// Canonical ordering; called once by the driver after all files are merged.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.lint, a.message.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.lint,
                b.message.as_str(),
            ))
        });
    }

    /// Render the terminal report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.lint, f.message
            ));
            if !f.snippet.is_empty() {
                out.push_str(&format!("    | {}\n", f.snippet));
            }
        }
        let usage: Vec<String> = self
            .waivers
            .iter()
            .map(|w| {
                let mark = if w.over_budget() { " OVER BUDGET" } else { "" };
                format!("{} {}/{}{}", w.lint, w.used, w.budget, mark)
            })
            .collect();
        out.push_str(&format!(
            "stat-analyzer: {} file(s), {} finding(s); waivers: {}\n",
            self.files_scanned,
            self.findings.len(),
            usage.join(", ")
        ));
        out
    }

    /// Render the machine report (stable shape, golden-tested).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \
                 \"snippet\": {}}}",
                json_str(f.lint),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                json_str(&f.snippet),
            ));
        }
        if self.findings.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": {}, \"used\": {}, \"budget\": {}}}",
                json_str(&w.lint),
                w.used,
                w.budget,
            ));
        }
        if self.waivers.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, lint: &'static str) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            message: "m".to_string(),
            snippet: "s".to_string(),
        }
    }

    #[test]
    fn sort_orders_by_file_then_line_then_lint() {
        let mut r = Report {
            findings: vec![
                finding("b.rs", 1, "a-lint"),
                finding("a.rs", 9, "z-lint"),
                finding("a.rs", 9, "a-lint"),
                finding("a.rs", 2, "z-lint"),
            ],
            waivers: vec![],
            files_scanned: 2,
        };
        r.sort();
        let order: Vec<(String, u32, &str)> = r
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.lint))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2, "z-lint"),
                ("a.rs".to_string(), 9, "a-lint"),
                ("a.rs".to_string(), 9, "z-lint"),
                ("b.rs".to_string(), 1, "a-lint"),
            ]
        );
    }

    #[test]
    fn clean_requires_no_findings_and_budgets_met() {
        let mut r = Report {
            findings: vec![],
            waivers: vec![WaiverUsage {
                lint: "x".to_string(),
                used: 1,
                budget: 1,
            }],
            files_scanned: 1,
        };
        assert!(r.is_clean());
        r.waivers[0].used = 2;
        assert!(!r.is_clean());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_is_well_formed_when_empty() {
        let r = Report {
            findings: vec![],
            waivers: vec![],
            files_scanned: 0,
        };
        let j = r.json();
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"clean\": true"));
    }
}
