//! The analysis driver: file discovery, lint execution, waiver application and
//! budget accounting.
//!
//! Lints emit *raw* findings; the driver is the only place that consults waivers.
//! A waiver that suppresses at least one finding is "used" and counts against its
//! lint's budget; a waiver that suppresses nothing becomes an `unused-waiver`
//! finding (stale waivers rot into lies), and a malformed waiver comment becomes
//! an `invalid-waiver` finding.  Neither pseudo-lint is itself waivable.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::lints::{registry, INVALID_WAIVER, UNUSED_WAIVER};
use crate::report::{Finding, Report, WaiverUsage};
use crate::source::SourceFile;

/// Directory names never descended into during discovery.
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "fixtures", "tests", "examples", "benches", ".git",
];

/// Analyze a set of `(relative path, source)` pairs under one policy.
pub fn analyze_sources(sources: &[(String, String)], config: &Config) -> Report {
    let lints = registry();
    let known: Vec<&'static str> = lints.iter().map(|l| l.id()).collect();
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    let mut used_by_lint: Vec<(String, usize)> = Vec::new();
    for (rel, src) in sources {
        let file = SourceFile::parse(rel, src, &known);
        let mut raw = Vec::new();
        for lint in &lints {
            lint.check(&file, config, &mut raw);
        }
        let mut used = vec![false; file.waivers.len()];
        for finding in raw {
            match file
                .waivers
                .iter()
                .position(|w| w.suppresses(finding.lint, finding.line))
            {
                Some(ix) => used[ix] = true,
                None => report.findings.push(finding),
            }
        }
        for (ix, waiver) in file.waivers.iter().enumerate() {
            if used[ix] {
                match used_by_lint.iter_mut().find(|(l, _)| *l == waiver.lint) {
                    Some((_, n)) => *n += 1,
                    None => used_by_lint.push((waiver.lint.clone(), 1)),
                }
            } else {
                report.findings.push(Finding::new(
                    UNUSED_WAIVER,
                    &file,
                    waiver.line,
                    format!(
                        "waiver for `{}` suppresses nothing: stale waivers misdocument the \
                         code; delete it (or fix the lint id/scope)",
                        waiver.lint
                    ),
                ));
            }
        }
        for (line, why) in &file.invalid_waivers {
            report.findings.push(Finding::new(
                INVALID_WAIVER,
                &file,
                *line,
                format!("malformed stat-analyzer waiver: {why}"),
            ));
        }
    }
    for lint in &lints {
        let used = used_by_lint
            .iter()
            .find(|(l, _)| l == lint.id())
            .map(|(_, n)| *n)
            .unwrap_or(0);
        report.waivers.push(WaiverUsage {
            lint: lint.id().to_string(),
            used,
            budget: config.budget(lint.id()),
        });
    }
    report.sort();
    report
}

/// Discover first-party sources under `root`: every `.rs` file beneath `crates/`
/// and `src/`, excluding `SKIP_DIRS` (vendored deps, build output, integration
/// tests, fixtures).  Paths come back sorted and workspace-relative.
pub fn discover_workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(sources)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyze explicit files (absolute or cwd-relative) under one policy; `root` is
/// only used to relativize paths for the report.
pub fn analyze_paths(paths: &[PathBuf], root: &Path, config: &Config) -> io::Result<Report> {
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        sources.push((rel, src));
    }
    Ok(analyze_sources(&sources, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all_hot() -> Config {
        let mut cfg = Config::workspace();
        cfg.hot_path_modules = vec![".rs".to_string()];
        cfg.waiver_budgets = vec![("hot-path-panic".to_string(), 8)];
        cfg
    }

    #[test]
    fn a_waived_finding_is_suppressed_and_counted() {
        let src = "fn f() {\n  x.unwrap(); // stat-analyzer: allow(hot-path-panic) — \
                   checked two lines up\n}\n";
        let report = analyze_sources(&[("crates/a/src/l.rs".into(), src.into())], &cfg_all_hot());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        let usage = report
            .waivers
            .iter()
            .find(|w| w.lint == "hot-path-panic")
            .unwrap();
        assert_eq!(usage.used, 1);
        assert!(report.is_clean());
    }

    #[test]
    fn an_unused_waiver_is_a_finding() {
        let src = "// stat-analyzer: allow(hot-path-panic) — nothing here\nfn f() {}\n";
        let report = analyze_sources(&[("crates/a/src/l.rs".into(), src.into())], &cfg_all_hot());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].lint, UNUSED_WAIVER);
        assert!(!report.is_clean());
    }

    #[test]
    fn a_malformed_waiver_is_a_finding() {
        let src = "fn f() {\n  x.unwrap(); // stat-analyzer: allow(hot-path-panic)\n}\n";
        let report = analyze_sources(&[("crates/a/src/l.rs".into(), src.into())], &cfg_all_hot());
        assert!(report.findings.iter().any(|f| f.lint == INVALID_WAIVER));
        // The bare allow does NOT suppress: the unwrap finding survives too.
        assert!(report.findings.iter().any(|f| f.lint == "hot-path-panic"));
    }

    #[test]
    fn budget_breach_makes_the_report_dirty() {
        let mut cfg = cfg_all_hot();
        cfg.waiver_budgets = vec![("hot-path-panic".to_string(), 0)];
        let src = "fn f() {\n  x.unwrap(); // stat-analyzer: allow(hot-path-panic) — reason\n}\n";
        let report = analyze_sources(&[("crates/a/src/l.rs".into(), src.into())], &cfg);
        assert!(report.findings.is_empty());
        assert!(
            !report.is_clean(),
            "over-budget waiver use must fail --deny"
        );
    }

    #[test]
    fn findings_from_many_files_come_back_sorted() {
        let bad = "fn f() { x.unwrap(); }\n".to_string();
        let report = analyze_sources(
            &[
                ("crates/b/src/z.rs".into(), bad.clone()),
                ("crates/a/src/a.rs".into(), bad),
            ],
            &cfg_all_hot(),
        );
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].file < report.findings[1].file);
    }
}
