//! Lint: **condvar-discipline** — every wait sits in a predicate loop, every
//! condvar is declared beside its mutex.
//!
//! The pooled reduction walk parks workers on a `Condvar`; the instruction-driven
//! multicore-debugging literature (PAPERS.md) singles out synchronisation points
//! as the thing worth checking mechanically, and the rules here are the two that
//! keep the pool deadlock-free:
//!
//! 1. `Condvar::wait` returns on spurious wakeups, so a wait that is not
//!    re-checking its predicate inside a `loop`/`while` is a latent lost-wakeup
//!    hang — at scale, indistinguishable from the application hang under
//!    diagnosis.  (`wait_while`/`wait_timeout_while` loop internally and are
//!    accepted anywhere.)
//! 2. A `Condvar` must be *declared together with* the `Mutex` guarding its
//!    predicate (same tuple, same struct, same statement) so the pairing is
//!    visible where the types are chosen, not four files away.

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::Finding;
use crate::source::SourceFile;

use super::Lint;

/// See the module docs.
pub struct CondvarDiscipline;

const ID: &str = "condvar-discipline";

/// How many lines around a `Condvar` mention may contain its `Mutex` partner for
/// the declaration to count as "declared together".
const PAIR_WINDOW: u32 = 2;

impl Lint for CondvarDiscipline {
    fn id(&self) -> &'static str {
        ID
    }

    fn summary(&self) -> &'static str {
        "Condvar::wait must sit in a predicate loop; Condvar and its Mutex are declared together"
    }

    fn check(&self, file: &SourceFile, _config: &Config, out: &mut Vec<Finding>) {
        self.check_waits(file, out);
        self.check_pairing(file, out);
    }
}

impl CondvarDiscipline {
    fn check_waits(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        // Track brace blocks; a block is "looping" if its header (the tokens since
        // the previous `;`/`{`/`}`) contains `loop`, `while` or `for`.
        let mut stack: Vec<bool> = Vec::new();
        let mut header_start = 0usize;
        for (i, token) in file.tokens.iter().enumerate() {
            match &token.tok {
                Tok::Punct('{') => {
                    let looping = file.tokens[header_start..i].iter().any(|t| {
                        matches!(&t.tok, Tok::Ident(w) if w == "loop" || w == "while" || w == "for")
                    });
                    stack.push(looping);
                    header_start = i + 1;
                }
                Tok::Punct('}') => {
                    stack.pop();
                    header_start = i + 1;
                }
                Tok::Punct(';') => header_start = i + 1,
                Tok::Ident(name) if name == "wait" || name == "wait_timeout" => {
                    let is_method = i > 0 && file.punct(i - 1) == Some('.');
                    let is_call = file.punct(i + 1) == Some('(');
                    if is_method && is_call && !file.is_test(i) && !stack.iter().any(|&l| l) {
                        out.push(Finding::new(
                            ID,
                            file,
                            token.line,
                            format!(
                                ".{name}() outside a predicate loop: Condvar waits return on \
                                 spurious wakeups, so re-check the predicate in a loop/while \
                                 (or use wait_while)"
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    fn check_pairing(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let mutex_lines: Vec<u32> = file
            .tokens
            .iter()
            .filter(|t| matches!(&t.tok, Tok::Ident(n) if n == "Mutex" || n == "RwLock"))
            .map(|t| t.line)
            .collect();
        for (i, token) in file.tokens.iter().enumerate() {
            let Tok::Ident(name) = &token.tok else {
                continue;
            };
            if name != "Condvar" || file.is_test(i) {
                continue;
            }
            let line = token.line;
            let paired = mutex_lines.iter().any(|&m| m.abs_diff(line) <= PAIR_WINDOW);
            if !paired {
                out.push(Finding::new(
                    ID,
                    file,
                    line,
                    "Condvar declared away from its Mutex: declare the guard pair together \
                     (same tuple/struct/statement) so the predicate they protect is auditable"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/x/src/a.rs", src, &[ID]);
        let mut out = Vec::new();
        CondvarDiscipline.check(&file, &Config::workspace(), &mut out);
        out
    }

    #[test]
    fn wait_in_loop_is_clean() {
        let src = "fn f(pair: &(Mutex<bool>, Condvar)) {\n  let (m, cv) = pair;\n  \
                   let mut g = m.lock().ok();\n  loop {\n    if done { break; }\n    \
                   g = cv.wait(g).ok();\n  }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn wait_in_while_predicate_is_clean() {
        let src = "fn f() { while !*started { started = cv.wait(started).ok(); } }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn naked_wait_is_flagged() {
        let src = "fn f(pair: &(Mutex<bool>, Condvar)) {\n  let g = pair.0.lock().ok();\n  \
                   if !done {\n    let _g = pair.1.wait(g);\n  }\n}\n";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("spurious"));
    }

    #[test]
    fn wait_while_is_accepted_anywhere() {
        let src = "fn f() { let g = cv.wait_while(g, |q| q.is_empty()).ok(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lone_condvar_declaration_is_flagged() {
        let src = "struct Pool {\n  queue: Vec<u64>,\n  cv: Condvar,\n}\n\nstruct Elsewhere {\n  \
                   m: Mutex<u64>,\n}\n";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("guard pair"));
    }

    #[test]
    fn paired_declaration_is_clean() {
        let src = "let queue = (Mutex::new(Q::default()), Condvar::new());\n";
        assert!(run(src).is_empty());
    }
}
