//! Lint: **hot-path-panic** — panic-freedom on the TBON hot path.
//!
//! At 208K cores a tool-side panic is indistinguishable from the hang the tool is
//! diagnosing (and under the pooled reduction walk it can strand the level barrier
//! as a deadlock).  The modules designated hot-path in the [`Config`] — the
//! network walk, the packet layer, the prefix tree, the task-set word math and the
//! wire codec — must therefore report typed errors instead of panicking: no
//! `unwrap`/`expect`, no `panic!`/`todo!`/`unreachable!`/`unimplemented!`, and no
//! unwaived slice/array indexing (every `x[i]` is a hidden `panic!`).
//!
//! `#[cfg(test)]` code is exempt; everything else either gets a typed error path
//! or carries a waiver whose reason states the invariant that makes the site
//! infallible.

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::Finding;
use crate::source::SourceFile;

use super::{is_keyword, Lint};

/// See the module docs.
pub struct HotPathPanic;

const ID: &str = "hot-path-panic";

impl Lint for HotPathPanic {
    fn id(&self) -> &'static str {
        ID
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/slice-index in designated hot-path modules"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
        if !config.is_hot_path(&file.rel_path) {
            return;
        }
        for (i, token) in file.tokens.iter().enumerate() {
            if file.is_test(i) {
                continue;
            }
            match &token.tok {
                Tok::Ident(name) if name == "unwrap" || name == "expect" => {
                    // Only the method form `.unwrap()` / `.expect(` — identifiers
                    // like `unwrap_or` lex as distinct tokens and never match.
                    let is_method = i > 0 && file.punct(i - 1) == Some('.');
                    let is_call = file.punct(i + 1) == Some('(');
                    if is_method && is_call {
                        out.push(Finding::new(
                            ID,
                            file,
                            token.line,
                            format!(
                                ".{name}() on the hot path: a failed {name} is a tool panic at \
                                 scale; return a typed error (TbonError/StatError/DecodeError) \
                                 or waive with the invariant that makes it infallible"
                            ),
                        ));
                    }
                }
                Tok::Ident(name)
                    if matches!(
                        name.as_str(),
                        "panic" | "todo" | "unimplemented" | "unreachable"
                    ) && file.punct(i + 1) == Some('!') =>
                {
                    out.push(Finding::new(
                        ID,
                        file,
                        token.line,
                        format!(
                            "{name}! on the hot path: the tool must degrade to a typed \
                             error, never abort mid-reduction"
                        ),
                    ));
                }
                Tok::Punct('[') if is_index_expression(file, i) => {
                    out.push(Finding::new(
                        ID,
                        file,
                        token.line,
                        "slice/array index on the hot path is a hidden panic!: use \
                         .get()/.get_mut() with a typed error, or waive with the bound \
                         that keeps the index in range"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Whether the `[` at `i` starts an index (or slicing) expression rather than an
/// array type/literal, attribute, or macro delimiter: true when the previous token
/// could end an expression (identifier that is not a keyword, `)`, `]`, or a
/// literal).
fn is_index_expression(file: &SourceFile, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &file.tokens[i - 1].tok {
        Tok::Ident(prev) => !is_keyword(prev),
        Tok::Punct(')') | Tok::Punct(']') => true,
        Tok::Str | Tok::Num(_) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/x/src/hot.rs", src, &[ID]);
        let mut cfg = Config::workspace();
        cfg.hot_path_modules = vec!["hot.rs".to_string()];
        let mut out = Vec::new();
        HotPathPanic.check(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn flags_the_panicking_family() {
        let findings = run(
            "fn f() {\n  x.unwrap();\n  y.expect(\"m\");\n  panic!(\"no\");\n  todo!();\n  \
             unreachable!();\n}\n",
        );
        assert_eq!(findings.len(), 5);
    }

    #[test]
    fn flags_indexing_but_not_types_or_macros() {
        let findings = run(
            "fn f(v: &[u64], m: &mut [u64]) -> [u8; 4] {\n  let a = v[0];\n  let b = v[1..3];\n  \
             let c: Vec<u64> = vec![0; 4];\n  let d = [1, 2];\n  let e = (x)[0];\n  d\n}\n",
        );
        // v[0], v[1..3], (x)[0] — not the param types, vec![..], or the array literal.
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(run("fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run("#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); v[0]; }\n}\n").is_empty());
    }

    #[test]
    fn non_hot_path_files_are_ignored() {
        let file = SourceFile::parse("crates/x/src/cold.rs", "fn f() { x.unwrap(); }", &[ID]);
        let mut cfg = Config::workspace();
        cfg.hot_path_modules = vec!["hot.rs".to_string()];
        let mut out = Vec::new();
        HotPathPanic.check(&file, &cfg, &mut out);
        assert!(out.is_empty());
    }
}
