//! Lint: **truncating-cast** — no silent narrowing in the word-math modules.
//!
//! The task-set and prefix-tree word math packs member ranks into 64-bit words;
//! a bare `as u32` / `as usize` there truncates silently the day someone runs a
//! topology past 2^32 endpoints — precisely the scaling cliff the paper's tool
//! exists to survive.  In the configured word-math modules every narrowing `as`
//! must be replaced with `try_from` (typed error) or carry a waiver stating the
//! bound that keeps the value in range.
//!
//! Only *narrowing* targets are flagged (`u8`/`u16`/`u32`/`usize`/`i8`/`i16`/
//! `i32`/`isize`); widening casts (`as u64`, `as u128`) are always safe and pass.

use crate::config::Config;
use crate::report::Finding;
use crate::source::SourceFile;

use super::Lint;

/// See the module docs.
pub struct TruncatingCast;

const ID: &str = "truncating-cast";

/// Cast targets that can lose bits from a `u64`/`usize` source.
const NARROW: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

impl Lint for TruncatingCast {
    fn id(&self) -> &'static str {
        ID
    }

    fn summary(&self) -> &'static str {
        "no bare narrowing `as` casts in word-math modules; use try_from or waive the bound"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
        if !config.is_word_math(&file.rel_path) {
            return;
        }
        for (i, token) in file.tokens.iter().enumerate() {
            if file.ident(i) != Some("as") || file.is_test(i) {
                continue;
            }
            let Some(target) = file.ident(i + 1) else {
                continue;
            };
            if NARROW.contains(&target) {
                out.push(Finding::new(
                    ID,
                    file,
                    token.line,
                    format!(
                        "bare `as {target}` in word math truncates silently past the type's \
                         range: use try_from with a typed error, or waive with the bound that \
                         keeps the value in range"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/core/src/taskset.rs", src, &[ID]);
        let mut out = Vec::new();
        TruncatingCast.check(&file, &Config::workspace(), &mut out);
        out
    }

    #[test]
    fn narrowing_casts_are_flagged() {
        let findings = run("fn f(x: u64) { let a = x as u32; let b = x as usize; }\n");
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("as u32"));
    }

    #[test]
    fn widening_casts_are_clean() {
        assert!(run("fn f(x: u32) { let a = x as u64; let b = x as u128; }\n").is_empty());
    }

    #[test]
    fn use_as_rename_is_not_a_cast() {
        assert!(run("use std::sync::Mutex as Lock;\nfn f() {}\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(
            run("#[cfg(test)]\nmod tests {\n  fn t(x: u64) { let a = x as u32; }\n}\n").is_empty()
        );
    }

    #[test]
    fn non_word_math_files_are_ignored() {
        let file = SourceFile::parse("crates/x/src/other.rs", "fn f(x: u64) { x as u32; }", &[ID]);
        let mut out = Vec::new();
        TruncatingCast.check(&file, &Config::workspace(), &mut out);
        assert!(out.is_empty());
    }
}
