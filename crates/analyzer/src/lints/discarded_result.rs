//! Lint: **discarded-result** — fallible calls must not be silently dropped.
//!
//! The SC'08 lesson behind this rule: at 208K cores a dropped send/recv/write
//! error is not noise, it is the first (and often only) symptom of the partition
//! the tool exists to diagnose.  `let _ = fallible()` compiles clean even under
//! `#[must_use]`, so the compiler cannot catch it — this lint does.
//!
//! Two shapes are flagged in non-test code:
//!
//! 1. `let _ = <expr containing a call>;` — the explicit discard.  (`let _ =
//!    some_var;` without a call is a borrow-shortening idiom and stays legal.)
//! 2. A bare statement `recv(..)` / `x.send(..);` whose final call is one of the
//!    configured Result-returning methods ([`Config::result_methods`]) — rustc's
//!    `unused_must_use` already covers most of these, but only when the type is
//!    `#[must_use]`; the configured list is enforced regardless.

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::Finding;
use crate::source::SourceFile;

use super::{is_keyword, Lint};

/// See the module docs.
pub struct DiscardedResult;

const ID: &str = "discarded-result";

impl Lint for DiscardedResult {
    fn id(&self) -> &'static str {
        ID
    }

    fn summary(&self) -> &'static str {
        "no `let _ =` (or bare-statement) discard of fallible calls in non-test code"
    }

    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
        let mut i = 0;
        while i < file.tokens.len() {
            if file.ident(i) == Some("let")
                && file.ident(i + 1) == Some("_")
                && file.punct(i + 2) == Some('=')
                && file.punct(i + 3) != Some('=')
                && !file.is_test(i)
            {
                let (has_call, end) = rhs_has_call(file, i + 3);
                if has_call {
                    out.push(Finding::new(
                        ID,
                        file,
                        file.tokens[i].line,
                        "`let _ =` discards a fallible call: at scale the dropped Err is the \
                         event under diagnosis; handle it, `?` it, or match on why the discard \
                         is sound"
                            .to_string(),
                    ));
                }
                i = end;
                continue;
            }
            if let Some(finding) = bare_result_statement(file, config, i) {
                out.push(finding);
            }
            i += 1;
        }
    }
}

/// Scan the expression starting at `start` up to its `;` at balance 0; report
/// whether it contains a call (a `(` preceded by an identifier, `]`, `)`, `>` or
/// `!`) and return the index just past the `;`.
fn rhs_has_call(file: &SourceFile, start: usize) -> (bool, usize) {
    let mut depth = 0i32;
    let mut has_call = false;
    let mut i = start;
    while i < file.tokens.len() {
        match file.punct(i) {
            Some('(' | '[' | '{') => {
                if file.punct(i) == Some('(') && i > 0 {
                    let callish = match &file.tokens[i - 1].tok {
                        Tok::Ident(name) => !is_keyword(name),
                        Tok::Punct(']' | ')' | '>' | '!') => true,
                        _ => false,
                    };
                    if callish {
                        has_call = true;
                    }
                }
                depth += 1;
            }
            Some(')' | ']' | '}') => depth -= 1,
            Some(';') if depth == 0 => return (has_call, i + 1),
            _ => {}
        }
        i += 1;
    }
    (has_call, i)
}

/// Detect a bare statement whose last call before the terminating `;` is one of
/// the configured Result-returning methods: `x.send(v);`, `out.flush();`.
/// The statement must not contain `let`/`return`/`?`/`=`/`match` at balance 0 —
/// any of those means the value is consumed, not discarded.
fn bare_result_statement(file: &SourceFile, config: &Config, i: usize) -> Option<Finding> {
    // Anchor on the method name token.
    let name = match &file.tokens[i].tok {
        Tok::Ident(n) if config.result_methods.iter().any(|m| m == n) => n.clone(),
        _ => return None,
    };
    if file.punct(i + 1) != Some('(') || file.is_test(i) {
        return None;
    }
    // Must be a call or method call, not a definition (`fn send(`).
    if i > 0 && file.ident(i - 1) == Some("fn") {
        return None;
    }
    // Walk forward past the argument list; the statement is a bare discard only if
    // the call's parens are immediately followed by `;`.
    let after_args = super::skip_group(file, i + 1);
    if file.punct(after_args) != Some(';') {
        return None;
    }
    // Walk backwards to the start of the statement; consuming constructs disqualify.
    let mut j = i;
    let mut depth = 0i32;
    loop {
        match &file.tokens[j].tok {
            Tok::Punct(')' | ']' | '}') => depth += 1,
            Tok::Punct('(' | '[') => depth -= 1,
            Tok::Punct('{') if depth == 0 => break,
            Tok::Punct('{') => depth -= 1,
            Tok::Punct(';') if depth == 0 => break,
            Tok::Punct('=' | '?') if depth == 0 => return None,
            Tok::Ident(kw)
                if depth == 0
                    && matches!(kw.as_str(), "let" | "return" | "match" | "if" | "while") =>
            {
                return None;
            }
            _ => {}
        }
        if j == 0 {
            break;
        }
        j -= 1;
    }
    Some(Finding::new(
        ID,
        file,
        file.tokens[i].line,
        format!(
            "bare `{name}(..);` statement discards its Result: a dropped channel/IO error \
             at this layer silently loses the failure the overlay is reporting"
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/x/src/a.rs", src, &[ID]);
        let mut out = Vec::new();
        DiscardedResult.check(&file, &Config::workspace(), &mut out);
        out
    }

    #[test]
    fn let_underscore_call_is_flagged() {
        let findings = run("fn f() { let _ = tx.send(v); }\n");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("let _ ="));
    }

    #[test]
    fn let_underscore_macro_call_is_flagged() {
        assert_eq!(run("fn f() { let _ = writeln!(out, \"x\"); }\n").len(), 1);
    }

    #[test]
    fn let_underscore_plain_ident_is_clean() {
        // Borrow-shortening `let _ = guard;` has no call and is legal.
        assert!(run("fn f() { let _ = guard; }\n").is_empty());
    }

    #[test]
    fn bare_send_statement_is_flagged() {
        let findings = run("fn f() { tx.send(v); }\n");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("send"));
    }

    #[test]
    fn consumed_results_are_clean() {
        assert!(run(
            "fn f() -> Result<(), E> {\n  tx.send(v)?;\n  let r = tx.send(w);\n  \
             return tx.send(u);\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn fn_definitions_are_not_calls() {
        assert!(run("impl T {\n  fn send(&self, v: u64);\n}\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run("#[cfg(test)]\nmod tests {\n  fn t() { let _ = tx.send(v); }\n}\n").is_empty());
    }
}
