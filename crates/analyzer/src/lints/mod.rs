//! The lint registry and the shared token-walking helpers lints build on.
//!
//! Each lint is a small struct implementing [`Lint`]; [`registry`] returns the
//! catalogue in a stable order.  Lints only *emit* findings — waiver application,
//! budgets and report assembly happen in the driver, so every lint stays a pure
//! function of one file's token stream.

use crate::config::Config;
use crate::report::Finding;
use crate::source::SourceFile;

mod condvar_discipline;
mod discarded_result;
mod hot_path_panic;
mod lock_hold_hygiene;
mod truncating_cast;

pub use condvar_discipline::CondvarDiscipline;
pub use discarded_result::DiscardedResult;
pub use hot_path_panic::HotPathPanic;
pub use lock_hold_hygiene::LockHoldHygiene;
pub use truncating_cast::TruncatingCast;

/// A single static-analysis rule.
pub trait Lint {
    /// Stable kebab-case id, used in reports and waivers.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-lints` and the report header.
    fn summary(&self) -> &'static str;
    /// Run over one file, appending findings.
    fn check(&self, file: &SourceFile, config: &Config, out: &mut Vec<Finding>);
}

/// Pseudo-lint id for malformed waiver comments (never waivable).
pub const INVALID_WAIVER: &str = "invalid-waiver";
/// Pseudo-lint id for waivers that suppress nothing (never waivable).
pub const UNUSED_WAIVER: &str = "unused-waiver";

/// The five project lints, in report order.
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(HotPathPanic),
        Box::new(CondvarDiscipline),
        Box::new(LockHoldHygiene),
        Box::new(DiscardedResult),
        Box::new(TruncatingCast),
    ]
}

/// The waivable lint ids (what a waiver comment may name).
pub fn known_lint_ids() -> Vec<&'static str> {
    registry().iter().map(|l| l.id()).collect()
}

// ---------------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------------

/// Rust keywords that can directly precede a `[` without forming an index
/// expression (`&mut [u64]`, `dyn [..]`, `as [T; 2]`, ...).
pub(crate) fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "as" | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Walk `tokens[start..]` and return the index just past the `]`/`)`/`}` that
/// closes the delimiter opened at `start` (which must be an open delimiter).
pub(crate) fn skip_group(file: &SourceFile, start: usize) -> usize {
    let open = match file.punct(start) {
        Some(c @ ('(' | '[' | '{')) => c,
        _ => return start + 1,
    };
    let close = match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    };
    let mut depth = 0usize;
    let mut i = start;
    while i < file.tokens.len() {
        match file.punct(i) {
            Some(c) if c == open => depth += 1,
            Some(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    file.tokens.len()
}
