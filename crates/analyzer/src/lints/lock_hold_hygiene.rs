//! Lint: **lock-hold-hygiene** — never call user code while holding a pool lock.
//!
//! The reduction pool's queue lock serialises workers; a user `Filter` (any
//! `dyn`-trait value) invoked *while that guard is live* turns one slow or
//! re-entrant filter into a whole-pool convoy — or, if the filter itself reaches
//! back into the network, a deadlock.  The discipline that keeps PR 4's pooled
//! walk safe is structural: take the batch out under the lock, drop the guard,
//! then run the filter.  This lint enforces exactly that shape.
//!
//! Mechanically: within each function, any `let` binding whose initialiser calls
//! `.lock()`/`.try_lock()` at its top level opens a *guard-live region* that ends
//! at the binding's enclosing block or an explicit `drop(guard)`.  Inside the
//! region, any use of a parameter whose declared type mentions `dyn` is flagged.
//! (Uses include method calls, indexing and being passed as an argument — all of
//! them run or expose user code under the lock.)

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::Finding;
use crate::source::SourceFile;

use super::{is_keyword, skip_group, Lint};

/// See the module docs.
pub struct LockHoldHygiene;

const ID: &str = "lock-hold-hygiene";

impl Lint for LockHoldHygiene {
    fn id(&self) -> &'static str {
        ID
    }

    fn summary(&self) -> &'static str {
        "no dyn-trait (user filter) use while a MutexGuard is live in scope"
    }

    fn check(&self, file: &SourceFile, _config: &Config, out: &mut Vec<Finding>) {
        let mut i = 0;
        while i < file.tokens.len() {
            if let Some("fn") = file.ident(i) {
                if let Some(func) = parse_fn(file, i) {
                    if !func.tainted.is_empty() {
                        check_body(file, &func, out);
                    }
                    i = func.body_end.max(i + 1);
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// A function whose signature declared `dyn`-typed parameters.
struct FnInfo {
    /// Parameter names whose type mentions `dyn`.
    tainted: Vec<String>,
    /// Token index of the body `{`.
    body_start: usize,
    /// Token index just past the body `}`.
    body_end: usize,
}

/// Parse the signature starting at the `fn` keyword token.
fn parse_fn(file: &SourceFile, fn_idx: usize) -> Option<FnInfo> {
    // fn NAME [<generics>] ( params ) [-> ret] [where ...] { body }
    let mut i = fn_idx + 1;
    file.ident(i)?; // the function name
    i += 1;
    if file.punct(i) == Some('<') {
        let mut depth = 0i32;
        while i < file.tokens.len() {
            match file.punct(i) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    if file.punct(i) != Some('(') {
        return None;
    }
    let params_end = skip_group(file, i);
    let tainted = tainted_params(file, i + 1, params_end.saturating_sub(1));
    // Find the body `{` (or give up at `;` — a trait method without a body).
    let mut j = params_end;
    while j < file.tokens.len() {
        match file.punct(j) {
            Some('{') => break,
            Some(';') => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= file.tokens.len() {
        return None;
    }
    let body_end = skip_group(file, j);
    Some(FnInfo {
        tainted,
        body_start: j,
        body_end,
    })
}

/// Collect the names of parameters whose type mentions `dyn`, from the token range
/// between the parens of a parameter list.
fn tainted_params(file: &SourceFile, start: usize, end: usize) -> Vec<String> {
    let mut tainted = Vec::new();
    let mut depth = 0i32;
    let mut param_start = start;
    let mut i = start;
    let commit = |param_start: usize, param_end: usize, tainted: &mut Vec<String>| {
        let tokens = &file.tokens[param_start..param_end];
        let colon = tokens.iter().position(|t| matches!(t.tok, Tok::Punct(':')));
        let Some(colon) = colon else { return };
        let has_dyn = tokens[colon..]
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(n) if n == "dyn"));
        if !has_dyn {
            return;
        }
        for t in &tokens[..colon] {
            if let Tok::Ident(name) = &t.tok {
                if !is_keyword(name) && name != "_" {
                    tainted.push(name.clone());
                }
            }
        }
    };
    while i < end {
        match file.punct(i) {
            Some('(' | '[' | '<') => depth += 1,
            Some(')' | ']' | '>') => depth -= 1,
            Some(',') if depth == 0 => {
                commit(param_start, i, &mut tainted);
                param_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    commit(param_start, end, &mut tainted);
    tainted
}

/// An active guard binding.
struct Guard {
    name: String,
    /// Brace depth (relative to the body) the binding lives at; the guard dies
    /// when a `}` brings the depth below this.
    depth: i32,
    line: u32,
}

fn check_body(file: &SourceFile, func: &FnInfo, out: &mut Vec<Finding>) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = func.body_start;
    while i < func.body_end {
        match &file.tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(kw) if kw == "let" => {
                if let Some((names, after)) = guard_binding(file, i, func.body_end) {
                    for name in names {
                        guards.push(Guard {
                            name,
                            depth,
                            line: file.tokens[i].line,
                        });
                    }
                    i = after;
                    continue;
                }
            }
            // drop(name) releases that guard early.
            Tok::Ident(kw) if kw == "drop" && file.punct(i + 1) == Some('(') => {
                if let Some(name) = file.ident(i + 2) {
                    if file.punct(i + 3) == Some(')') {
                        guards.retain(|g| g.name != name);
                    }
                }
            }
            Tok::Ident(name)
                if !guards.is_empty()
                    && func.tainted.iter().any(|t| t == name)
                    && !file.is_test(i) =>
            {
                let line = file.tokens[i].line;
                let held: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                out.push(Finding::new(
                    ID,
                    file,
                    line,
                    format!(
                        "dyn-trait parameter `{name}` used while MutexGuard `{}` (taken on \
                         line {}) is live: user code under a pool lock convoys every worker; \
                         extract the data, drop the guard, then call the filter",
                        held.join("`, `"),
                        guards.first().map(|g| g.line).unwrap_or(0),
                    ),
                ));
            }
            _ => {}
        }
        i += 1;
    }
}

/// If the `let` at `let_idx` binds the result of a top-level `.lock()` /
/// `.try_lock()` call, return the bound (lowercase) names and the index just past
/// the statement's `;`.
fn guard_binding(file: &SourceFile, let_idx: usize, limit: usize) -> Option<(Vec<String>, usize)> {
    // Pattern: everything up to the top-level `=`.
    let mut i = let_idx + 1;
    let mut depth = 0i32;
    let mut names = Vec::new();
    while i < limit {
        match &file.tokens[i].tok {
            Tok::Punct('(' | '[' | '<') => depth += 1,
            Tok::Punct(')' | ']' | '>') => depth -= 1,
            Tok::Punct('=') if depth == 0 && file.punct(i + 1) != Some('=') => break,
            Tok::Punct(';') => return None, // `let x;` — no initialiser
            // Skip enum constructors like Ok/Some in `if let Ok(g) = ...`.
            Tok::Ident(n)
                if !is_keyword(n)
                    && n != "_"
                    && !n.chars().next().is_some_and(|c| c.is_uppercase()) =>
            {
                names.push(n.clone());
            }
            _ => {}
        }
        i += 1;
    }
    if i >= limit || names.is_empty() {
        return None;
    }
    // Initialiser: scan to the terminating `;` at balance 0; a `.lock(` at
    // brace-balance 0 makes this a guard binding (a lock taken inside a nested
    // block `{ ... }` belongs to that block's own binding, not this one).
    let init_start = i + 1;
    let mut j = init_start;
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut is_guard = false;
    while j < limit {
        match &file.tokens[j].tok {
            Tok::Punct('{') => brace += 1,
            Tok::Punct('}') => brace -= 1,
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct(';') if brace == 0 && paren == 0 => break,
            Tok::Ident(m)
                if brace == 0
                    && (m == "lock" || m == "try_lock")
                    && file.punct(j - 1) == Some('.')
                    && file.punct(j + 1) == Some('(') =>
            {
                is_guard = true;
            }
            _ => {}
        }
        j += 1;
    }
    if is_guard {
        Some((names, j + 1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/x/src/a.rs", src, &[ID]);
        let mut out = Vec::new();
        LockHoldHygiene.check(&file, &Config::workspace(), &mut out);
        out
    }

    #[test]
    fn dyn_call_under_live_guard_is_flagged() {
        let src = "fn run(queue: &Mutex<Q>, filter: &dyn Filter) {\n  \
                   let mut q = queue.lock().ok();\n  filter.reduce(id, &inputs);\n}\n";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("filter"));
    }

    #[test]
    fn call_after_scope_block_is_clean() {
        let src = "fn run(queue: &Mutex<Q>, filter: &dyn Filter) {\n  let batch = {\n    \
                   let mut q = queue.lock().ok();\n    q.pop()\n  };\n  \
                   filter.reduce(id, &batch);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn call_after_explicit_drop_is_clean() {
        let src = "fn run(queue: &Mutex<Q>, filter: &dyn Filter) {\n  \
                   let mut q = queue.lock().ok();\n  let b = q.take();\n  drop(q);\n  \
                   filter.reduce(id, &b);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn dyn_slice_indexing_under_guard_is_flagged() {
        let src = "fn run(queue: &Mutex<Q>, filters: &[&dyn Filter]) {\n  \
                   let q = queue.lock().ok();\n  filters[0].reduce(id, &w);\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn functions_without_dyn_params_are_skipped() {
        let src = "fn run(queue: &Mutex<Q>) {\n  let q = queue.lock().ok();\n  \
                   helper(&q);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_guard_bindings_do_not_taint() {
        let src = "fn run(filter: &dyn Filter) {\n  let x = compute();\n  \
                   filter.reduce(id, &x);\n}\n";
        assert!(run(src).is_empty());
    }
}
