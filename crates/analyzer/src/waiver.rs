//! Waiver parsing: the one sanctioned way to silence a lint.
//!
//! A waiver is an ordinary comment of the form
//!
//! ```text
//! // stat-analyzer: allow(<lint>) — <reason>
//! // stat-analyzer: allow(<lint>, fn) — <reason>
//! ```
//!
//! The reason is **required**: a bare `allow(<lint>)` is rejected as an
//! `invalid-waiver` finding rather than silently honoured, because the entire point
//! of a waiver is the written argument for why the invariant holds.  The `fn` form
//! must appear on its own line directly before a function item and covers that
//! function's whole body — for code like the prefix-tree arena where one invariant
//! ("indices are handed out by push and never removed") justifies every index in
//! the function.  The separator may be an em-dash (`—`), `--`, or `:`.

use std::ops::Range;

use crate::lexer::Comment;

/// How much source a waiver covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaiverScope {
    /// The comment's own line (trailing) or the next code line (standalone).
    Line,
    /// The body of the next `fn` item.
    Fn,
}

/// A parsed, resolved waiver.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The lint id this waiver silences.
    pub lint: String,
    /// Line/fn scope.
    pub scope: WaiverScope,
    /// 1-based line of the waiver comment itself.
    pub line: u32,
    /// The written justification (non-empty by construction).
    pub reason: String,
    /// Resolved 1-based line range the waiver covers (filled by the source model).
    pub covers: Range<u32>,
}

/// Outcome of trying to read a comment as a waiver.
#[derive(Debug)]
pub enum WaiverParse {
    /// The comment does not mention the analyzer at all.
    NotAWaiver,
    /// The comment addresses the analyzer but is malformed; the string explains how.
    Invalid(String),
    /// A well-formed waiver.
    Valid(Waiver),
}

impl Waiver {
    /// Try to parse a comment as a waiver directive.
    pub fn parse(comment: &Comment, known_lints: &[&str]) -> WaiverParse {
        const MARKER: &str = "stat-analyzer:";
        let text = comment.text.trim_start_matches('/').trim();
        let Some(at) = text.find(MARKER) else {
            return WaiverParse::NotAWaiver;
        };
        let directive = text[at + MARKER.len()..].trim();
        let Some(rest) = directive.strip_prefix("allow") else {
            return WaiverParse::Invalid(format!(
                "unknown stat-analyzer directive `{directive}`; only `allow(<lint>) — <reason>` is supported"
            ));
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            return WaiverParse::Invalid("malformed waiver: expected `allow(<lint>)`".to_string());
        };
        let Some(close) = rest.find(')') else {
            return WaiverParse::Invalid("malformed waiver: unclosed `allow(`".to_string());
        };
        let inside = &rest[..close];
        let after = rest[close + 1..].trim_start();

        let mut parts = inside.split(',').map(str::trim);
        let lint = parts.next().unwrap_or("").to_string();
        let scope = match parts.next() {
            None => WaiverScope::Line,
            Some("fn") => WaiverScope::Fn,
            Some(other) => {
                return WaiverParse::Invalid(format!(
                    "unknown waiver scope `{other}`; use `allow(<lint>)` or `allow(<lint>, fn)`"
                ));
            }
        };
        if parts.next().is_some() {
            return WaiverParse::Invalid(
                "malformed waiver: too many arguments to allow(...)".to_string(),
            );
        }
        if !known_lints.contains(&lint.as_str()) {
            return WaiverParse::Invalid(format!(
                "waiver names unknown lint `{lint}` (known: {})",
                known_lints.join(", ")
            ));
        }
        if scope == WaiverScope::Fn && comment.trailing {
            return WaiverParse::Invalid(
                "fn-scoped waivers must sit on their own line directly before the function"
                    .to_string(),
            );
        }

        // The reason: whatever follows the separator.  A bare allow is rejected.
        let reason = after
            .strip_prefix('—')
            .or_else(|| after.strip_prefix("--"))
            .or_else(|| after.strip_prefix(':'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            return WaiverParse::Invalid(format!(
                "bare `allow({lint})` rejected: a waiver must carry a reason (`allow({lint}) — <why this is safe>`)"
            ));
        }
        WaiverParse::Valid(Waiver {
            lint,
            scope,
            line: comment.line,
            reason: reason.to_string(),
            covers: comment.line..comment.line,
        })
    }

    /// Whether this waiver suppresses a finding of `lint` at `line`.
    pub fn suppresses(&self, lint: &str, line: u32) -> bool {
        self.lint == lint && self.covers.contains(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str) -> Comment {
        Comment {
            line: 7,
            text: text.to_string(),
            trailing: false,
        }
    }

    const LINTS: &[&str] = &["hot-path-panic", "discarded-result"];

    #[test]
    fn parses_the_canonical_form() {
        let c =
            comment("// stat-analyzer: allow(hot-path-panic) — index bounded by the level walk");
        match Waiver::parse(&c, LINTS) {
            WaiverParse::Valid(w) => {
                assert_eq!(w.lint, "hot-path-panic");
                assert_eq!(w.scope, WaiverScope::Line);
                assert_eq!(w.reason, "index bounded by the level walk");
            }
            other => panic!("expected valid waiver, got {other:?}"),
        }
    }

    #[test]
    fn accepts_ascii_separators() {
        for sep in ["--", ":"] {
            let c = comment(&format!(
                "// stat-analyzer: allow(discarded-result) {sep} fmt to String is infallible"
            ));
            assert!(
                matches!(Waiver::parse(&c, LINTS), WaiverParse::Valid(_)),
                "sep {sep}"
            );
        }
    }

    #[test]
    fn fn_scope_parses() {
        let c = comment("// stat-analyzer: allow(hot-path-panic, fn) — arena indices never dangle");
        match Waiver::parse(&c, LINTS) {
            WaiverParse::Valid(w) => assert_eq!(w.scope, WaiverScope::Fn),
            other => panic!("expected valid waiver, got {other:?}"),
        }
    }

    #[test]
    fn trailing_fn_scope_is_rejected() {
        let mut c = comment("// stat-analyzer: allow(hot-path-panic, fn) — nope");
        c.trailing = true;
        assert!(matches!(Waiver::parse(&c, LINTS), WaiverParse::Invalid(_)));
    }

    #[test]
    fn bare_allow_is_rejected_with_guidance() {
        let c = comment("// stat-analyzer: allow(hot-path-panic)");
        match Waiver::parse(&c, LINTS) {
            WaiverParse::Invalid(msg) => assert!(msg.contains("must carry a reason")),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let c = comment("// the analyzer would flag this, but it's fine");
        assert!(matches!(Waiver::parse(&c, LINTS), WaiverParse::NotAWaiver));
    }
}
