//! Analyzer policy: which modules are hot-path, which are word-math, and how many
//! waivers each lint is allowed to accumulate.
//!
//! The policy is code, not a config file, on purpose: changing it is a reviewed
//! diff with a rationale in the commit, exactly like changing a lint.  The budgets
//! are the "committed waiver budget" of `results/ANALYSIS.md` — `--deny` fails if
//! any lint's waiver count grows past its budget, so silencing the analyzer is
//! always a conscious, reviewed act.

/// Analyzer policy: module designations and waiver budgets.
#[derive(Clone, Debug)]
pub struct Config {
    /// Modules on the TBON hot path, where panic-freedom is enforced (relative-path
    /// suffixes, `/`-separated).  A tool-side panic here is indistinguishable, at
    /// 208K cores, from the hang the tool is diagnosing.
    pub hot_path_modules: Vec<String>,
    /// Word-level task-set / remap modules where bare narrowing casts are banned.
    pub word_math_modules: Vec<String>,
    /// Methods whose `Result` must never be discarded with a bare statement.
    pub result_methods: Vec<String>,
    /// Per-lint waiver budgets: `(lint id, max waivers across the workspace)`.
    /// Lints absent from this list allow no waivers at all.
    pub waiver_budgets: Vec<(String, usize)>,
}

impl Config {
    /// The committed policy for this workspace.
    pub fn workspace() -> Config {
        let s = |x: &[&str]| x.iter().map(|v| v.to_string()).collect::<Vec<_>>();
        Config {
            hot_path_modules: s(&[
                "crates/tbon/src/network.rs",
                "crates/tbon/src/packet.rs",
                "crates/core/src/graph.rs",
                "crates/core/src/taskset.rs",
                "crates/core/src/serialize.rs",
                "crates/tbon/src/delta.rs",
                "crates/core/src/streaming.rs",
            ]),
            word_math_modules: s(&[
                "crates/core/src/taskset.rs",
                "crates/core/src/graph.rs",
                "crates/core/src/serialize.rs",
                "crates/tbon/src/packet.rs",
                "crates/tbon/src/delta.rs",
            ]),
            result_methods: s(&[
                "send",
                "try_send",
                "recv",
                "try_recv",
                "write",
                "write_all",
                "write_fmt",
                "flush",
                "wait",
                "lock",
                "try_lock",
            ]),
            // The committed waiver inventory (see results/ANALYSIS.md).  Budgets are
            // set to the current count: adding a waiver REQUIRES bumping the budget
            // here, in the same reviewed diff as the waiver itself.
            waiver_budgets: vec![
                ("hot-path-panic".to_string(), 8),
                ("truncating-cast".to_string(), 9),
                ("discarded-result".to_string(), 1),
                ("condvar-discipline".to_string(), 0),
                ("lock-hold-hygiene".to_string(), 0),
            ],
        }
    }

    /// A permissive policy for fixture tests: every analyzed file is treated as
    /// hot-path and word-math, and budgets are high enough to never bind (but
    /// small enough to print readably in golden reports), so fixtures exercise
    /// each lint without path gymnastics.
    pub fn fixtures() -> Config {
        let all = vec![".rs".to_string()];
        Config {
            hot_path_modules: all.clone(),
            word_math_modules: all,
            result_methods: Config::workspace().result_methods,
            waiver_budgets: vec![
                ("hot-path-panic".to_string(), 99),
                ("truncating-cast".to_string(), 99),
                ("discarded-result".to_string(), 99),
                ("condvar-discipline".to_string(), 99),
                ("lock-hold-hygiene".to_string(), 99),
            ],
        }
    }

    /// Whether a relative path is designated hot-path.
    pub fn is_hot_path(&self, rel_path: &str) -> bool {
        self.hot_path_modules
            .iter()
            .any(|m| rel_path.ends_with(m.as_str()))
    }

    /// Whether a relative path is designated word-math.
    pub fn is_word_math(&self, rel_path: &str) -> bool {
        self.word_math_modules
            .iter()
            .any(|m| rel_path.ends_with(m.as_str()))
    }

    /// The waiver budget for a lint (0 when unlisted).
    pub fn budget(&self, lint: &str) -> usize {
        self.waiver_budgets
            .iter()
            .find(|(l, _)| l == lint)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}
