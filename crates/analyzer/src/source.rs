//! Per-file source model: tokens, `#[cfg(test)]` regions, and waivers.
//!
//! Every lint sees the file through this lens, so the rules about what counts as
//! test code and how waivers attach to lines are decided once, here, instead of
//! being re-derived (differently) per lint.

use crate::lexer::{self, Comment, Tok, Token};
use crate::waiver::{Waiver, WaiverParse, WaiverScope};

/// A lexed source file plus the derived structure lints need.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators (stable across
    /// platforms so reports and golden tests compare byte-for-byte).
    pub rel_path: String,
    /// Raw source lines (for report snippets).
    pub lines: Vec<String>,
    /// The token stream (comments excluded).
    pub tokens: Vec<Token>,
    /// Comments, in order.
    pub comments: Vec<Comment>,
    /// Per-token flag: is this token inside a `#[cfg(test)]` / `#[test]` item?
    pub in_test: Vec<bool>,
    /// Waivers declared in this file, with resolved line coverage.
    pub waivers: Vec<Waiver>,
    /// Waiver comments that failed to parse (bare allows, unknown lints, syntax
    /// errors) — each becomes an unwaivable `invalid-waiver` finding.
    pub invalid_waivers: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lex and classify one file.  `known_lints` is the set of valid lint ids a
    /// waiver may name; anything else is rejected as invalid.
    pub fn parse(rel_path: &str, src: &str, known_lints: &[&str]) -> SourceFile {
        let (tokens, comments) = lexer::lex(src);
        let in_test = mark_test_regions(&tokens);
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        let mut waivers = Vec::new();
        let mut invalid_waivers = Vec::new();
        for comment in &comments {
            // Doc comments (`///`, `//!`, `/** */`, `/*! */`) are documentation
            // *about* waivers, never waivers themselves — skip them so writing
            // out the syntax in rustdoc doesn't register as a malformed waiver.
            let body = comment
                .text
                .strip_prefix("//")
                .or_else(|| comment.text.strip_prefix("/*"))
                .unwrap_or(&comment.text);
            if body.starts_with(['/', '!', '*']) {
                continue;
            }
            match Waiver::parse(comment, known_lints) {
                WaiverParse::NotAWaiver => {}
                WaiverParse::Invalid(reason) => invalid_waivers.push((comment.line, reason)),
                WaiverParse::Valid(mut waiver) => {
                    resolve_coverage(&mut waiver, comment, &tokens);
                    waivers.push(waiver);
                }
            }
        }
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
            tokens,
            comments,
            in_test,
            waivers,
            invalid_waivers,
        }
    }

    /// The source text of a 1-based line, for report snippets.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// Whether the token at `idx` is inside a test region.
    pub fn is_test(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }

    /// The identifier text of token `idx`, if it is an identifier.
    pub fn ident(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The punctuation char of token `idx`, if it is punctuation.
    pub fn punct(&self, idx: usize) -> Option<char> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }
}

/// Mark every token that sits inside an item annotated `#[cfg(test)]` (or any
/// `cfg(...)` whose predicate mentions `test` outside a `not(...)`), `#[test]` or
/// `#[bench]`.  The item body is found by brace matching; attribute-only items
/// (`#[cfg(test)] use x;`) cover through their terminating semicolon.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct('#')
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            // Collect the attribute tokens up to the matching `]`.
            let attr_start = i + 2;
            let mut depth = 1usize;
            let mut j = attr_start;
            while j < tokens.len() && depth > 0 {
                match tokens[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr = &tokens[attr_start..j.saturating_sub(1)];
            if is_test_attribute(attr) {
                // Skip any further attributes between this one and the item.
                let mut item = j;
                while item < tokens.len() && tokens[item].tok == Tok::Punct('#') {
                    let mut d = 0usize;
                    item += 1; // the `[`
                    loop {
                        match tokens.get(item).map(|t| &t.tok) {
                            Some(Tok::Punct('[')) => d += 1,
                            Some(Tok::Punct(']')) => {
                                d -= 1;
                                if d == 0 {
                                    item += 1;
                                    break;
                                }
                            }
                            None => break,
                            _ => {}
                        }
                        item += 1;
                    }
                }
                // The item body: everything through the matching `}` of the first
                // brace, or through the first `;` if no brace opens first.
                let mut k = item;
                let mut brace = 0usize;
                let mut opened = false;
                while k < tokens.len() {
                    match tokens[k].tok {
                        Tok::Punct('{') => {
                            brace += 1;
                            opened = true;
                        }
                        Tok::Punct('}') => {
                            brace = brace.saturating_sub(1);
                            if opened && brace == 0 {
                                break;
                            }
                        }
                        Tok::Punct(';') if !opened => break,
                        _ => {}
                    }
                    k += 1;
                }
                for flag in in_test.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
                    *flag = true;
                }
                i = k + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Whether an attribute's token list marks a test item: `test`, `bench`, or a
/// `cfg(...)` predicate mentioning `test` outside `not(...)`.
fn is_test_attribute(attr: &[Token]) -> bool {
    let head = match attr.first().map(|t| &t.tok) {
        Some(Tok::Ident(s)) => s.as_str(),
        _ => return false,
    };
    match head {
        "test" | "bench" => true,
        "cfg" | "cfg_attr" => {
            for (idx, t) in attr.iter().enumerate() {
                if let Tok::Ident(name) = &t.tok {
                    if name == "test" {
                        // `cfg(not(test))` is live code, not test code.
                        let negated = idx >= 2
                            && matches!(&attr[idx - 1].tok, Tok::Punct('('))
                            && matches!(&attr[idx - 2].tok, Tok::Ident(n) if n == "not");
                        if !negated {
                            return true;
                        }
                    }
                }
            }
            false
        }
        _ => false,
    }
}

/// Resolve which source lines a waiver covers.
fn resolve_coverage(waiver: &mut Waiver, comment: &Comment, tokens: &[Token]) {
    match waiver.scope {
        WaiverScope::Line => {
            if comment.trailing {
                waiver.covers = comment.line..comment.line + 1;
            } else {
                // Standalone: covers the next line that carries any token.
                let next = tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > comment.line)
                    .unwrap_or(comment.line);
                waiver.covers = next..next + 1;
            }
        }
        WaiverScope::Fn => {
            // Covers the body of the next `fn` item after the comment.
            let mut idx = None;
            for (i, t) in tokens.iter().enumerate() {
                if t.line > comment.line {
                    if let Tok::Ident(name) = &t.tok {
                        if name == "fn" {
                            idx = Some(i);
                            break;
                        }
                    }
                }
            }
            let Some(fn_idx) = idx else {
                waiver.covers = comment.line..comment.line;
                return;
            };
            let start_line = tokens[fn_idx].line;
            let mut brace = 0usize;
            let mut opened = false;
            let mut end_line = start_line;
            for t in &tokens[fn_idx..] {
                match t.tok {
                    Tok::Punct('{') => {
                        brace += 1;
                        opened = true;
                    }
                    Tok::Punct('}') => {
                        brace = brace.saturating_sub(1);
                        if opened && brace == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    Tok::Punct(';') if !opened => {
                        end_line = t.line;
                        break;
                    }
                    _ => end_line = t.line,
                }
            }
            waiver.covers = start_line..end_line + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINTS: &[&str] = &["hot-path-panic", "truncating-cast"];

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn live2() {}\n";
        let f = SourceFile::parse("a.rs", src, LINTS);
        let unwraps: Vec<(usize, bool)> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.tok, Tok::Ident(s) if s == "unwrap"))
            .map(|(i, _)| (i, f.is_test(i)))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "unwrap in live code is not test");
        assert!(unwraps[1].1, "unwrap in cfg(test) mod is test");
        // Code after the test mod is live again.
        let live2 = f
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| matches!(&t.tok, Tok::Ident(s) if s == "live2"))
            .map(|(i, _)| i)
            .unwrap();
        assert!(!f.is_test(live2));
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }\n";
        let f = SourceFile::parse("a.rs", src, LINTS);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.tok, Tok::Ident(s) if s == "unwrap"))
            .map(|(i, _)| f.is_test(i))
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let f = SourceFile::parse("a.rs", src, LINTS);
        let unwrap_idx = f
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| matches!(&t.tok, Tok::Ident(s) if s == "unwrap"))
            .map(|(i, _)| i)
            .unwrap();
        assert!(!f.is_test(unwrap_idx));
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "let x = v[0]; // stat-analyzer: allow(hot-path-panic) — index 0 checked above\n";
        let f = SourceFile::parse("a.rs", src, LINTS);
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].covers, 1..2);
    }

    #[test]
    fn standalone_waiver_covers_the_next_code_line() {
        let src = "// stat-analyzer: allow(hot-path-panic) — bounded by construction\n\
                   let x = v[0];\n";
        let f = SourceFile::parse("a.rs", src, LINTS);
        assert_eq!(f.waivers[0].covers, 2..3);
    }

    #[test]
    fn fn_scope_waiver_covers_the_whole_function() {
        let src = "// stat-analyzer: allow(hot-path-panic, fn) — arena indices never dangle\n\
                   fn walk(&self) {\n    let a = v[0];\n    let b = v[1];\n}\n\
                   fn after() { let c = v[2]; }\n";
        let f = SourceFile::parse("a.rs", src, LINTS);
        assert_eq!(f.waivers[0].covers, 2..6);
    }

    #[test]
    fn bare_allow_is_invalid() {
        let src = "let x = v[0]; // stat-analyzer: allow(hot-path-panic)\n";
        let f = SourceFile::parse("a.rs", src, LINTS);
        assert!(f.waivers.is_empty());
        assert_eq!(f.invalid_waivers.len(), 1);
    }

    #[test]
    fn unknown_lint_in_waiver_is_invalid() {
        let src = "// stat-analyzer: allow(no-such-lint) — because reasons\nlet x = 1;\n";
        let f = SourceFile::parse("a.rs", src, LINTS);
        assert!(f.waivers.is_empty());
        assert_eq!(f.invalid_waivers.len(), 1);
    }
}
