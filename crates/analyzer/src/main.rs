//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p stat-analyzer --             # report findings, exit 0
//! cargo run -p stat-analyzer -- --deny      # exit 1 on any finding / budget breach
//! cargo run -p stat-analyzer -- --json      # machine-readable report
//! cargo run -p stat-analyzer -- --list-lints
//! cargo run -p stat-analyzer -- --root DIR  # analyze another workspace root
//! cargo run -p stat-analyzer -- FILE...     # analyze explicit files only
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings or budget
//! breach under `--deny`, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use stat_analyzer::driver::{analyze_paths, analyze_sources, discover_workspace_files};
use stat_analyzer::lints::registry;
use stat_analyzer::Config;

struct Args {
    deny: bool,
    json: bool,
    list_lints: bool,
    root: PathBuf,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        json: false,
        list_lints: false,
        root: PathBuf::from("."),
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--list-lints" => args.list_lints = true,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                args.root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                return Err("usage: stat-analyzer [--deny] [--json] [--list-lints] \
                            [--root DIR] [FILE...]"
                    .to_string());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}` (try --help)"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_lints {
        for lint in registry() {
            println!("{:<20} {}", lint.id(), lint.summary());
        }
        return ExitCode::SUCCESS;
    }

    let config = Config::workspace();
    let report = if args.files.is_empty() {
        if !args.root.join("crates").is_dir() {
            eprintln!(
                "stat-analyzer: `{}` does not look like the workspace root (no crates/ \
                 directory); pass --root",
                args.root.display()
            );
            return ExitCode::from(2);
        }
        match discover_workspace_files(&args.root) {
            Ok(sources) => analyze_sources(&sources, &config),
            Err(err) => {
                eprintln!("stat-analyzer: discovery failed: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        match analyze_paths(&args.files, &args.root, &config) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("stat-analyzer: {err}");
                return ExitCode::from(2);
            }
        }
    };

    if args.json {
        print!("{}", report.json());
    } else {
        print!("{}", report.human());
    }

    if args.deny && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
