//! A lightweight Rust lexer — just enough token structure to classify lines.
//!
//! The analyzer runs in an offline container with a fixed vendored dependency set,
//! so it cannot use `syn`/`proc-macro2`.  It does not need to: every lint in the
//! registry is a *lexical* discipline check (is this `.expect(` outside a test
//! region?  is this `.wait(` inside a `loop`?), and for those a faithful token
//! stream with line numbers beats a full AST — it never rejects code the compiler
//! accepts, and it keeps the tool's own hot path trivially panic-free.
//!
//! The lexer understands the things that would otherwise corrupt token
//! classification: line and (nested) block comments, string/raw-string/byte-string
//! literals, char literals vs. lifetimes, raw identifiers, and numeric literals.
//! Everything else is an identifier or a single-character punctuation token.

/// One lexed token kind.
///
/// Keywords are not distinguished from identifiers — lints match on the text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `_` and raw identifiers, without the `r#`).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime(String),
    /// A string, raw-string, byte-string or C-string literal (contents dropped).
    Str,
    /// A character or byte-character literal (contents dropped).
    Char,
    /// A numeric literal (text kept loosely, suffix included).
    Num(String),
    /// Any other single character: punctuation, brackets, operators.
    Punct(char),
}

/// A token with the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number.
    pub line: u32,
    /// Token kind and text.
    pub tok: Tok,
}

/// A comment with the 1-based source line it starts on.
///
/// Comments are kept out of the token stream (so lints never trip over commented
/// code) but preserved here because waivers live in them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line number the comment starts on.
    pub line: u32,
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// Whether any non-comment token occurs earlier on the same line.
    pub trailing: bool,
}

/// Lex a source file into tokens and comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    src: std::marker::PhantomData<&'a ()>,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    last_token_line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            src: std::marker::PhantomData,
            tokens: Vec::new(),
            comments: Vec::new(),
            last_token_line: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, line: u32, tok: Tok) {
        self.last_token_line = line.max(self.last_token_line);
        self.tokens.push(Token { line, tok });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_literal();
                    self.push(line, Tok::Str);
                }
                'r' | 'b' | 'c' if self.literal_prefix() => {
                    // r"..", r#".."#, b"..", br#".."#, b'x', c"..": consume the
                    // prefix letters, then dispatch on what follows.
                    self.prefixed_literal(line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                _ => {
                    self.bump();
                    self.push(line, Tok::Punct(c));
                }
            }
        }
        (self.tokens, self.comments)
    }

    /// Whether the current position starts a literal with an `r`/`b`/`c` prefix
    /// (raw string, byte string, byte char) rather than a plain identifier.
    fn literal_prefix(&self) -> bool {
        let mut ahead = 1;
        // Allow compound prefixes: br, rb (not real Rust, but harmless), cr, br#.
        while matches!(self.peek_at(ahead), Some('r') | Some('b') | Some('c')) && ahead < 3 {
            ahead += 1;
        }
        let mut hashes = 0;
        while self.peek_at(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek_at(ahead + hashes) {
            Some('"') => true,
            Some('\'') if hashes == 0 => true,
            _ => false,
        }
    }

    fn prefixed_literal(&mut self, line: u32) {
        let mut is_char = false;
        let mut raw = false;
        while let Some(c) = self.peek() {
            match c {
                'r' => {
                    raw = true;
                    self.bump();
                }
                'b' | 'c' => {
                    self.bump();
                }
                _ => break,
            }
        }
        let mut hashes = 0;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        match self.peek() {
            Some('"') => {
                self.bump();
                if raw || hashes > 0 {
                    self.raw_string_tail(hashes);
                } else {
                    self.string_literal();
                }
                self.push(line, Tok::Str);
            }
            Some('\'') => {
                self.bump();
                is_char = true;
                self.char_literal_tail();
            }
            _ => {}
        }
        if is_char {
            self.push(line, Tok::Char);
        }
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let trailing = self.last_token_line == line;
        self.comments.push(Comment {
            line,
            text,
            trailing,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let trailing = self.last_token_line == line;
        self.comments.push(Comment {
            line,
            text,
            trailing,
        });
    }

    fn string_literal(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    fn raw_string_tail(&mut self, hashes: usize) {
        // Already past the opening quote; scan for `"` followed by `hashes` hashes.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0;
                while seen < hashes && self.peek() == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the opening quote
                     // `'a` / `'static` (lifetime) vs `'a'` / `'\n'` (char literal): a lifetime
                     // is an identifier run NOT followed by a closing quote.
        if let Some(c) = self.peek() {
            if c == '\\' {
                self.char_literal_tail();
                self.push(line, Tok::Char);
                return;
            }
            if c == '_' || c.is_alphanumeric() {
                let start = self.pos;
                let mut ahead = 0;
                while matches!(self.peek_at(ahead), Some(x) if x == '_' || x.is_alphanumeric()) {
                    ahead += 1;
                }
                if self.peek_at(ahead) == Some('\'') {
                    // Char literal like 'a'.
                    self.char_literal_tail();
                    self.push(line, Tok::Char);
                } else {
                    for _ in 0..ahead {
                        self.bump();
                    }
                    let name: String = self.chars[start..self.pos].iter().collect();
                    self.push(line, Tok::Lifetime(name));
                }
            } else {
                // Punctuation char literal like ',' or '{'.
                self.char_literal_tail();
                self.push(line, Tok::Char);
            }
        }
    }

    /// Consume the remainder of a char literal (after the opening quote).
    fn char_literal_tail(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else if c == '.'
                && matches!(self.peek_at(1), Some(d) if d.is_ascii_digit())
                && self.peek_at(1) != Some('.')
            {
                // Decimal point, but never swallow a `..` range.
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(line, Tok::Num(text));
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(line, Tok::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            let x = "unwrap() inside a string";
            // unwrap() inside a comment
            /* expect( inside /* a nested */ block comment */
            let y = r#"panic!( in a raw string"#;
        "##;
        let names = idents(src);
        assert!(!names.iter().any(|n| n == "unwrap"));
        assert!(!names.iter().any(|n| n == "expect"));
        assert!(!names.iter().any(|n| n == "panic"));
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_file() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let names = idents(src);
        assert!(names.contains(&"str".to_string()));
        let (tokens, _) = lex(src);
        assert!(tokens
            .iter()
            .any(|t| t.tok == Tok::Lifetime("static".into())));
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let src = "let c = 'a'; let n = '\\n'; let p = ','; let l: &'x str = s;";
        let (tokens, _) = lex(src);
        let chars = tokens.iter().filter(|t| t.tok == Tok::Char).count();
        let lifetimes = tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .count();
        assert_eq!(chars, 3);
        assert_eq!(lifetimes, 1);
    }

    #[test]
    fn numbers_stop_before_ranges() {
        let src = "for i in 0..64 { let x = 1.5e3; let h = 0x5354_4154u32; }";
        let (tokens, _) = lex(src);
        let nums: Vec<&Tok> = tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Num(_)))
            .map(|t| &t.tok)
            .collect();
        assert_eq!(nums[0], &Tok::Num("0".into()));
        assert_eq!(nums[1], &Tok::Num("64".into()));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n\nc";
        let (tokens, _) = lex(src);
        let lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn trailing_comments_are_distinguished_from_standalone() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;";
        let (_, comments) = lex(src);
        assert!(comments[0].trailing);
        assert!(!comments[1].trailing);
    }
}
