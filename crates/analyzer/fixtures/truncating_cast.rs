//! Fixture: truncating-cast — bare narrowing casts in (what the fixture policy
//! treats as) word math, next to the safe forms.  Never compiled.

fn bad_narrowing(width: u64) -> usize {
    width as usize // FINDING: truncating-cast
}

fn bad_u32(offset: u64) -> u32 {
    (offset % 64) as u32 // FINDING: truncating-cast (the bound is not stated)
}

fn fine_widening(word: u32) -> u64 {
    word as u64 // clean: widening never truncates
}

fn waived(width: u64) -> usize {
    // stat-analyzer: allow(truncating-cast) — capped at 64 words by the caller's assert
    width as usize
}

use core::mem as fine_alias; // clean: `as` in a use rename is not a cast
