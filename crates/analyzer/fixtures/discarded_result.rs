//! Fixture: discarded-result — the two discard shapes (a `let _ =` and a bare
//! statement), next to the handled forms.  Never compiled.

fn bad_let_discard(tx: &Sender<u64>) {
    let _ = tx.send(7); // FINDING: discarded-result (drops the SendError)
}

fn bad_bare_statement(stream: &mut TcpStream, buf: &[u8]) {
    stream.write(buf); // FINDING: discarded-result (drops the io::Result)
}

fn fine_question_mark(stream: &mut TcpStream, buf: &[u8]) -> Result<(), Error> {
    stream.write_all(buf)?; // clean: propagated
    Ok(())
}

fn fine_inspected(tx: &Sender<u64>) {
    if tx.send(7).is_err() {
        log_backpressure(); // clean: the error is examined
    }
}

fn fine_named_binding(tx: &Sender<u64>) {
    let outcome = tx.send(7); // clean: bound to a real name, usable later
    report(outcome);
}
