//! Fixture: condvar-discipline — a lone Condvar declaration and a naked wait,
//! next to the shapes the lint accepts.  Never compiled.

struct BadPool {
    queue: Vec<u64>,
    cv: Condvar, // FINDING: condvar-discipline (no Mutex declared nearby)
}

fn spacer_so_the_pairing_window_cannot_reach() {}

struct FinePool {
    lock: Mutex<Vec<u64>>,
    cv: Condvar, // clean: declared beside its Mutex
}

fn bad_wait(pair: &(Mutex<bool>, Condvar)) {
    let guard = pair.0.lock().ok();
    let _woken = pair.1.wait(guard); // FINDING: condvar-discipline (no predicate loop)
}

fn fine_wait(pair: &(Mutex<bool>, Condvar)) {
    let mut guard = pair.0.lock().ok();
    loop {
        if ready() {
            break;
        }
        guard = pair.1.wait(guard).ok(); // clean: predicate re-checked in a loop
    }
}

fn fine_wait_while(pair: &(Mutex<bool>, Condvar)) {
    let _woken = pair.1.wait_while(pair.0.lock().ok(), |q| !*q); // clean: loops internally
}
