//! Fixture: the waiver machinery itself — a used line waiver, a used fn-scope
//! waiver, an unused waiver, a bare (reasonless) allow, and the cfg(test)
//! exemption that makes waivers unnecessary in test code.  Never compiled.

fn used_line_waiver(x: Option<u64>) -> u64 {
    x.unwrap() // stat-analyzer: allow(hot-path-panic) — trailing waiver with a reason suppresses this line
}

// stat-analyzer: allow(hot-path-panic) — nothing on the next line actually panics
fn unused_waiver_here() {} // FINDING: unused-waiver (stale waivers misdocument the code)

fn bare_allow(x: Option<u64>) -> u64 {
    x.unwrap() // stat-analyzer: allow(hot-path-panic)
} // FINDINGS: invalid-waiver (no reason given) AND the hot-path-panic survives

// stat-analyzer: allow(hot-path-panic, fn) — the loop header bounds every index below
fn fn_scope_waiver(v: &[u64]) -> u64 {
    let mut sum = 0;
    let mut i = 0;
    while i < v.len() {
        sum += v[i];
        i += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    fn exempt_without_any_waiver(x: Option<u64>) -> u64 {
        x.unwrap() // clean: cfg(test) code needs no waiver
    }
}
