//! Fixture: lock-hold-hygiene — a dyn-trait filter invoked under a live queue
//! guard, next to the take-then-drop shapes the pool actually uses.  Never
//! compiled.

fn bad_call_under_guard(queue: &Mutex<Vec<u64>>, filter: &dyn Filter) {
    let guard = queue.lock().ok();
    filter.reduce(0, &guard); // FINDING: lock-hold-hygiene
}

fn fine_scope_block(queue: &Mutex<Vec<u64>>, filter: &dyn Filter) {
    let batch = {
        let mut guard = queue.lock().ok();
        guard.take()
    };
    filter.reduce(0, &batch); // clean: the guard died with its block
}

fn fine_explicit_drop(queue: &Mutex<Vec<u64>>, filter: &dyn Filter) {
    let guard = queue.lock().ok();
    let batch = guard.clone();
    drop(guard);
    filter.reduce(0, &batch); // clean: the guard was dropped first
}
