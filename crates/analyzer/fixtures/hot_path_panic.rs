//! Fixture: hot-path-panic — every construct the lint flags, plus the edges it
//! must not flag.  Never compiled; parsed as text by the analyzer's tests.

fn bad_unwrap(x: Option<u64>) -> u64 {
    x.unwrap() // FINDING: hot-path-panic
}

fn bad_expect(x: Option<u64>) -> u64 {
    x.expect("always set") // FINDING: hot-path-panic
}

fn bad_macros() {
    panic!("boom"); // FINDING: hot-path-panic
    todo!(); // FINDING: hot-path-panic
    unreachable!(); // FINDING: hot-path-panic
}

fn bad_index(v: &[u64]) -> u64 {
    v[0] // FINDING: hot-path-panic (hidden panic)
}

fn fine_unwrap_or(x: Option<u64>) -> u64 {
    x.unwrap_or(0) // clean: unwrap_or is a different identifier
}

fn fine_array_literal() -> [u8; 4] {
    [0, 1, 2, 3] // clean: array type and literal, not indexing
}

fn waived_index(v: &[u64]) -> u64 {
    // stat-analyzer: allow(hot-path-panic) — callers pass a non-empty slice by construction
    v[0]
}

#[cfg(test)]
mod tests {
    fn exempt() {
        None::<u64>.unwrap(); // clean: cfg(test) code is exempt
    }
}
