//! Packets: the unit of data flowing through the overlay network.
//!
//! MRNet packets carry a stream id, a tag identifying the operation, and a typed
//! payload.  We keep the same shape but leave the payload as raw bytes: the STAT merge
//! filter serialises its prefix trees itself, which both mirrors the original design
//! (filters receive packed buffers) and lets the cost model reason about payload sizes
//! directly.

use bytes::Bytes;
use std::fmt;

/// Identifies an endpoint (front end, communication process or back-end daemon)
/// within one [`crate::topology::Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u32);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Operation tags.  A closed enum keeps dispatch explicit and the wire format stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketTag {
    /// Front-end → daemons: attach to the application processes.
    Attach,
    /// Front-end → daemons: take `n` stack-trace samples.
    SampleTraces,
    /// Daemons → front-end: a serialised 2D (trace/space) prefix tree.
    Merged2d,
    /// Daemons → front-end: a serialised 3D (trace/space/time) prefix tree.
    Merged3d,
    /// Daemons → front-end: the daemon's local rank map (for the remap step).
    RankMap,
    /// Daemons → front-end: a serialised tree *delta* — only the nodes and
    /// task-set words a streaming wave added over the last acknowledged wave.
    TreeDelta,
    /// SBRS broadcast of a binary image.
    BinaryBroadcast,
    /// Front-end → daemons: the negotiated frame-dictionary base table for
    /// wire format v2, broadcast once at session setup.
    Dictionary,
    /// Detach / tear down.
    Detach,
    /// Application-defined tag (tests, auxiliary tools).
    Custom(u16),
}

/// A packet travelling through the overlay network.
#[derive(Clone, Debug, PartialEq)]
pub struct Packet {
    /// Which operation this packet belongs to.
    pub tag: PacketTag,
    /// The endpoint that produced the packet (for upward packets, the daemon or
    /// communication process whose subtree the payload summarises).
    pub source: EndpointId,
    /// Serialised payload.
    pub payload: Bytes,
}

impl Packet {
    /// Construct a packet from owned bytes.
    pub fn new(tag: PacketTag, source: EndpointId, payload: impl Into<Bytes>) -> Self {
        Packet {
            tag,
            source,
            payload: payload.into(),
        }
    }

    /// An empty (control-only) packet.
    pub fn control(tag: PacketTag, source: EndpointId) -> Self {
        Packet {
            tag,
            source,
            payload: Bytes::new(),
        }
    }

    /// Payload size in bytes — the quantity the scalable-data-structure argument of
    /// Section V is all about.
    pub fn size_bytes(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_sizes_reflect_payload() {
        let p = Packet::new(PacketTag::Merged2d, EndpointId(3), vec![0u8; 128]);
        assert_eq!(p.size_bytes(), 128);
        let c = Packet::control(PacketTag::Detach, EndpointId(0));
        assert_eq!(c.size_bytes(), 0);
    }

    #[test]
    fn tags_distinguish_operations() {
        assert_ne!(PacketTag::Merged2d, PacketTag::Merged3d);
        assert_ne!(PacketTag::Dictionary, PacketTag::BinaryBroadcast);
        assert_ne!(PacketTag::Custom(1), PacketTag::Custom(2));
        assert_eq!(PacketTag::Custom(7), PacketTag::Custom(7));
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(format!("{}", EndpointId(12)), "ep12");
    }
}
