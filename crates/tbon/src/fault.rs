//! Fault handling: what the overlay does when tool processes die.
//!
//! The paper's experiments met real failures — rsh giving out at 512 daemons, the
//! resource manager hanging at 208K, the flat tree collapsing at 256 I/O nodes — and
//! a tool running 1,664 daemons for an interactive session cannot treat a lost daemon
//! as fatal.  MRNet's answer (and the one a production STAT deployment relies on) is
//! to *prune*: a failed daemon's subtree is removed from the reduction, the session
//! continues over the survivors, and the front end reports which tasks are no longer
//! covered.  This module implements that bookkeeping over a [`Topology`].

use std::collections::BTreeSet;

use crate::packet::EndpointId;
use crate::topology::{Topology, TreeNodeRole};

/// Tracks which endpoints have failed and what remains usable.
#[derive(Clone, Debug)]
pub struct FaultTracker {
    topology: Topology,
    failed: BTreeSet<EndpointId>,
}

/// The effect of one failure (or batch of failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PruneReport {
    /// Back-end daemons no longer reachable (either failed themselves or orphaned by
    /// a failed communication process).
    pub lost_backends: Vec<EndpointId>,
    /// Communication processes removed from the reduction.
    pub lost_comm_processes: Vec<EndpointId>,
    /// Whether the session can continue at all (the front end must survive and at
    /// least one back-end must remain).
    pub session_viable: bool,
}

impl FaultTracker {
    /// A tracker with no failures.
    pub fn new(topology: Topology) -> Self {
        FaultTracker {
            topology,
            failed: BTreeSet::new(),
        }
    }

    /// The topology being tracked.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Record that an endpoint has failed and compute the resulting prune.
    pub fn fail(&mut self, endpoint: EndpointId) -> PruneReport {
        self.fail_many(&[endpoint])
    }

    /// Record several simultaneous failures (e.g. a login node taking all of its
    /// communication processes with it).
    pub fn fail_many(&mut self, endpoints: &[EndpointId]) -> PruneReport {
        for &e in endpoints {
            if (e.0 as usize) < self.topology.len() {
                self.failed.insert(e);
            }
        }
        self.report()
    }

    /// Whether an endpoint is (transitively) unusable: it failed, or an ancestor did.
    pub fn is_unreachable(&self, endpoint: EndpointId) -> bool {
        let mut cur = Some(endpoint);
        while let Some(e) = cur {
            if self.failed.contains(&e) {
                return true;
            }
            cur = self.topology.node(e).parent;
        }
        false
    }

    /// The back-ends that are still reachable, in backend order.
    pub fn surviving_backends(&self) -> Vec<EndpointId> {
        self.topology
            .backends()
            .iter()
            .copied()
            .filter(|&b| !self.is_unreachable(b))
            .collect()
    }

    /// The fraction of back-ends still covered by the session.
    pub fn coverage(&self) -> f64 {
        let total = self.topology.backends().len();
        if total == 0 {
            return 0.0;
        }
        self.surviving_backends().len() as f64 / total as f64
    }

    fn report(&self) -> PruneReport {
        let lost_backends: Vec<EndpointId> = self
            .topology
            .backends()
            .iter()
            .copied()
            .filter(|&b| self.is_unreachable(b))
            .collect();
        let lost_comm_processes: Vec<EndpointId> = self
            .topology
            .nodes()
            .iter()
            .filter(|n| n.role == TreeNodeRole::CommProcess && self.is_unreachable(n.id))
            .map(|n| n.id)
            .collect();
        let frontend_ok = !self.failed.contains(&self.topology.frontend());
        let session_viable = frontend_ok && lost_backends.len() < self.topology.backends().len();
        PruneReport {
            lost_backends,
            lost_comm_processes,
            session_viable,
        }
    }

    /// Build the leaf-payload selector for a degraded reduction: given one payload
    /// per original backend (in backend order), keep only the survivors' payloads, in
    /// the order the pruned reduction expects.
    pub fn filter_leaf_payloads<T: Clone>(&self, payloads: &[T]) -> Vec<T> {
        self.topology
            .backends()
            .iter()
            .zip(payloads.iter())
            .filter(|(&b, _)| !self.is_unreachable(b))
            .map(|(_, p)| p.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TreeShape;

    fn tracker(backends: u32, comm: u32) -> FaultTracker {
        FaultTracker::new(Topology::build(TreeShape::two_deep(backends, comm)))
    }

    #[test]
    fn failing_a_daemon_loses_only_that_daemon() {
        let mut t = tracker(64, 8);
        let victim = t.topology().backends()[10];
        let report = t.fail(victim);
        assert_eq!(report.lost_backends, vec![victim]);
        assert!(report.lost_comm_processes.is_empty());
        assert!(report.session_viable);
        assert_eq!(t.surviving_backends().len(), 63);
        assert!((t.coverage() - 63.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn failing_a_comm_process_orphans_its_subtree() {
        let mut t = tracker(64, 8);
        let cp = t.topology().comm_processes()[0];
        let expected_lost = t.topology().node(cp).children.len();
        let report = t.fail(cp);
        assert_eq!(report.lost_backends.len(), expected_lost);
        assert_eq!(report.lost_comm_processes, vec![cp]);
        assert!(report.session_viable);
    }

    #[test]
    fn failing_the_frontend_kills_the_session() {
        let mut t = tracker(8, 2);
        let report = t.fail(t.topology().frontend());
        assert!(!report.session_viable);
        assert_eq!(report.lost_backends.len(), 8);
    }

    #[test]
    fn losing_every_backend_kills_the_session() {
        let mut t = tracker(4, 2);
        let backends = t.topology().backends().to_vec();
        let report = t.fail_many(&backends);
        assert!(!report.session_viable);
        assert_eq!(t.coverage(), 0.0);
    }

    #[test]
    fn leaf_payload_filtering_matches_survivors() {
        let mut t = tracker(6, 2);
        let victim = t.topology().backends()[2];
        t.fail(victim);
        let payloads: Vec<u32> = (0..6).collect();
        assert_eq!(t.filter_leaf_payloads(&payloads), vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn unknown_endpoints_are_ignored() {
        let mut t = tracker(4, 2);
        let report = t.fail(EndpointId(10_000));
        assert!(report.lost_backends.is_empty());
        assert!(report.session_viable);
    }
}
