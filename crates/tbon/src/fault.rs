//! Fault handling: what the overlay does when tool processes die.
//!
//! The paper's experiments met real failures — rsh giving out at 512 daemons, the
//! resource manager hanging at 208K, the flat tree collapsing at 256 I/O nodes — and
//! a tool running 1,664 daemons for an interactive session cannot treat a lost daemon
//! as fatal.  MRNet's answer (and the one a production STAT deployment relies on) is
//! to *prune*: a failed daemon's subtree is removed from the reduction, the session
//! continues over the survivors, and the front end reports which tasks are no longer
//! covered.  This module implements that bookkeeping over a [`Topology`].

use std::collections::BTreeSet;

use crate::filter::Filter;
use crate::packet::{EndpointId, Packet};
use crate::topology::{Topology, TreeNodeRole, TreeShape};

/// Tracks which endpoints have failed and what remains usable.
#[derive(Clone, Debug)]
pub struct FaultTracker {
    topology: Topology,
    failed: BTreeSet<EndpointId>,
}

/// The effect of one failure (or batch of failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PruneReport {
    /// Back-end daemons no longer reachable (either failed themselves or orphaned by
    /// a failed communication process).
    pub lost_backends: Vec<EndpointId>,
    /// Communication processes removed from the reduction.
    pub lost_comm_processes: Vec<EndpointId>,
    /// Whether the session can continue at all (the front end must survive and at
    /// least one back-end must remain).
    pub session_viable: bool,
}

impl FaultTracker {
    /// A tracker with no failures.
    pub fn new(topology: Topology) -> Self {
        FaultTracker {
            topology,
            failed: BTreeSet::new(),
        }
    }

    /// The topology being tracked.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Record that an endpoint has failed and compute the resulting prune.
    pub fn fail(&mut self, endpoint: EndpointId) -> PruneReport {
        self.fail_many(&[endpoint])
    }

    /// Record several simultaneous failures (e.g. a login node taking all of its
    /// communication processes with it).
    pub fn fail_many(&mut self, endpoints: &[EndpointId]) -> PruneReport {
        for &e in endpoints {
            if (e.0 as usize) < self.topology.len() {
                self.failed.insert(e);
            }
        }
        self.report()
    }

    /// Whether an endpoint is (transitively) unusable: it failed, or an ancestor did.
    pub fn is_unreachable(&self, endpoint: EndpointId) -> bool {
        let mut cur = Some(endpoint);
        while let Some(e) = cur {
            if self.failed.contains(&e) {
                return true;
            }
            cur = self.topology.node(e).parent;
        }
        false
    }

    /// The back-ends that are still reachable, in backend order.
    pub fn surviving_backends(&self) -> Vec<EndpointId> {
        self.topology
            .backends()
            .iter()
            .copied()
            .filter(|&b| !self.is_unreachable(b))
            .collect()
    }

    /// The fraction of back-ends still covered by the session.
    pub fn coverage(&self) -> f64 {
        let total = self.topology.backends().len();
        if total == 0 {
            return 0.0;
        }
        self.surviving_backends().len() as f64 / total as f64
    }

    fn report(&self) -> PruneReport {
        let lost_backends: Vec<EndpointId> = self
            .topology
            .backends()
            .iter()
            .copied()
            .filter(|&b| self.is_unreachable(b))
            .collect();
        let lost_comm_processes: Vec<EndpointId> = self
            .topology
            .nodes()
            .iter()
            .filter(|n| n.role == TreeNodeRole::CommProcess && self.is_unreachable(n.id))
            .map(|n| n.id)
            .collect();
        let frontend_ok = !self.failed.contains(&self.topology.frontend());
        let session_viable = frontend_ok && lost_backends.len() < self.topology.backends().len();
        PruneReport {
            lost_backends,
            lost_comm_processes,
            session_viable,
        }
    }

    /// Indices (into the original backend order) of the backends still reachable.
    ///
    /// This is the piece a degraded *gather* needs that [`surviving_backends`]
    /// (endpoint ids) does not give directly: which daemons' task slices are still
    /// covered, so the survivors' contributions can be re-gathered or re-merged in
    /// the order a pruned replacement topology expects.
    ///
    /// [`surviving_backends`]: FaultTracker::surviving_backends
    pub fn surviving_backend_indices(&self) -> Vec<usize> {
        self.topology
            .backends()
            .iter()
            .enumerate()
            .filter(|(_, &b)| !self.is_unreachable(b))
            .map(|(i, _)| i)
            .collect()
    }

    /// A pruned replacement [`TreeShape`] for merging the survivors: every level of
    /// the original shape shrunk to its surviving width (a failed communication
    /// process takes its whole subtree with it).  Returns `None` when the session
    /// is no longer viable — the front end died, or no backend survived.
    ///
    /// The returned shape is what a degraded session pins via its builder before
    /// calling `merge` over the survivors' contributions.
    pub fn degraded_shape(&self) -> Option<TreeShape> {
        if self.failed.contains(&self.topology.frontend()) {
            return None;
        }
        let widths: Vec<u32> = self
            .topology
            .levels()
            .iter()
            .map(|level| level.iter().filter(|&&e| !self.is_unreachable(e)).count() as u32)
            .collect();
        if widths.last().copied().unwrap_or(0) == 0 {
            return None;
        }
        // `from_level_widths` re-sanitises: interior levels emptied by failures are
        // raised back to width 1 so the surviving daemons still have a route up.
        Some(TreeShape::from_level_widths(widths))
    }

    /// Build the leaf-payload selector for a degraded reduction: given one payload
    /// per original backend (in backend order), keep only the survivors' payloads, in
    /// the order the pruned reduction expects.
    pub fn filter_leaf_payloads<T: Clone>(&self, payloads: &[T]) -> Vec<T> {
        self.topology
            .backends()
            .iter()
            .zip(payloads.iter())
            .filter(|(&b, _)| !self.is_unreachable(b))
            .map(|(_, p)| p.clone())
            .collect()
    }
}

/// How a faulty interior node corrupts the packet its filter emits.
///
/// Daemon loss (handled by [`FaultTracker`]) removes a subtree cleanly; the nastier
/// failure mode a production TBON meets is a *mid-tree* process whose filter state
/// has gone bad — it keeps participating in the reduction but forwards a damaged
/// merge of its subtree.  These are the corruption shapes the campaign suite
/// injects to check that the verdict machinery catches them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterFaultKind {
    /// The node's output payload is replaced with garbage bytes (a wild write over
    /// the filter's output buffer).
    Garbage,
    /// The node's output payload is cut to its first half (a partial flush of the
    /// filter's output buffer).
    Truncate,
}

/// One injected mid-tree filter fault: *which* interior node misbehaves and *how*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FilterFault {
    /// The tree node whose filter output is corrupted.
    pub node: EndpointId,
    /// The corruption applied to that node's output packets.
    pub kind: FilterFaultKind,
}

/// A [`Filter`] wrapper that delegates to an inner filter and corrupts the output
/// of designated tree nodes — the TBON-side hook for mid-tree fault injection.
///
/// The wrapper is transparent at every healthy node, so a reduction with an empty
/// fault list is byte-identical to one without the wrapper.
///
/// ```
/// use tbon::fault::{CorruptingFilter, FilterFault, FilterFaultKind};
/// use tbon::filter::{Filter, IdentityFilter};
/// use tbon::packet::{EndpointId, Packet, PacketTag};
///
/// let faults = [FilterFault { node: EndpointId(1), kind: FilterFaultKind::Garbage }];
/// let filter = CorruptingFilter::new(&IdentityFilter, &faults);
/// let input = [Packet::new(PacketTag::Custom(0), EndpointId(2), vec![1, 2, 3])];
///
/// // A healthy node passes the inner filter's output through unchanged...
/// assert_eq!(filter.reduce(EndpointId(0), &input).payload, vec![1, 2, 3]);
/// // ...while the faulty node's output no longer resembles its inputs.
/// assert_ne!(filter.reduce(EndpointId(1), &input).payload, vec![1, 2, 3]);
/// ```
pub struct CorruptingFilter<'a> {
    inner: &'a dyn Filter,
    faults: &'a [FilterFault],
}

impl std::fmt::Debug for CorruptingFilter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorruptingFilter")
            .field("inner", &self.inner.name())
            .field("faults", &self.faults)
            .finish()
    }
}

impl<'a> CorruptingFilter<'a> {
    /// Wrap `inner`, corrupting the output of every node named in `faults`.
    pub fn new(inner: &'a dyn Filter, faults: &'a [FilterFault]) -> Self {
        CorruptingFilter { inner, faults }
    }

    fn fault_at(&self, node: EndpointId) -> Option<FilterFaultKind> {
        self.faults.iter().find(|f| f.node == node).map(|f| f.kind)
    }
}

impl Filter for CorruptingFilter<'_> {
    fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet {
        let mut out = self.inner.reduce(node, inputs);
        match self.fault_at(node) {
            None => out,
            Some(FilterFaultKind::Garbage) => {
                // Keep the length plausible so the damage is semantic, not
                // structural: the parent sees a normal-looking packet whose
                // bytes decode to nonsense.
                let len = out.payload.len().max(8);
                let garbage: Vec<u8> = (0..len)
                    .map(|i| (i as u8).wrapping_mul(0xA5) ^ 0x5A)
                    .collect();
                out.payload = garbage.into();
                out
            }
            Some(FilterFaultKind::Truncate) => {
                let keep = out.payload.len() / 2;
                out.payload = out.payload.slice(0..keep);
                out
            }
        }
    }

    fn name(&self) -> &'static str {
        "corrupting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{IdentityFilter, SumFilter};
    use crate::packet::PacketTag;
    use crate::topology::TreeShape;

    fn tracker(backends: u32, comm: u32) -> FaultTracker {
        FaultTracker::new(Topology::build(TreeShape::two_deep(backends, comm)))
    }

    #[test]
    fn failing_a_daemon_loses_only_that_daemon() {
        let mut t = tracker(64, 8);
        let victim = t.topology().backends()[10];
        let report = t.fail(victim);
        assert_eq!(report.lost_backends, vec![victim]);
        assert!(report.lost_comm_processes.is_empty());
        assert!(report.session_viable);
        assert_eq!(t.surviving_backends().len(), 63);
        assert!((t.coverage() - 63.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn failing_a_comm_process_orphans_its_subtree() {
        let mut t = tracker(64, 8);
        let cp = t.topology().comm_processes()[0];
        let expected_lost = t.topology().node(cp).children.len();
        let report = t.fail(cp);
        assert_eq!(report.lost_backends.len(), expected_lost);
        assert_eq!(report.lost_comm_processes, vec![cp]);
        assert!(report.session_viable);
    }

    #[test]
    fn failing_the_frontend_kills_the_session() {
        let mut t = tracker(8, 2);
        let report = t.fail(t.topology().frontend());
        assert!(!report.session_viable);
        assert_eq!(report.lost_backends.len(), 8);
    }

    #[test]
    fn losing_every_backend_kills_the_session() {
        let mut t = tracker(4, 2);
        let backends = t.topology().backends().to_vec();
        let report = t.fail_many(&backends);
        assert!(!report.session_viable);
        assert_eq!(t.coverage(), 0.0);
    }

    #[test]
    fn leaf_payload_filtering_matches_survivors() {
        let mut t = tracker(6, 2);
        let victim = t.topology().backends()[2];
        t.fail(victim);
        let payloads: Vec<u32> = (0..6).collect();
        assert_eq!(t.filter_leaf_payloads(&payloads), vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn unknown_endpoints_are_ignored() {
        let mut t = tracker(4, 2);
        let report = t.fail(EndpointId(10_000));
        assert!(report.lost_backends.is_empty());
        assert!(report.session_viable);
    }

    #[test]
    fn degraded_shape_shrinks_only_the_failed_levels() {
        let mut t = tracker(64, 8);
        let victim = t.topology().backends()[63];
        t.fail(victim);
        let shape = t.degraded_shape().unwrap();
        assert_eq!(shape.level_widths, vec![1, 8, 63]);
        assert_eq!(t.surviving_backend_indices(), (0..63).collect::<Vec<_>>());

        // A failed comm process takes its subtree: one fewer comm, 8 fewer daemons.
        let mut t = tracker(64, 8);
        let cp = t.topology().comm_processes()[7];
        let orphans = t.topology().node(cp).children.len() as u32;
        t.fail(cp);
        let shape = t.degraded_shape().unwrap();
        assert_eq!(shape.level_widths, vec![1, 7, 64 - orphans]);
        assert_eq!(t.surviving_backend_indices().len() as u32, 64 - orphans);
    }

    #[test]
    fn pruned_depth_four_shapes_account_for_every_backend() {
        // At depth ≥ 4 a mid-level comm-process failure orphans a whole
        // multi-level subtree; the pruned shape's surviving daemons plus the
        // report's lost daemons must still account for every original one,
        // and the coverage fraction must agree with that arithmetic.
        let topo = Topology::build(TreeShape::uniform_with_depth(64, 4, 4));
        assert!(topo.levels().len() >= 5, "shape is not 4 deep");
        let mut t = FaultTracker::new(topo);
        let mid = t.topology().levels()[2][0];
        let report = t.fail(mid);
        let lost = report.lost_backends.len();
        assert!(lost > 0, "a mid-level failure must orphan daemons");

        let degraded = t.degraded_shape().expect("survivors remain");
        assert_eq!(degraded.backends() as usize + lost, 64);
        assert!((t.coverage() - degraded.backends() as f64 / 64.0).abs() < 1e-12);
        assert_eq!(t.surviving_backend_indices().len() + lost, 64);

        // The pruned shape still builds a valid topology of the same depth.
        let rebuilt = Topology::build(degraded);
        assert_eq!(rebuilt.backends().len() + lost, 64);
    }

    #[test]
    fn degraded_shape_is_none_when_the_session_dies() {
        let mut t = tracker(8, 2);
        t.fail(t.topology().frontend());
        assert!(t.degraded_shape().is_none());

        let mut t = tracker(4, 2);
        let backends = t.topology().backends().to_vec();
        t.fail_many(&backends);
        assert!(t.degraded_shape().is_none());
    }

    #[test]
    fn degraded_shape_is_none_when_all_backends_die_individually() {
        // Satellite coverage: every daemon failing one by one (not via a comm
        // cascade) must also leave no degraded shape.
        let mut t = tracker(6, 3);
        for b in t.topology().backends().to_vec() {
            t.fail(b);
        }
        assert_eq!(t.coverage(), 0.0);
        assert!(t.degraded_shape().is_none());
        assert!(t.surviving_backend_indices().is_empty());
    }

    #[test]
    fn degraded_shape_resanitises_down_to_a_single_survivor() {
        // Kill every backend but one: the pruned shape must still be a valid tree
        // with exactly one leaf, and the surviving index must be the survivor's.
        let mut t = tracker(8, 4);
        let backends = t.topology().backends().to_vec();
        t.fail_many(&backends[..7]);
        let shape = t.degraded_shape().expect("one survivor keeps the session");
        assert_eq!(shape.backends(), 1);
        assert_eq!(*shape.level_widths.first().unwrap(), 1, "frontend intact");
        // Every interior level was re-sanitised to width >= 1 and never widens
        // on the way down — the shape builds into a real topology.
        for w in &shape.level_widths {
            assert!(*w >= 1);
        }
        let rebuilt = Topology::build(shape);
        assert_eq!(rebuilt.backends().len(), 1);
        assert_eq!(t.surviving_backend_indices(), vec![7]);
    }

    #[test]
    fn corrupting_filter_is_transparent_without_faults() {
        let inputs = [
            Packet::new(PacketTag::Custom(1), EndpointId(2), vec![1, 2]),
            Packet::new(PacketTag::Custom(1), EndpointId(3), vec![3]),
        ];
        let clean = IdentityFilter.reduce(EndpointId(0), &inputs);
        let wrapped = CorruptingFilter::new(&IdentityFilter, &[]).reduce(EndpointId(0), &inputs);
        assert_eq!(clean.payload, wrapped.payload);
        assert_eq!(clean.tag, wrapped.tag);
    }

    #[test]
    fn corrupting_filter_hits_only_the_designated_node() {
        let faults = [FilterFault {
            node: EndpointId(5),
            kind: FilterFaultKind::Garbage,
        }];
        let f = CorruptingFilter::new(&SumFilter, &faults);
        let inputs = [
            Packet::new(PacketTag::Custom(1), EndpointId(8), SumFilter::encode(40)),
            Packet::new(PacketTag::Custom(1), EndpointId(9), SumFilter::encode(2)),
        ];
        assert_eq!(SumFilter::decode(&f.reduce(EndpointId(4), &inputs)), 42);
        let corrupted = f.reduce(EndpointId(5), &inputs);
        assert_ne!(SumFilter::decode(&corrupted), 42);
        assert!(!corrupted.payload.is_empty());
    }

    #[test]
    fn truncation_halves_the_payload() {
        let faults = [FilterFault {
            node: EndpointId(1),
            kind: FilterFaultKind::Truncate,
        }];
        let f = CorruptingFilter::new(&IdentityFilter, &faults);
        let inputs = [Packet::new(
            PacketTag::Custom(1),
            EndpointId(2),
            vec![9; 10],
        )];
        assert_eq!(f.reduce(EndpointId(1), &inputs).payload.len(), 5);
        assert_eq!(f.name(), "corrupting");
    }

    #[test]
    fn degraded_shape_revives_an_emptied_comm_level() {
        // Kill every comm process but leave some backends' contributions needed:
        // all backends are orphaned, so the session is not viable...
        let mut t = tracker(8, 2);
        let cps = t.topology().comm_processes();
        t.fail_many(&cps);
        assert!(t.degraded_shape().is_none(), "all backends orphaned");

        // ...but on a 3-deep tree, losing one mid-level node keeps the rest alive
        // and the sanitiser keeps every level at width >= 1.
        let topo = Topology::build(crate::topology::TreeShape::three_deep(27, 3, 9));
        let mut t = FaultTracker::new(topo.clone());
        let mid = topo.comm_processes()[0];
        t.fail(mid);
        let shape = t.degraded_shape().unwrap();
        assert_eq!(shape.depth(), 3);
        assert_eq!(
            shape.backends() as usize,
            t.surviving_backend_indices().len()
        );
    }
}
