//! Fault handling: what the overlay does when tool processes die.
//!
//! The paper's experiments met real failures — rsh giving out at 512 daemons, the
//! resource manager hanging at 208K, the flat tree collapsing at 256 I/O nodes — and
//! a tool running 1,664 daemons for an interactive session cannot treat a lost daemon
//! as fatal.  MRNet's answer (and the one a production STAT deployment relies on) is
//! to *prune*: a failed daemon's subtree is removed from the reduction, the session
//! continues over the survivors, and the front end reports which tasks are no longer
//! covered.  This module implements that bookkeeping over a [`Topology`].

use std::collections::BTreeSet;

use crate::packet::EndpointId;
use crate::topology::{Topology, TreeNodeRole, TreeShape};

/// Tracks which endpoints have failed and what remains usable.
#[derive(Clone, Debug)]
pub struct FaultTracker {
    topology: Topology,
    failed: BTreeSet<EndpointId>,
}

/// The effect of one failure (or batch of failures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PruneReport {
    /// Back-end daemons no longer reachable (either failed themselves or orphaned by
    /// a failed communication process).
    pub lost_backends: Vec<EndpointId>,
    /// Communication processes removed from the reduction.
    pub lost_comm_processes: Vec<EndpointId>,
    /// Whether the session can continue at all (the front end must survive and at
    /// least one back-end must remain).
    pub session_viable: bool,
}

impl FaultTracker {
    /// A tracker with no failures.
    pub fn new(topology: Topology) -> Self {
        FaultTracker {
            topology,
            failed: BTreeSet::new(),
        }
    }

    /// The topology being tracked.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Record that an endpoint has failed and compute the resulting prune.
    pub fn fail(&mut self, endpoint: EndpointId) -> PruneReport {
        self.fail_many(&[endpoint])
    }

    /// Record several simultaneous failures (e.g. a login node taking all of its
    /// communication processes with it).
    pub fn fail_many(&mut self, endpoints: &[EndpointId]) -> PruneReport {
        for &e in endpoints {
            if (e.0 as usize) < self.topology.len() {
                self.failed.insert(e);
            }
        }
        self.report()
    }

    /// Whether an endpoint is (transitively) unusable: it failed, or an ancestor did.
    pub fn is_unreachable(&self, endpoint: EndpointId) -> bool {
        let mut cur = Some(endpoint);
        while let Some(e) = cur {
            if self.failed.contains(&e) {
                return true;
            }
            cur = self.topology.node(e).parent;
        }
        false
    }

    /// The back-ends that are still reachable, in backend order.
    pub fn surviving_backends(&self) -> Vec<EndpointId> {
        self.topology
            .backends()
            .iter()
            .copied()
            .filter(|&b| !self.is_unreachable(b))
            .collect()
    }

    /// The fraction of back-ends still covered by the session.
    pub fn coverage(&self) -> f64 {
        let total = self.topology.backends().len();
        if total == 0 {
            return 0.0;
        }
        self.surviving_backends().len() as f64 / total as f64
    }

    fn report(&self) -> PruneReport {
        let lost_backends: Vec<EndpointId> = self
            .topology
            .backends()
            .iter()
            .copied()
            .filter(|&b| self.is_unreachable(b))
            .collect();
        let lost_comm_processes: Vec<EndpointId> = self
            .topology
            .nodes()
            .iter()
            .filter(|n| n.role == TreeNodeRole::CommProcess && self.is_unreachable(n.id))
            .map(|n| n.id)
            .collect();
        let frontend_ok = !self.failed.contains(&self.topology.frontend());
        let session_viable = frontend_ok && lost_backends.len() < self.topology.backends().len();
        PruneReport {
            lost_backends,
            lost_comm_processes,
            session_viable,
        }
    }

    /// Indices (into the original backend order) of the backends still reachable.
    ///
    /// This is the piece a degraded *gather* needs that [`surviving_backends`]
    /// (endpoint ids) does not give directly: which daemons' task slices are still
    /// covered, so the survivors' contributions can be re-gathered or re-merged in
    /// the order a pruned replacement topology expects.
    ///
    /// [`surviving_backends`]: FaultTracker::surviving_backends
    pub fn surviving_backend_indices(&self) -> Vec<usize> {
        self.topology
            .backends()
            .iter()
            .enumerate()
            .filter(|(_, &b)| !self.is_unreachable(b))
            .map(|(i, _)| i)
            .collect()
    }

    /// A pruned replacement [`TreeShape`] for merging the survivors: every level of
    /// the original shape shrunk to its surviving width (a failed communication
    /// process takes its whole subtree with it).  Returns `None` when the session
    /// is no longer viable — the front end died, or no backend survived.
    ///
    /// The returned shape is what a degraded session pins via its builder before
    /// calling `merge` over the survivors' contributions.
    pub fn degraded_shape(&self) -> Option<TreeShape> {
        if self.failed.contains(&self.topology.frontend()) {
            return None;
        }
        let widths: Vec<u32> = self
            .topology
            .levels()
            .iter()
            .map(|level| level.iter().filter(|&&e| !self.is_unreachable(e)).count() as u32)
            .collect();
        if widths.last().copied().unwrap_or(0) == 0 {
            return None;
        }
        // `from_level_widths` re-sanitises: interior levels emptied by failures are
        // raised back to width 1 so the surviving daemons still have a route up.
        Some(TreeShape::from_level_widths(widths))
    }

    /// Build the leaf-payload selector for a degraded reduction: given one payload
    /// per original backend (in backend order), keep only the survivors' payloads, in
    /// the order the pruned reduction expects.
    pub fn filter_leaf_payloads<T: Clone>(&self, payloads: &[T]) -> Vec<T> {
        self.topology
            .backends()
            .iter()
            .zip(payloads.iter())
            .filter(|(&b, _)| !self.is_unreachable(b))
            .map(|(_, p)| p.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TreeShape;

    fn tracker(backends: u32, comm: u32) -> FaultTracker {
        FaultTracker::new(Topology::build(TreeShape::two_deep(backends, comm)))
    }

    #[test]
    fn failing_a_daemon_loses_only_that_daemon() {
        let mut t = tracker(64, 8);
        let victim = t.topology().backends()[10];
        let report = t.fail(victim);
        assert_eq!(report.lost_backends, vec![victim]);
        assert!(report.lost_comm_processes.is_empty());
        assert!(report.session_viable);
        assert_eq!(t.surviving_backends().len(), 63);
        assert!((t.coverage() - 63.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn failing_a_comm_process_orphans_its_subtree() {
        let mut t = tracker(64, 8);
        let cp = t.topology().comm_processes()[0];
        let expected_lost = t.topology().node(cp).children.len();
        let report = t.fail(cp);
        assert_eq!(report.lost_backends.len(), expected_lost);
        assert_eq!(report.lost_comm_processes, vec![cp]);
        assert!(report.session_viable);
    }

    #[test]
    fn failing_the_frontend_kills_the_session() {
        let mut t = tracker(8, 2);
        let report = t.fail(t.topology().frontend());
        assert!(!report.session_viable);
        assert_eq!(report.lost_backends.len(), 8);
    }

    #[test]
    fn losing_every_backend_kills_the_session() {
        let mut t = tracker(4, 2);
        let backends = t.topology().backends().to_vec();
        let report = t.fail_many(&backends);
        assert!(!report.session_viable);
        assert_eq!(t.coverage(), 0.0);
    }

    #[test]
    fn leaf_payload_filtering_matches_survivors() {
        let mut t = tracker(6, 2);
        let victim = t.topology().backends()[2];
        t.fail(victim);
        let payloads: Vec<u32> = (0..6).collect();
        assert_eq!(t.filter_leaf_payloads(&payloads), vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn unknown_endpoints_are_ignored() {
        let mut t = tracker(4, 2);
        let report = t.fail(EndpointId(10_000));
        assert!(report.lost_backends.is_empty());
        assert!(report.session_viable);
    }

    #[test]
    fn degraded_shape_shrinks_only_the_failed_levels() {
        let mut t = tracker(64, 8);
        let victim = t.topology().backends()[63];
        t.fail(victim);
        let shape = t.degraded_shape().unwrap();
        assert_eq!(shape.level_widths, vec![1, 8, 63]);
        assert_eq!(t.surviving_backend_indices(), (0..63).collect::<Vec<_>>());

        // A failed comm process takes its subtree: one fewer comm, 8 fewer daemons.
        let mut t = tracker(64, 8);
        let cp = t.topology().comm_processes()[7];
        let orphans = t.topology().node(cp).children.len() as u32;
        t.fail(cp);
        let shape = t.degraded_shape().unwrap();
        assert_eq!(shape.level_widths, vec![1, 7, 64 - orphans]);
        assert_eq!(t.surviving_backend_indices().len() as u32, 64 - orphans);
    }

    #[test]
    fn degraded_shape_is_none_when_the_session_dies() {
        let mut t = tracker(8, 2);
        t.fail(t.topology().frontend());
        assert!(t.degraded_shape().is_none());

        let mut t = tracker(4, 2);
        let backends = t.topology().backends().to_vec();
        t.fail_many(&backends);
        assert!(t.degraded_shape().is_none());
    }

    #[test]
    fn degraded_shape_revives_an_emptied_comm_level() {
        // Kill every comm process but leave some backends' contributions needed:
        // all backends are orphaned, so the session is not viable...
        let mut t = tracker(8, 2);
        let cps = t.topology().comm_processes();
        t.fail_many(&cps);
        assert!(t.degraded_shape().is_none(), "all backends orphaned");

        // ...but on a 3-deep tree, losing one mid-level node keeps the rest alive
        // and the sanitiser keeps every level at width >= 1.
        let topo = Topology::build(crate::topology::TreeShape::three_deep(27, 3, 9));
        let mut t = FaultTracker::new(topo.clone());
        let mid = topo.comm_processes()[0];
        t.fail(mid);
        let shape = t.degraded_shape().unwrap();
        assert_eq!(shape.depth(), 3);
        assert_eq!(
            shape.backends() as usize,
            t.surviving_backend_indices().len()
        );
    }
}
