//! An in-process, thread-parallel TBON that really executes reductions.
//!
//! The figure generators use the analytic [`crate::cost`] model to reason about
//! 212,992-task configurations, but the tool itself — and the integration tests, the
//! examples and the real-execution benchmarks — run their reductions through this
//! network: every communication process and daemon position in the topology is
//! materialised, every filter invocation really happens on real serialised payloads,
//! and nodes at the same tree level run concurrently on a thread pool, mirroring how
//! the real MRNet processes run concurrently on different hosts.
//!
//! The paper's front end does not run its reductions one at a time: the 2D tree, the
//! 3D tree and the rank map all flow up the same physical tree in the same session.
//! [`InProcessTbon::reduce_channels`] models that directly — one bottom-up level walk
//! carries any number of tagged channels, each with its own filter, so a session pays
//! for exactly one traversal of the overlay however many data streams it merges.
//! [`InProcessTbon::reduce`] is the single-channel special case.
//!
//! The output includes the byte-flow accounting (bytes into the front end, the
//! heaviest node, total bytes crossing links) because those quantities, not wall-clock
//! time on a single workstation, are what distinguish the original global-bit-vector
//! representation from the hierarchical one at scale.

use std::fmt;
use std::time::{Duration, Instant};

use crate::filter::Filter;
use crate::packet::{EndpointId, Packet};
use crate::topology::{Topology, TreeNodeRole};

/// Errors the in-process network reports instead of panicking.
///
/// A mismatch between the caller's view of the job and the topology used to be an
/// `assert_eq!`; at 208K cores "the tool crashed" and "one daemon dropped out" are
/// very different diagnoses, so the network now returns the context instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TbonError {
    /// A channel supplied a different number of leaf packets than the topology has
    /// back-end daemons.
    LeafCountMismatch {
        /// Label of the offending channel.
        channel: &'static str,
        /// Back-end daemons the topology expects one packet from.
        expected: usize,
        /// Leaf packets the channel actually supplied.
        actual: usize,
    },
    /// `reduce_channels` was called with no channels at all.
    NoChannels,
    /// The number of filters does not match the number of channels.
    FilterCountMismatch {
        /// Channels supplied.
        channels: usize,
        /// Filters supplied.
        filters: usize,
    },
}

impl fmt::Display for TbonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbonError::LeafCountMismatch {
                channel,
                expected,
                actual,
            } => write!(
                f,
                "channel `{channel}` supplied {actual} leaf packets but the topology \
                 has {expected} back-end daemons"
            ),
            TbonError::NoChannels => write!(f, "reduce_channels requires at least one channel"),
            TbonError::FilterCountMismatch { channels, filters } => write!(
                f,
                "{channels} channels were given {filters} filters; each channel needs \
                 exactly one"
            ),
        }
    }
}

impl std::error::Error for TbonError {}

/// One tagged data stream entering the overlay at the leaves.
///
/// A channel owns its leaf packets — the network consumes them rather than cloning
/// them, so handing three channels to [`InProcessTbon::reduce_channels`] moves the
/// daemons' serialised trees into the reduction instead of copying them per pass.
#[derive(Clone, Debug)]
pub struct ChannelInput {
    /// Human-readable channel label, carried into error context.
    pub label: &'static str,
    /// One packet per back-end daemon, in [`Topology::backends`] order.
    pub leaves: Vec<Packet>,
}

impl ChannelInput {
    /// A channel from owned leaf packets.
    pub fn new(label: &'static str, leaves: Vec<Packet>) -> Self {
        ChannelInput { label, leaves }
    }
}

/// The result of one upward reduction (of one channel).
#[derive(Clone, Debug)]
pub struct ReductionOutcome {
    /// The channel this outcome belongs to.
    pub channel: &'static str,
    /// The packet that arrived at the front end.
    pub result: Packet,
    /// Cumulative time spent inside this channel's filter invocations, summed
    /// across tree nodes.  Under [`ExecutionMode::LevelParallel`] invocations run
    /// concurrently, so this is CPU-style accounting and can exceed the elapsed
    /// wall time of the walk — time the walk itself for wall-clock numbers.
    pub filter_time: Duration,
    /// Number of filter invocations performed (one per internal node, including the
    /// front end).
    pub filter_invocations: usize,
    /// Bytes received by the front end from its children.
    pub frontend_bytes_in: u64,
    /// The largest number of bytes received by any single node — the hot spot the
    /// paper's Section V is concerned with.
    pub max_node_bytes_in: u64,
    /// Total bytes that crossed tree links (every packet counted once per hop).
    pub total_link_bytes: u64,
}

/// Execution strategy for the in-process network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Run every filter invocation on the calling thread (deterministic ordering,
    /// easiest to debug).
    Sequential,
    /// Run the nodes of each tree level concurrently with scoped threads, limited to
    /// the machine's available parallelism.
    LevelParallel,
}

/// Per-channel running totals while a level walk is in flight.
#[derive(Clone, Default)]
struct ChannelAccounting {
    filter_invocations: usize,
    max_node_bytes_in: u64,
    total_link_bytes: u64,
    frontend_bytes_in: u64,
    filter_wall: Duration,
}

/// What one node produced for one channel: the output packet, the bytes it received
/// from its children on that channel, and the time its filter invocation took.
type NodeChannelResult = (Packet, u64, Duration);

/// One unit of level work: a node, a channel, and the owned child packets to reduce.
type InputWave = (EndpointId, usize, Vec<Packet>);

/// An in-process TBON bound to a concrete topology.
#[derive(Clone, Debug)]
pub struct InProcessTbon {
    topology: Topology,
    mode: ExecutionMode,
}

impl InProcessTbon {
    /// Create a network over a topology using level-parallel execution.
    pub fn new(topology: Topology) -> Self {
        InProcessTbon {
            topology,
            mode: ExecutionMode::LevelParallel,
        }
    }

    /// Select the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The topology the network is bound to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Perform one upward reduction of a single channel.
    ///
    /// `leaf_payloads` supplies one packet per back-end daemon, in the same order as
    /// [`Topology::backends`].  A count mismatch returns
    /// [`TbonError::LeafCountMismatch`] — the caller's view of the job does not match
    /// the topology, which at scale is a diagnosis, not a programming error to die on.
    pub fn reduce(
        &self,
        leaf_payloads: Vec<Packet>,
        filter: &dyn Filter,
    ) -> Result<ReductionOutcome, TbonError> {
        let mut outcomes =
            self.reduce_channels(vec![ChannelInput::new("default", leaf_payloads)], &[filter])?;
        Ok(outcomes.pop().expect("one channel in, one outcome out"))
    }

    /// Carry several tagged channels up the tree in **one** bottom-up level walk.
    ///
    /// Every internal node is visited exactly once; at each visit it runs each
    /// channel's filter over that channel's child packets.  This is how the session
    /// front end merges the 2D tree, the 3D tree and the rank map without paying for
    /// three traversals of the overlay, and the per-channel accounting in the returned
    /// [`ReductionOutcome`]s is what the byte-flow figures are built from.
    ///
    /// The channels are consumed: leaf packets move into the reduction, they are not
    /// cloned per channel or per pass.
    pub fn reduce_channels(
        &self,
        channels: Vec<ChannelInput>,
        filters: &[&dyn Filter],
    ) -> Result<Vec<ReductionOutcome>, TbonError> {
        if channels.is_empty() {
            return Err(TbonError::NoChannels);
        }
        if channels.len() != filters.len() {
            return Err(TbonError::FilterCountMismatch {
                channels: channels.len(),
                filters: filters.len(),
            });
        }
        let backends = self.topology.backends();
        for channel in &channels {
            if channel.leaves.len() != backends.len() {
                return Err(TbonError::LeafCountMismatch {
                    channel: channel.label,
                    expected: backends.len(),
                    actual: channel.leaves.len(),
                });
            }
        }

        let labels: Vec<&'static str> = channels.iter().map(|c| c.label).collect();
        // Current packet produced by each endpoint, per channel, indexed by
        // endpoint id.
        let mut produced: Vec<Vec<Option<Packet>>> = channels
            .into_iter()
            .map(|channel| {
                let mut slots: Vec<Option<Packet>> = vec![None; self.topology.len()];
                for (&backend, packet) in backends.iter().zip(channel.leaves) {
                    slots[backend.0 as usize] = Some(packet);
                }
                slots
            })
            .collect();

        let mut accounting = vec![ChannelAccounting::default(); filters.len()];

        // The single bottom-up level walk, skipping the leaf level.  Work items are
        // (node, channel) waves so that, at narrow levels — ultimately the single
        // front-end node — the channels themselves still run concurrently.  Each
        // wave *moves* its child packets out of the slot table (every child has
        // exactly one parent), so no packet is ever cloned on its way up the tree
        // and peak memory stays proportional to one level.
        let levels = self.topology.levels();
        for level in (0..levels.len().saturating_sub(1)).rev() {
            let node_ids: Vec<EndpointId> = levels[level]
                .iter()
                .copied()
                .filter(|&id| self.topology.node(id).role != TreeNodeRole::BackEnd)
                .collect();
            // Node-major order: every channel fires at a node before the next node.
            let items: Vec<InputWave> = node_ids
                .iter()
                .flat_map(|&id| (0..filters.len()).map(move |channel| (id, channel)))
                .map(|(id, channel)| {
                    let inputs: Vec<Packet> = self
                        .topology
                        .node(id)
                        .children
                        .iter()
                        .map(|&c| {
                            produced[channel][c.0 as usize]
                                .take()
                                .expect("child must have produced a packet before its parent runs")
                        })
                        .collect();
                    (id, channel, inputs)
                })
                .collect();

            let results: Vec<(EndpointId, usize, NodeChannelResult)> = match self.mode {
                ExecutionMode::Sequential => items
                    .into_iter()
                    .map(|(id, channel, inputs)| {
                        let r = Self::reduce_one(id, inputs, filters[channel]);
                        (id, channel, r)
                    })
                    .collect(),
                ExecutionMode::LevelParallel => Self::reduce_level_parallel(items, filters),
            };

            for (id, channel, (packet, bytes_in, wall)) in results {
                let acc = &mut accounting[channel];
                acc.filter_invocations += 1;
                acc.max_node_bytes_in = acc.max_node_bytes_in.max(bytes_in);
                acc.total_link_bytes += bytes_in;
                acc.filter_wall += wall;
                if id == self.topology.frontend() {
                    acc.frontend_bytes_in = bytes_in;
                }
                produced[channel][id.0 as usize] = Some(packet);
            }
        }

        let frontend = self.topology.frontend().0 as usize;
        Ok(accounting
            .into_iter()
            .zip(labels)
            .enumerate()
            .map(|(channel, (acc, label))| ReductionOutcome {
                channel: label,
                result: produced[channel][frontend]
                    .take()
                    .expect("front end must have produced a result"),
                filter_time: acc.filter_wall,
                filter_invocations: acc.filter_invocations,
                frontend_bytes_in: acc.frontend_bytes_in,
                max_node_bytes_in: acc.max_node_bytes_in,
                total_link_bytes: acc.total_link_bytes,
            })
            .collect())
    }

    /// Run one channel's filter at one node over its owned input wave.
    fn reduce_one(id: EndpointId, inputs: Vec<Packet>, filter: &dyn Filter) -> NodeChannelResult {
        let bytes_in: u64 = inputs.iter().map(|p| p.size_bytes() as u64).sum();
        let start = Instant::now();
        let packet = filter.reduce(id, &inputs);
        (packet, bytes_in, start.elapsed())
    }

    fn reduce_level_parallel(
        items: Vec<InputWave>,
        filters: &[&dyn Filter],
    ) -> Vec<(EndpointId, usize, NodeChannelResult)> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(items.len().max(1));
        if workers <= 1 || items.len() <= 1 {
            return items
                .into_iter()
                .map(|(id, channel, inputs)| {
                    let r = Self::reduce_one(id, inputs, filters[channel]);
                    (id, channel, r)
                })
                .collect();
        }
        // Split the owned waves into one work list per worker.
        let chunk_size = items.len().div_ceil(workers);
        let mut chunks: Vec<Vec<InputWave>> = Vec::with_capacity(workers);
        let mut iter = items.into_iter();
        loop {
            let chunk: Vec<InputWave> = iter.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let mut results: Vec<(EndpointId, usize, NodeChannelResult)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                handles.push(scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|(id, channel, inputs)| {
                            let r = Self::reduce_one(id, inputs, filters[channel]);
                            (id, channel, r)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.extend(h.join().expect("reduction worker panicked"));
            }
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{IdentityFilter, SumFilter};
    use crate::packet::PacketTag;
    use crate::topology::TreeShape;
    use std::sync::Mutex;

    fn leaf_packets(topology: &Topology, value_of: impl Fn(usize) -> u64) -> Vec<Packet> {
        topology
            .backends()
            .iter()
            .enumerate()
            .map(|(i, &id)| Packet::new(PacketTag::Custom(9), id, SumFilter::encode(value_of(i))))
            .collect()
    }

    #[test]
    fn sum_reduction_over_flat_tree() {
        let topo = Topology::build(TreeShape::flat(32));
        let net = InProcessTbon::new(topo);
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let out = net.reduce(leaves, &SumFilter).unwrap();
        assert_eq!(SumFilter::decode(&out.result), (0..32).sum::<u64>());
        assert_eq!(out.filter_invocations, 1);
        assert_eq!(out.frontend_bytes_in, 32 * 8);
    }

    #[test]
    fn sum_reduction_is_topology_invariant() {
        let expected: u64 = (0..100u64).map(|i| i * 3 + 1).sum();
        for spec in [
            TreeShape::flat(100),
            TreeShape::two_deep(100, 10),
            TreeShape::three_deep(100, 4, 16),
        ] {
            let net = InProcessTbon::new(Topology::build(spec));
            let leaves = leaf_packets(net.topology(), |i| i as u64 * 3 + 1);
            let out = net.reduce(leaves, &SumFilter).unwrap();
            assert_eq!(SumFilter::decode(&out.result), expected);
        }
    }

    #[test]
    fn sequential_and_parallel_modes_agree() {
        let topo = Topology::build(TreeShape::two_deep(64, 8));
        let seq = InProcessTbon::new(topo.clone()).with_mode(ExecutionMode::Sequential);
        let par = InProcessTbon::new(topo).with_mode(ExecutionMode::LevelParallel);
        let leaves_a = leaf_packets(seq.topology(), |i| (i * i) as u64);
        let leaves_b = leaf_packets(par.topology(), |i| (i * i) as u64);
        let a = seq.reduce(leaves_a, &SumFilter).unwrap();
        let b = par.reduce(leaves_b, &SumFilter).unwrap();
        assert_eq!(SumFilter::decode(&a.result), SumFilter::decode(&b.result));
        assert_eq!(a.filter_invocations, b.filter_invocations);
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
    }

    #[test]
    fn identity_filter_exposes_the_flat_tree_hotspot() {
        // With no aggregation, a deeper tree does not reduce what the front end sees,
        // but it does reduce what any single *intermediate* node must absorb relative
        // to the flat tree's front end when payloads are large.
        let payload = vec![7u8; 1024];
        let flat = InProcessTbon::new(Topology::build(TreeShape::flat(64)));
        let deep = InProcessTbon::new(Topology::build(TreeShape::two_deep(64, 8)));
        let flat_out = flat
            .reduce(
                flat.topology()
                    .backends()
                    .iter()
                    .map(|&id| Packet::new(PacketTag::Custom(0), id, payload.clone()))
                    .collect(),
                &IdentityFilter,
            )
            .unwrap();
        let deep_out = deep
            .reduce(
                deep.topology()
                    .backends()
                    .iter()
                    .map(|&id| Packet::new(PacketTag::Custom(0), id, payload.clone()))
                    .collect(),
                &IdentityFilter,
            )
            .unwrap();
        assert_eq!(flat_out.result.size_bytes(), 64 * 1024);
        assert_eq!(deep_out.result.size_bytes(), 64 * 1024);
        assert_eq!(flat_out.max_node_bytes_in, 64 * 1024);
        // In the 2-deep tree each comm process absorbs 8 KiB and the front end 64 KiB,
        // so the max is still the front end — but total link bytes doubled because the
        // data crossed two hops.  Both facts matter for the Section V argument.
        assert_eq!(deep_out.total_link_bytes, 2 * 64 * 1024);
        assert!(deep_out.filter_invocations > flat_out.filter_invocations);
    }

    #[test]
    fn mismatched_leaf_count_is_an_error_with_context() {
        let net = InProcessTbon::new(Topology::build(TreeShape::flat(4)));
        let err = net.reduce(vec![], &SumFilter).unwrap_err();
        assert_eq!(
            err,
            TbonError::LeafCountMismatch {
                channel: "default",
                expected: 4,
                actual: 0,
            }
        );
        assert!(err.to_string().contains("4 back-end daemons"));
    }

    #[test]
    fn channel_and_filter_counts_must_agree() {
        let net = InProcessTbon::new(Topology::build(TreeShape::flat(2)));
        assert_eq!(
            net.reduce_channels(vec![], &[]).unwrap_err(),
            TbonError::NoChannels
        );
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let err = net
            .reduce_channels(vec![ChannelInput::new("only", leaves)], &[])
            .unwrap_err();
        assert_eq!(
            err,
            TbonError::FilterCountMismatch {
                channels: 1,
                filters: 0,
            }
        );
    }

    #[test]
    fn single_backend_tree_works() {
        let net = InProcessTbon::new(Topology::build(TreeShape::flat(1)));
        let leaves = leaf_packets(net.topology(), |_| 41);
        let out = net.reduce(leaves, &SumFilter).unwrap();
        assert_eq!(SumFilter::decode(&out.result), 41);
    }

    #[test]
    fn multi_channel_reduction_matches_independent_reductions() {
        let topo = Topology::build(TreeShape::two_deep(48, 6));
        let net = InProcessTbon::new(topo);
        let a = leaf_packets(net.topology(), |i| i as u64);
        let b = leaf_packets(net.topology(), |i| i as u64 * 10);
        let c = leaf_packets(net.topology(), |i| 1 + (i as u64 % 3));

        let separate: Vec<u64> = [a.clone(), b.clone(), c.clone()]
            .into_iter()
            .map(|leaves| SumFilter::decode(&net.reduce(leaves, &SumFilter).unwrap().result))
            .collect();

        let outcomes = net
            .reduce_channels(
                vec![
                    ChannelInput::new("a", a),
                    ChannelInput::new("b", b),
                    ChannelInput::new("c", c),
                ],
                &[&SumFilter, &SumFilter, &SumFilter],
            )
            .unwrap();
        let combined: Vec<u64> = outcomes
            .iter()
            .map(|o| SumFilter::decode(&o.result))
            .collect();
        assert_eq!(separate, combined);
        assert_eq!(outcomes[0].channel, "a");
        assert_eq!(outcomes[2].channel, "c");
        // Per-channel accounting matches a standalone reduction: 6 comm processes
        // plus the front end.
        for outcome in &outcomes {
            assert_eq!(outcome.filter_invocations, 7);
            assert!(outcome.total_link_bytes > 0);
        }
    }

    /// A filter that records the (node, channel) order of its invocations.
    struct TracingFilter {
        channel: &'static str,
        log: &'static Mutex<Vec<(&'static str, u32)>>,
    }

    impl Filter for TracingFilter {
        fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet {
            self.log.lock().unwrap().push((self.channel, node.0));
            IdentityFilter.reduce(node, inputs)
        }
    }

    #[test]
    fn reduce_channels_performs_one_level_walk_for_all_channels() {
        // Sequential mode gives a deterministic invocation order.  A single-pass walk
        // is node-major: every channel fires at a node before the walk moves to the
        // next node.  Three sequential `reduce` calls would instead be channel-major
        // (all of channel 0's nodes, then all of channel 1's...).
        static LOG: Mutex<Vec<(&'static str, u32)>> = Mutex::new(Vec::new());
        LOG.lock().unwrap().clear();

        let topo = Topology::build(TreeShape::two_deep(8, 2));
        let net = InProcessTbon::new(topo).with_mode(ExecutionMode::Sequential);
        let make = || {
            net.topology()
                .backends()
                .iter()
                .map(|&id| Packet::new(PacketTag::Custom(0), id, vec![1u8]))
                .collect::<Vec<_>>()
        };
        let first = TracingFilter {
            channel: "first",
            log: &LOG,
        };
        let second = TracingFilter {
            channel: "second",
            log: &LOG,
        };
        net.reduce_channels(
            vec![
                ChannelInput::new("first", make()),
                ChannelInput::new("second", make()),
            ],
            &[&first, &second],
        )
        .unwrap();

        let log = LOG.lock().unwrap();
        // 3 internal nodes (2 comm processes + front end) × 2 channels.
        assert_eq!(log.len(), 6);
        for pair in log.chunks(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "both channels must fire at a node before the walk moves on: {log:?}"
            );
            assert_eq!(pair[0].0, "first");
            assert_eq!(pair[1].0, "second");
        }
    }
}
