//! An in-process, thread-parallel TBON that really executes reductions.
//!
//! The figure generators use the analytic [`crate::cost`] model to reason about
//! 212,992-task configurations, but the tool itself — and the integration tests, the
//! examples and the real-execution benchmarks — run their reductions through this
//! network: every communication process and daemon position in the topology is
//! materialised, every filter invocation really happens on real serialised payloads,
//! and nodes at the same tree level run concurrently on a thread pool, mirroring how
//! the real MRNet processes run concurrently on different hosts.
//!
//! The paper's front end does not run its reductions one at a time: the 2D tree, the
//! 3D tree and the rank map all flow up the same physical tree in the same session.
//! [`InProcessTbon::reduce_channels`] models that directly — one bottom-up level walk
//! carries any number of tagged channels, each with its own filter, so a session pays
//! for exactly one traversal of the overlay however many data streams it merges.
//! [`InProcessTbon::reduce`] is the single-channel special case.
//!
//! The output includes the byte-flow accounting (bytes into the front end, the
//! heaviest node, total bytes crossing links) because those quantities, not wall-clock
//! time on a single workstation, are what distinguish the original global-bit-vector
//! representation from the hierarchical one at scale.

use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::filter::Filter;
use crate::packet::{EndpointId, Packet};
use crate::topology::{Topology, TreeNodeRole};

/// Errors the in-process network reports instead of panicking.
///
/// A mismatch between the caller's view of the job and the topology used to be an
/// `assert_eq!`; at 208K cores "the tool crashed" and "one daemon dropped out" are
/// very different diagnoses, so the network now returns the context instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TbonError {
    /// A channel supplied a different number of leaf packets than the topology has
    /// back-end daemons.
    LeafCountMismatch {
        /// Label of the offending channel.
        channel: &'static str,
        /// Back-end daemons the topology expects one packet from.
        expected: usize,
        /// Leaf packets the channel actually supplied.
        actual: usize,
    },
    /// `reduce_channels` was called with no channels at all.
    NoChannels,
    /// The number of filters does not match the number of channels.
    FilterCountMismatch {
        /// Channels supplied.
        channels: usize,
        /// Filters supplied.
        filters: usize,
    },
    /// The reduction pool's queue lock or results channel was poisoned by a
    /// worker failure.  The walk aborts with this instead of unwrapping the
    /// poison and taking the whole session down.
    PoolPoisoned {
        /// What the pool was doing when the poisoning surfaced.
        context: &'static str,
    },
    /// A user filter panicked during the walk.  The panic is caught at the
    /// invocation site and surfaced as this error so a bad filter can neither
    /// strand the level barrier nor abort the front end.
    FilterPanicked {
        /// The tree node whose invocation panicked.
        node: u32,
        /// Index of the channel whose filter panicked.
        channel: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An internal invariant of the level walk failed (a packet slot that must
    /// be full was empty, or a result arrived for an unknown channel).
    WalkInvariant {
        /// The violated invariant.
        context: &'static str,
    },
    /// A node's resident state rejected a delta during an incremental fold
    /// (see [`crate::delta::IncrementalTbon`]) — e.g. the delta failed to
    /// decode or described a different task domain than the state holds.
    DeltaFold {
        /// The tree node whose fold failed.
        node: u32,
        /// What the resident state objected to.
        message: String,
    },
}

impl fmt::Display for TbonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbonError::LeafCountMismatch {
                channel,
                expected,
                actual,
            } => write!(
                f,
                "channel `{channel}` supplied {actual} leaf packets but the topology \
                 has {expected} back-end daemons"
            ),
            TbonError::NoChannels => write!(f, "reduce_channels requires at least one channel"),
            TbonError::FilterCountMismatch { channels, filters } => write!(
                f,
                "{channels} channels were given {filters} filters; each channel needs \
                 exactly one"
            ),
            TbonError::PoolPoisoned { context } => {
                write!(f, "reduction pool poisoned while {context}")
            }
            TbonError::FilterPanicked {
                node,
                channel,
                message,
            } => write!(
                f,
                "filter for channel {channel} panicked at node {node}: {message}"
            ),
            TbonError::WalkInvariant { context } => {
                write!(f, "reduction walk invariant violated: {context}")
            }
            TbonError::DeltaFold { node, message } => {
                write!(f, "incremental fold failed at node {node}: {message}")
            }
        }
    }
}

impl std::error::Error for TbonError {}

/// One tagged data stream entering the overlay at the leaves.
///
/// A channel owns its leaf packets — the network consumes them rather than cloning
/// them, so handing three channels to [`InProcessTbon::reduce_channels`] moves the
/// daemons' serialised trees into the reduction instead of copying them per pass.
#[derive(Clone, Debug)]
pub struct ChannelInput {
    /// Human-readable channel label, carried into error context.
    pub label: &'static str,
    /// One packet per back-end daemon, in [`Topology::backends`] order.
    pub leaves: Vec<Packet>,
}

impl ChannelInput {
    /// A channel from owned leaf packets.
    pub fn new(label: &'static str, leaves: Vec<Packet>) -> Self {
        ChannelInput { label, leaves }
    }
}

/// The result of one upward reduction (of one channel).
#[derive(Clone, Debug)]
pub struct ReductionOutcome {
    /// The channel this outcome belongs to.
    pub channel: &'static str,
    /// The packet that arrived at the front end.
    pub result: Packet,
    /// Cumulative time spent inside this channel's filter invocations, summed
    /// across tree nodes.  Under [`ExecutionMode::LevelParallel`] invocations run
    /// concurrently, so this is CPU-style accounting and can exceed the elapsed
    /// wall time of the walk — time the walk itself for wall-clock numbers.
    pub filter_time: Duration,
    /// Number of filter invocations performed (one per internal node, including the
    /// front end).
    pub filter_invocations: usize,
    /// Bytes received by the front end from its children.
    pub frontend_bytes_in: u64,
    /// The largest number of bytes received by any single node — the hot spot the
    /// paper's Section V is concerned with.
    pub max_node_bytes_in: u64,
    /// Total bytes that crossed tree links (every packet counted once per hop).
    pub total_link_bytes: u64,
}

/// Execution strategy for the in-process network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Run every filter invocation on the calling thread (deterministic ordering,
    /// easiest to debug).
    Sequential,
    /// Run the nodes of each tree level concurrently on **one** worker pool that is
    /// reused for every level of the walk, pulling batches of node×channel waves
    /// from a shared queue (no per-level thread spawning).
    LevelParallel,
}

/// Per-channel running totals while a level walk is in flight.
#[derive(Clone, Default)]
struct ChannelAccounting {
    filter_invocations: usize,
    max_node_bytes_in: u64,
    total_link_bytes: u64,
    frontend_bytes_in: u64,
    filter_wall: Duration,
}

/// What one node produced for one channel: the output packet, the bytes it received
/// from its children on that channel, and the time its filter invocation took.
type NodeChannelResult = (Packet, u64, Duration);

/// One unit of level work: a node, a channel, and the owned child packets to reduce.
type InputWave = (EndpointId, usize, Vec<Packet>);

/// An in-process TBON bound to a concrete topology.
#[derive(Clone, Debug)]
pub struct InProcessTbon {
    topology: Topology,
    mode: ExecutionMode,
    workers: Option<usize>,
}

impl InProcessTbon {
    /// Create a network over a topology using level-parallel execution.
    pub fn new(topology: Topology) -> Self {
        InProcessTbon {
            topology,
            mode: ExecutionMode::LevelParallel,
            workers: None,
        }
    }

    /// Select the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Override the worker-pool size for [`ExecutionMode::LevelParallel`] (default:
    /// the machine's available parallelism).  The pool is still capped at the widest
    /// level's wave count — more workers than waves can never help.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The topology the network is bound to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Link bytes a store-and-forward broadcast of `payload_bytes` from the
    /// front end to every other endpoint costs: one copy per tree edge.  Used
    /// to account for the one-time frame-dictionary broadcast at session setup.
    pub fn broadcast_link_bytes(&self, payload_bytes: u64) -> u64 {
        payload_bytes.saturating_mul(self.topology.len().saturating_sub(1) as u64)
    }

    /// Perform one upward reduction of a single channel.
    ///
    /// `leaf_payloads` supplies one packet per back-end daemon, in the same order as
    /// [`Topology::backends`].  A count mismatch returns
    /// [`TbonError::LeafCountMismatch`] — the caller's view of the job does not match
    /// the topology, which at scale is a diagnosis, not a programming error to die on.
    pub fn reduce(
        &self,
        leaf_payloads: Vec<Packet>,
        filter: &dyn Filter,
    ) -> Result<ReductionOutcome, TbonError> {
        let mut outcomes =
            self.reduce_channels(vec![ChannelInput::new("default", leaf_payloads)], &[filter])?;
        outcomes.pop().ok_or(TbonError::WalkInvariant {
            context: "one channel in, one outcome out",
        })
    }

    /// Carry several tagged channels up the tree in **one** bottom-up level walk.
    ///
    /// Every internal node is visited exactly once; at each visit it runs each
    /// channel's filter over that channel's child packets.  This is how the session
    /// front end merges the 2D tree, the 3D tree and the rank map without paying for
    /// three traversals of the overlay, and the per-channel accounting in the returned
    /// [`ReductionOutcome`]s is what the byte-flow figures are built from.
    ///
    /// The channels are consumed: leaf packets move into the reduction, they are not
    /// cloned per channel or per pass.
    pub fn reduce_channels(
        &self,
        channels: Vec<ChannelInput>,
        filters: &[&dyn Filter],
    ) -> Result<Vec<ReductionOutcome>, TbonError> {
        if channels.is_empty() {
            return Err(TbonError::NoChannels);
        }
        if channels.len() != filters.len() {
            return Err(TbonError::FilterCountMismatch {
                channels: channels.len(),
                filters: filters.len(),
            });
        }
        let backends = self.topology.backends();
        for channel in &channels {
            if channel.leaves.len() != backends.len() {
                return Err(TbonError::LeafCountMismatch {
                    channel: channel.label,
                    expected: backends.len(),
                    actual: channel.leaves.len(),
                });
            }
        }

        let labels: Vec<&'static str> = channels.iter().map(|c| c.label).collect();
        // Current packet produced by each endpoint, per channel, indexed by
        // endpoint id.
        let mut produced: Vec<Vec<Option<Packet>>> = channels
            .into_iter()
            .map(|channel| {
                let mut slots: Vec<Option<Packet>> = vec![None; self.topology.len()];
                for (&backend, packet) in backends.iter().zip(channel.leaves) {
                    // Backend ids index the topology that minted them; if that
                    // ever breaks, the walk reports the empty slot as a typed
                    // WalkInvariant instead of panicking here.
                    if let Some(slot) = slots.get_mut(backend.0 as usize) {
                        *slot = Some(packet);
                    }
                }
                slots
            })
            .collect();

        let mut accounting = vec![ChannelAccounting::default(); filters.len()];

        // The single bottom-up level walk, skipping the leaf level.  Work items are
        // (node, channel) waves so that, at narrow levels — ultimately the single
        // front-end node — the channels themselves still run concurrently.  Each
        // wave *moves* its child packets out of the slot table (every child has
        // exactly one parent), so no packet is ever cloned on its way up the tree
        // and peak memory stays proportional to one level.
        //
        // Under `LevelParallel` one worker pool serves the entire walk: workers are
        // spawned once, each level's waves are queued as batches, and the per-level
        // barrier is the arrival of that level's results — no threads are spawned
        // (or joined) per level.
        // There is never a point in more workers than the widest level has waves
        // (the old per-level spawn capped the same way); a 1-worker pool degrades
        // to the sequential walk without the pool machinery.
        let levels = self.topology.levels();
        let widest_wave = levels
            .split_last()
            .map(|(_, above_leaves)| above_leaves)
            .unwrap_or(&[])
            .iter()
            .map(|ids| {
                ids.iter()
                    .filter(|&&id| self.topology.node(id).role != TreeNodeRole::BackEnd)
                    .count()
            })
            .max()
            .unwrap_or(0)
            * filters.len();
        let workers = self
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .min(widest_wave);
        match self.mode {
            ExecutionMode::LevelParallel if workers > 1 => {
                let queue = (Mutex::new(PoolQueue::default()), Condvar::new());
                std::thread::scope(|scope| {
                    let pool = WorkerPool::spawn(scope, workers, filters, &queue);
                    self.walk_levels(
                        &mut produced,
                        &mut accounting,
                        filters.len(),
                        &mut |items| pool.run_level(items),
                    )
                })?;
            }
            ExecutionMode::Sequential | ExecutionMode::LevelParallel => {
                self.walk_levels(
                    &mut produced,
                    &mut accounting,
                    filters.len(),
                    &mut |items| {
                        items
                            .into_iter()
                            .map(|(id, channel, inputs)| {
                                let filter =
                                    *filters.get(channel).ok_or(TbonError::WalkInvariant {
                                        context: "wave queued for a channel with no filter",
                                    })?;
                                let r = Self::reduce_one_caught(id, channel, inputs, filter)?;
                                Ok((id, channel, r))
                            })
                            .collect()
                    },
                )?;
            }
        }

        let frontend = self.topology.frontend().0 as usize;
        let mut outcomes = Vec::with_capacity(accounting.len());
        for (channel, (acc, label)) in accounting.into_iter().zip(labels).enumerate() {
            let result = produced
                .get_mut(channel)
                .and_then(|slots| slots.get_mut(frontend))
                .and_then(|slot| slot.take())
                .ok_or(TbonError::WalkInvariant {
                    context: "front end must have produced a result for every channel",
                })?;
            outcomes.push(ReductionOutcome {
                channel: label,
                result,
                filter_time: acc.filter_wall,
                filter_invocations: acc.filter_invocations,
                frontend_bytes_in: acc.frontend_bytes_in,
                max_node_bytes_in: acc.max_node_bytes_in,
                total_link_bytes: acc.total_link_bytes,
            });
        }
        Ok(outcomes)
    }

    /// The bottom-up level walk shared by both execution modes: build each level's
    /// owned input waves, hand them to `dispatch`, and absorb the results into the
    /// slot table and the per-channel accounting before moving up a level.
    ///
    /// Any failure — a poisoned pool, a panicking filter, an empty slot that must
    /// be full — aborts the walk with a typed error instead of panicking.
    fn walk_levels(
        &self,
        produced: &mut [Vec<Option<Packet>>],
        accounting: &mut [ChannelAccounting],
        channels: usize,
        dispatch: &mut dyn FnMut(Vec<InputWave>) -> Result<BatchResults, TbonError>,
    ) -> Result<(), TbonError> {
        let levels = self.topology.levels();
        for level in (0..levels.len().saturating_sub(1)).rev() {
            let node_ids: Vec<EndpointId> = levels
                .get(level)
                .map(|ids| ids.as_slice())
                .unwrap_or(&[])
                .iter()
                .copied()
                .filter(|&id| self.topology.node(id).role != TreeNodeRole::BackEnd)
                .collect();
            // Node-major order: every channel fires at a node before the next node.
            let mut items: Vec<InputWave> = Vec::with_capacity(node_ids.len() * channels);
            for &id in &node_ids {
                for channel in 0..channels {
                    let kids = &self.topology.node(id).children;
                    let mut inputs: Vec<Packet> = Vec::with_capacity(kids.len());
                    for &c in kids {
                        let packet = produced
                            .get_mut(channel)
                            .and_then(|slots| slots.get_mut(c.0 as usize))
                            .and_then(|slot| slot.take())
                            .ok_or(TbonError::WalkInvariant {
                                context: "child must have produced a packet before its parent runs",
                            })?;
                        inputs.push(packet);
                    }
                    items.push((id, channel, inputs));
                }
            }

            for (id, channel, (packet, bytes_in, wall)) in dispatch(items)? {
                let acc = accounting
                    .get_mut(channel)
                    .ok_or(TbonError::WalkInvariant {
                        context: "result arrived for a channel with no accounting",
                    })?;
                acc.filter_invocations += 1;
                acc.max_node_bytes_in = acc.max_node_bytes_in.max(bytes_in);
                acc.total_link_bytes += bytes_in;
                acc.filter_wall += wall;
                if id == self.topology.frontend() {
                    acc.frontend_bytes_in = bytes_in;
                }
                let slot = produced
                    .get_mut(channel)
                    .and_then(|slots| slots.get_mut(id.0 as usize))
                    .ok_or(TbonError::WalkInvariant {
                        context: "result arrived for a node outside the topology",
                    })?;
                *slot = Some(packet);
            }
        }
        Ok(())
    }

    /// Run one channel's filter at one node over its owned input wave.
    fn reduce_one(id: EndpointId, inputs: Vec<Packet>, filter: &dyn Filter) -> NodeChannelResult {
        let bytes_in: u64 = inputs.iter().map(|p| p.size_bytes() as u64).sum();
        let start = Instant::now();
        let packet = filter.reduce(id, &inputs);
        (packet, bytes_in, start.elapsed())
    }

    /// [`Self::reduce_one`] with the filter invocation fenced by `catch_unwind`:
    /// a panicking user filter becomes [`TbonError::FilterPanicked`] instead of
    /// unwinding through the walk (or a pooled worker).
    fn reduce_one_caught(
        id: EndpointId,
        channel: usize,
        inputs: Vec<Packet>,
        filter: &dyn Filter,
    ) -> Result<NodeChannelResult, TbonError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Self::reduce_one(id, inputs, filter)
        }))
        .map_err(|payload| TbonError::FilterPanicked {
            node: id.0,
            channel,
            message: panic_message(payload.as_ref()),
        })
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A batch of node×channel waves queued for the pool, and what comes back.
type WaveBatch = Vec<InputWave>;
type BatchResults = Vec<(EndpointId, usize, NodeChannelResult)>;
/// A batch outcome: the results, or the typed error of the first wave that failed
/// (a panicking filter is caught in the worker and converted, so a bad filter can
/// neither strand the level barrier nor abort the process).
type BatchOutcome = Result<BatchResults, TbonError>;

/// The queue the pool's workers pull from.
#[derive(Default)]
struct PoolQueue {
    batches: VecDeque<WaveBatch>,
    shutdown: bool,
}

/// A pool of reduction workers serving every level of one reduction walk.
///
/// Workers are spawned once (scoped, so they may borrow the filters) and block on a
/// shared queue; [`WorkerPool::run_level`] enqueues one level's waves in batches and
/// waits for exactly that many result batches — the level barrier — leaving the
/// workers parked, not joined, for the next level.  Batching several node×channel
/// invocations per queue item keeps queue traffic low on wide levels.
struct WorkerPool<'scope> {
    queue: &'scope (Mutex<PoolQueue>, Condvar),
    results: mpsc::Receiver<BatchOutcome>,
    workers: usize,
}

impl<'scope> WorkerPool<'scope> {
    /// Spawn `workers` scoped workers that serve `filters` until the pool is
    /// dropped.  `queue` must be allocated outside the scope (it outlives the
    /// workers).
    fn spawn<'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        workers: usize,
        filters: &'env [&'env dyn Filter],
        queue: &'env (Mutex<PoolQueue>, Condvar),
    ) -> WorkerPool<'scope>
    where
        'env: 'scope,
    {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<BatchOutcome>();
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                let (lock, available) = queue;
                loop {
                    let batch = {
                        // A poisoned queue means another thread already failed;
                        // this worker just leaves — the caller observes the
                        // failure as PoolPoisoned when the level's results stop
                        // arriving, instead of a second panic here.
                        let Ok(mut q) = lock.lock() else { return };
                        loop {
                            if let Some(batch) = q.batches.pop_front() {
                                break batch;
                            }
                            if q.shutdown {
                                return;
                            }
                            let Ok(woken) = available.wait(q) else { return };
                            q = woken;
                        }
                    };
                    // Each wave's filter invocation is fenced by catch_unwind in
                    // reduce_one_caught: a panicking filter becomes a typed
                    // FilterPanicked error shipped back through the results
                    // channel, so the caller at the level barrier always hears
                    // the outcome.
                    let results: BatchOutcome = batch
                        .into_iter()
                        .map(|(id, channel, inputs)| {
                            let filter = *filters.get(channel).ok_or(TbonError::WalkInvariant {
                                context: "wave queued for a channel with no filter",
                            })?;
                            let r = InProcessTbon::reduce_one_caught(id, channel, inputs, filter)?;
                            Ok((id, channel, r))
                        })
                        .collect();
                    if tx.send(results).is_err() {
                        return;
                    }
                }
            });
        }
        WorkerPool {
            queue,
            results: rx,
            workers,
        }
    }

    /// Reduce one level's waves on the pool and wait for all of them — the
    /// per-level barrier of the bottom-up walk.
    ///
    /// A failed wave (panicking filter, poisoned queue) surfaces as the typed
    /// error of the first failure; the remaining batches are still drained so no
    /// worker is left blocked on a channel nobody reads.
    fn run_level(&self, items: Vec<InputWave>) -> Result<BatchResults, TbonError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        // A few batches per worker balances load without flooding the queue.
        let batch_size = items.len().div_ceil(self.workers * 4).max(1);
        let mut pending = 0usize;
        {
            let (lock, available) = self.queue;
            let mut q = lock.lock().map_err(|_| TbonError::PoolPoisoned {
                context: "enqueueing a level's waves",
            })?;
            let mut items = items.into_iter();
            loop {
                let batch: WaveBatch = items.by_ref().take(batch_size).collect();
                if batch.is_empty() {
                    break;
                }
                q.batches.push_back(batch);
                pending += 1;
            }
            drop(q);
            available.notify_all();
        }
        let mut out: BatchResults = Vec::new();
        let mut first_err: Option<TbonError> = None;
        for _ in 0..pending {
            match self.results.recv() {
                Ok(Ok(results)) => out.extend(results),
                Ok(Err(err)) => {
                    // Keep draining: the other batches are still in flight and
                    // their workers must not block on an abandoned channel.
                    first_err.get_or_insert(err);
                }
                Err(_) => {
                    // Every worker hung up mid-level: a thread died outside the
                    // catch_unwind fence (or the queue poisoned under it).
                    first_err.get_or_insert(TbonError::PoolPoisoned {
                        context: "waiting for a level's results",
                    });
                    break;
                }
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(out),
        }
    }
}

impl Drop for WorkerPool<'_> {
    fn drop(&mut self) {
        let (lock, available) = self.queue;
        // Never panic in Drop: a poisoned queue still carries a usable shutdown
        // flag, so strip the poison and set it — the workers must be released
        // for the enclosing thread::scope to join them.
        let mut q = match lock.lock() {
            Ok(q) => q,
            Err(poisoned) => poisoned.into_inner(),
        };
        q.shutdown = true;
        drop(q);
        available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{IdentityFilter, SumFilter};
    use crate::packet::PacketTag;
    use crate::topology::TreeShape;
    use std::sync::Mutex;

    fn leaf_packets(topology: &Topology, value_of: impl Fn(usize) -> u64) -> Vec<Packet> {
        topology
            .backends()
            .iter()
            .enumerate()
            .map(|(i, &id)| Packet::new(PacketTag::Custom(9), id, SumFilter::encode(value_of(i))))
            .collect()
    }

    #[test]
    fn sum_reduction_over_flat_tree() {
        let topo = Topology::build(TreeShape::flat(32));
        let net = InProcessTbon::new(topo);
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let out = net.reduce(leaves, &SumFilter).unwrap();
        assert_eq!(SumFilter::decode(&out.result), (0..32).sum::<u64>());
        assert_eq!(out.filter_invocations, 1);
        assert_eq!(out.frontend_bytes_in, 32 * 8);
    }

    #[test]
    fn sum_reduction_is_topology_invariant() {
        let expected: u64 = (0..100u64).map(|i| i * 3 + 1).sum();
        for spec in [
            TreeShape::flat(100),
            TreeShape::two_deep(100, 10),
            TreeShape::three_deep(100, 4, 16),
        ] {
            let net = InProcessTbon::new(Topology::build(spec));
            let leaves = leaf_packets(net.topology(), |i| i as u64 * 3 + 1);
            let out = net.reduce(leaves, &SumFilter).unwrap();
            assert_eq!(SumFilter::decode(&out.result), expected);
        }
    }

    #[test]
    fn sequential_and_parallel_modes_agree() {
        let topo = Topology::build(TreeShape::two_deep(64, 8));
        let seq = InProcessTbon::new(topo.clone()).with_mode(ExecutionMode::Sequential);
        let par = InProcessTbon::new(topo).with_mode(ExecutionMode::LevelParallel);
        let leaves_a = leaf_packets(seq.topology(), |i| (i * i) as u64);
        let leaves_b = leaf_packets(par.topology(), |i| (i * i) as u64);
        let a = seq.reduce(leaves_a, &SumFilter).unwrap();
        let b = par.reduce(leaves_b, &SumFilter).unwrap();
        assert_eq!(SumFilter::decode(&a.result), SumFilter::decode(&b.result));
        assert_eq!(a.filter_invocations, b.filter_invocations);
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
    }

    #[test]
    fn identity_filter_exposes_the_flat_tree_hotspot() {
        // With no aggregation, a deeper tree does not reduce what the front end sees,
        // but it does reduce what any single *intermediate* node must absorb relative
        // to the flat tree's front end when payloads are large.
        let payload = vec![7u8; 1024];
        let flat = InProcessTbon::new(Topology::build(TreeShape::flat(64)));
        let deep = InProcessTbon::new(Topology::build(TreeShape::two_deep(64, 8)));
        let flat_out = flat
            .reduce(
                flat.topology()
                    .backends()
                    .iter()
                    .map(|&id| Packet::new(PacketTag::Custom(0), id, payload.clone()))
                    .collect(),
                &IdentityFilter,
            )
            .unwrap();
        let deep_out = deep
            .reduce(
                deep.topology()
                    .backends()
                    .iter()
                    .map(|&id| Packet::new(PacketTag::Custom(0), id, payload.clone()))
                    .collect(),
                &IdentityFilter,
            )
            .unwrap();
        assert_eq!(flat_out.result.size_bytes(), 64 * 1024);
        assert_eq!(deep_out.result.size_bytes(), 64 * 1024);
        assert_eq!(flat_out.max_node_bytes_in, 64 * 1024);
        // In the 2-deep tree each comm process absorbs 8 KiB and the front end 64 KiB,
        // so the max is still the front end — but total link bytes doubled because the
        // data crossed two hops.  Both facts matter for the Section V argument.
        assert_eq!(deep_out.total_link_bytes, 2 * 64 * 1024);
        assert!(deep_out.filter_invocations > flat_out.filter_invocations);
    }

    #[test]
    fn mismatched_leaf_count_is_an_error_with_context() {
        let net = InProcessTbon::new(Topology::build(TreeShape::flat(4)));
        let err = net.reduce(vec![], &SumFilter).unwrap_err();
        assert_eq!(
            err,
            TbonError::LeafCountMismatch {
                channel: "default",
                expected: 4,
                actual: 0,
            }
        );
        assert!(err.to_string().contains("4 back-end daemons"));
    }

    #[test]
    fn channel_and_filter_counts_must_agree() {
        let net = InProcessTbon::new(Topology::build(TreeShape::flat(2)));
        assert_eq!(
            net.reduce_channels(vec![], &[]).unwrap_err(),
            TbonError::NoChannels
        );
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let err = net
            .reduce_channels(vec![ChannelInput::new("only", leaves)], &[])
            .unwrap_err();
        assert_eq!(
            err,
            TbonError::FilterCountMismatch {
                channels: 1,
                filters: 0,
            }
        );
    }

    #[test]
    fn single_backend_tree_works() {
        let net = InProcessTbon::new(Topology::build(TreeShape::flat(1)));
        let leaves = leaf_packets(net.topology(), |_| 41);
        let out = net.reduce(leaves, &SumFilter).unwrap();
        assert_eq!(SumFilter::decode(&out.result), 41);
    }

    #[test]
    fn multi_channel_reduction_matches_independent_reductions() {
        let topo = Topology::build(TreeShape::two_deep(48, 6));
        let net = InProcessTbon::new(topo);
        let a = leaf_packets(net.topology(), |i| i as u64);
        let b = leaf_packets(net.topology(), |i| i as u64 * 10);
        let c = leaf_packets(net.topology(), |i| 1 + (i as u64 % 3));

        let separate: Vec<u64> = [a.clone(), b.clone(), c.clone()]
            .into_iter()
            .map(|leaves| SumFilter::decode(&net.reduce(leaves, &SumFilter).unwrap().result))
            .collect();

        let outcomes = net
            .reduce_channels(
                vec![
                    ChannelInput::new("a", a),
                    ChannelInput::new("b", b),
                    ChannelInput::new("c", c),
                ],
                &[&SumFilter, &SumFilter, &SumFilter],
            )
            .unwrap();
        let combined: Vec<u64> = outcomes
            .iter()
            .map(|o| SumFilter::decode(&o.result))
            .collect();
        assert_eq!(separate, combined);
        assert_eq!(outcomes[0].channel, "a");
        assert_eq!(outcomes[2].channel, "c");
        // Per-channel accounting matches a standalone reduction: 6 comm processes
        // plus the front end.
        for outcome in &outcomes {
            assert_eq!(outcome.filter_invocations, 7);
            assert!(outcome.total_link_bytes > 0);
        }
    }

    /// A filter that records the (node, channel) order of its invocations.
    struct TracingFilter {
        channel: &'static str,
        log: &'static Mutex<Vec<(&'static str, u32)>>,
    }

    impl Filter for TracingFilter {
        fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet {
            self.log.lock().unwrap().push((self.channel, node.0));
            IdentityFilter.reduce(node, inputs)
        }
    }

    #[test]
    fn level_parallel_reuses_one_worker_pool_across_levels() {
        // A filter that records the thread of every invocation.  With one pool
        // reused for the whole walk, the set of distinct worker threads is bounded
        // by the machine's parallelism however many levels the tree has (and never
        // includes the caller); per-level spawning would parade fresh threads past
        // every level.
        struct ThreadRecorder {
            threads: &'static Mutex<Vec<std::thread::ThreadId>>,
        }
        impl Filter for ThreadRecorder {
            fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet {
                self.threads
                    .lock()
                    .unwrap()
                    .push(std::thread::current().id());
                SumFilter.reduce(node, inputs)
            }
        }
        static THREADS: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        THREADS.lock().unwrap().clear();

        let topo = Topology::build(TreeShape::uniform_with_depth(64, 2, 5));
        let net = InProcessTbon::new(topo)
            .with_mode(ExecutionMode::LevelParallel)
            .with_workers(4);
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let recorder = ThreadRecorder { threads: &THREADS };
        let out = net.reduce(leaves, &recorder).unwrap();
        assert_eq!(SumFilter::decode(&out.result), (0..64).sum::<u64>());

        let threads: std::collections::HashSet<std::thread::ThreadId> =
            THREADS.lock().unwrap().iter().copied().collect();
        assert!(
            threads.len() <= 4,
            "expected at most 4 pooled workers, saw {} distinct threads",
            threads.len()
        );
        assert!(!threads.contains(&std::thread::current().id()));
    }

    /// A filter that panics at every invocation.
    struct PanickingFilter;
    impl Filter for PanickingFilter {
        fn reduce(&self, _node: EndpointId, _inputs: &[Packet]) -> Packet {
            panic!("malformed wave");
        }
    }

    #[test]
    fn a_panicking_filter_surfaces_as_a_typed_error_from_the_pool() {
        // A filter that dies on a malformed wave must surface as Err from
        // reduce_channels — not strand the level barrier in a deadlock, and not
        // abort the front end by unwinding through it.  Forcing 4 workers
        // exercises the pooled path even on a single-CPU host.
        let net = InProcessTbon::new(Topology::build(TreeShape::two_deep(16, 4))).with_workers(4);
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let err = net
            .reduce(leaves, &PanickingFilter)
            .expect_err("the filter panic must surface as an error");
        match &err {
            TbonError::FilterPanicked {
                channel, message, ..
            } => {
                assert_eq!(*channel, 0);
                assert!(message.contains("malformed wave"), "{message}");
            }
            other => panic!("expected FilterPanicked, got {other:?}"),
        }
        assert!(err.to_string().contains("panicked at node"));
        // The network object is still usable afterwards: the pool shut down
        // cleanly and a fresh walk spawns a fresh pool.
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let out = net.reduce(leaves, &SumFilter).unwrap();
        assert_eq!(SumFilter::decode(&out.result), (0..16).sum::<u64>());
    }

    #[test]
    fn a_panicking_filter_surfaces_as_a_typed_error_sequentially() {
        // Sequential mode takes the non-pooled dispatch path; it must report the
        // same typed error, keeping the two modes behaviourally identical.
        let net = InProcessTbon::new(Topology::build(TreeShape::flat(4)))
            .with_mode(ExecutionMode::Sequential);
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let err = net.reduce(leaves, &PanickingFilter).unwrap_err();
        assert!(matches!(err, TbonError::FilterPanicked { .. }), "{err:?}");
    }

    #[test]
    fn one_bad_channel_does_not_take_down_its_siblings_diagnosis() {
        // Multi-channel walk where one channel's filter panics: the error names
        // the offending channel index, which at 208K cores is the difference
        // between "the tool crashed" and "channel 1's filter is broken".
        let net = InProcessTbon::new(Topology::build(TreeShape::two_deep(16, 4))).with_workers(2);
        let good = leaf_packets(net.topology(), |i| i as u64);
        let bad = leaf_packets(net.topology(), |i| i as u64);
        let err = net
            .reduce_channels(
                vec![
                    ChannelInput::new("good", good),
                    ChannelInput::new("bad", bad),
                ],
                &[&SumFilter, &PanickingFilter],
            )
            .unwrap_err();
        match err {
            TbonError::FilterPanicked { channel, .. } => assert_eq!(channel, 1),
            other => panic!("expected FilterPanicked, got {other:?}"),
        }
    }

    #[test]
    fn forced_worker_counts_agree_with_sequential_execution() {
        let topo = Topology::build(TreeShape::two_deep(64, 8));
        let seq = InProcessTbon::new(topo.clone()).with_mode(ExecutionMode::Sequential);
        let expected = {
            let leaves = leaf_packets(seq.topology(), |i| (i * 7) as u64);
            SumFilter::decode(&seq.reduce(leaves, &SumFilter).unwrap().result)
        };
        for workers in [1usize, 2, 3, 8, 64] {
            let net = InProcessTbon::new(topo.clone()).with_workers(workers);
            let leaves = leaf_packets(net.topology(), |i| (i * 7) as u64);
            let out = net.reduce(leaves, &SumFilter).unwrap();
            assert_eq!(
                SumFilter::decode(&out.result),
                expected,
                "{workers} workers"
            );
            assert_eq!(out.filter_invocations, 9);
        }
    }

    #[test]
    fn reduce_channels_performs_one_level_walk_for_all_channels() {
        // Sequential mode gives a deterministic invocation order.  A single-pass walk
        // is node-major: every channel fires at a node before the walk moves to the
        // next node.  Three sequential `reduce` calls would instead be channel-major
        // (all of channel 0's nodes, then all of channel 1's...).
        static LOG: Mutex<Vec<(&'static str, u32)>> = Mutex::new(Vec::new());
        LOG.lock().unwrap().clear();

        let topo = Topology::build(TreeShape::two_deep(8, 2));
        let net = InProcessTbon::new(topo).with_mode(ExecutionMode::Sequential);
        let make = || {
            net.topology()
                .backends()
                .iter()
                .map(|&id| Packet::new(PacketTag::Custom(0), id, vec![1u8]))
                .collect::<Vec<_>>()
        };
        let first = TracingFilter {
            channel: "first",
            log: &LOG,
        };
        let second = TracingFilter {
            channel: "second",
            log: &LOG,
        };
        net.reduce_channels(
            vec![
                ChannelInput::new("first", make()),
                ChannelInput::new("second", make()),
            ],
            &[&first, &second],
        )
        .unwrap();

        let log = LOG.lock().unwrap();
        // 3 internal nodes (2 comm processes + front end) × 2 channels.
        assert_eq!(log.len(), 6);
        for pair in log.chunks(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "both channels must fire at a node before the walk moves on: {log:?}"
            );
            assert_eq!(pair[0].0, "first");
            assert_eq!(pair[1].0, "second");
        }
    }
}
