//! An in-process, thread-parallel TBON that really executes reductions.
//!
//! The figure generators use the analytic [`crate::cost`] model to reason about
//! 212,992-task configurations, but the tool itself — and the integration tests, the
//! examples and the real-execution benchmarks — run their reductions through this
//! network: every communication process and daemon position in the topology is
//! materialised, every filter invocation really happens on real serialised payloads,
//! and nodes at the same tree level run concurrently on a thread pool, mirroring how
//! the real MRNet processes run concurrently on different hosts.
//!
//! The output includes the byte-flow accounting (bytes into the front end, the
//! heaviest node, total bytes crossing links) because those quantities, not wall-clock
//! time on a single workstation, are what distinguish the original global-bit-vector
//! representation from the hierarchical one at scale.

use std::time::{Duration, Instant};

use crate::filter::Filter;
use crate::packet::{EndpointId, Packet};
use crate::topology::{Topology, TreeNodeRole};

/// The result of one upward reduction.
#[derive(Clone, Debug)]
pub struct ReductionOutcome {
    /// The packet that arrived at the front end.
    pub result: Packet,
    /// Real wall-clock time spent executing the reduction in this process.
    pub wall_time: Duration,
    /// Number of filter invocations performed (one per internal node, including the
    /// front end).
    pub filter_invocations: usize,
    /// Bytes received by the front end from its children.
    pub frontend_bytes_in: u64,
    /// The largest number of bytes received by any single node — the hot spot the
    /// paper's Section V is concerned with.
    pub max_node_bytes_in: u64,
    /// Total bytes that crossed tree links (every packet counted once per hop).
    pub total_link_bytes: u64,
}

/// Execution strategy for the in-process network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Run every filter invocation on the calling thread (deterministic ordering,
    /// easiest to debug).
    Sequential,
    /// Run the nodes of each tree level concurrently with scoped threads, limited to
    /// the machine's available parallelism.
    LevelParallel,
}

/// An in-process TBON bound to a concrete topology.
#[derive(Clone, Debug)]
pub struct InProcessTbon {
    topology: Topology,
    mode: ExecutionMode,
}

impl InProcessTbon {
    /// Create a network over a topology using level-parallel execution.
    pub fn new(topology: Topology) -> Self {
        InProcessTbon {
            topology,
            mode: ExecutionMode::LevelParallel,
        }
    }

    /// Select the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The topology the network is bound to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Perform one upward reduction.
    ///
    /// `leaf_payloads` supplies one packet per back-end daemon, in the same order as
    /// [`Topology::backends`].  Panics if the count does not match — a mismatch means
    /// the caller's view of the job does not match the topology, which is a
    /// programming error rather than a runtime condition.
    pub fn reduce(&self, leaf_payloads: Vec<Packet>, filter: &dyn Filter) -> ReductionOutcome {
        let backends = self.topology.backends();
        assert_eq!(
            leaf_payloads.len(),
            backends.len(),
            "one leaf payload per backend daemon is required"
        );

        let start = Instant::now();
        // Current packet produced by each endpoint, indexed by endpoint id.
        let mut produced: Vec<Option<Packet>> = vec![None; self.topology.len()];
        for (&backend, packet) in backends.iter().zip(leaf_payloads) {
            produced[backend.0 as usize] = Some(packet);
        }

        let mut filter_invocations = 0usize;
        let mut max_node_bytes_in = 0u64;
        let mut total_link_bytes = 0u64;
        let mut frontend_bytes_in = 0u64;

        // Walk levels bottom-up, skipping the leaf level.
        let levels = self.topology.levels();
        for level in (0..levels.len().saturating_sub(1)).rev() {
            let node_ids: Vec<EndpointId> = levels[level]
                .iter()
                .copied()
                .filter(|&id| self.topology.node(id).role != TreeNodeRole::BackEnd)
                .collect();

            let results: Vec<(EndpointId, Packet, u64)> = match self.mode {
                ExecutionMode::Sequential => node_ids
                    .iter()
                    .map(|&id| self.reduce_node(id, &produced, filter))
                    .collect(),
                ExecutionMode::LevelParallel => {
                    self.reduce_level_parallel(&node_ids, &produced, filter)
                }
            };

            for (id, packet, bytes_in) in results {
                filter_invocations += 1;
                max_node_bytes_in = max_node_bytes_in.max(bytes_in);
                total_link_bytes += bytes_in;
                if id == self.topology.frontend() {
                    frontend_bytes_in = bytes_in;
                }
                produced[id.0 as usize] = Some(packet);
            }
        }

        let result = produced[self.topology.frontend().0 as usize]
            .take()
            .expect("front end must have produced a result");

        ReductionOutcome {
            result,
            wall_time: start.elapsed(),
            filter_invocations,
            frontend_bytes_in,
            max_node_bytes_in,
            total_link_bytes,
        }
    }

    fn reduce_node(
        &self,
        id: EndpointId,
        produced: &[Option<Packet>],
        filter: &dyn Filter,
    ) -> (EndpointId, Packet, u64) {
        let node = self.topology.node(id);
        let inputs: Vec<Packet> = node
            .children
            .iter()
            .map(|&c| {
                produced[c.0 as usize]
                    .clone()
                    .expect("child must have produced a packet before its parent runs")
            })
            .collect();
        let bytes_in: u64 = inputs.iter().map(|p| p.size_bytes() as u64).sum();
        let packet = filter.reduce(id, &inputs);
        (id, packet, bytes_in)
    }

    fn reduce_level_parallel(
        &self,
        node_ids: &[EndpointId],
        produced: &[Option<Packet>],
        filter: &dyn Filter,
    ) -> Vec<(EndpointId, Packet, u64)> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(node_ids.len().max(1));
        if workers <= 1 || node_ids.len() <= 1 {
            return node_ids
                .iter()
                .map(|&id| self.reduce_node(id, produced, filter))
                .collect();
        }
        let chunk = node_ids.len().div_ceil(workers);
        let mut results: Vec<(EndpointId, Packet, u64)> = Vec::with_capacity(node_ids.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for ids in node_ids.chunks(chunk) {
                handles.push(scope.spawn(move || {
                    ids.iter()
                        .map(|&id| self.reduce_node(id, produced, filter))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.extend(h.join().expect("reduction worker panicked"));
            }
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{IdentityFilter, SumFilter};
    use crate::packet::PacketTag;
    use crate::topology::TopologySpec;

    fn leaf_packets(topology: &Topology, value_of: impl Fn(usize) -> u64) -> Vec<Packet> {
        topology
            .backends()
            .iter()
            .enumerate()
            .map(|(i, &id)| Packet::new(PacketTag::Custom(9), id, SumFilter::encode(value_of(i))))
            .collect()
    }

    #[test]
    fn sum_reduction_over_flat_tree() {
        let topo = Topology::build(TopologySpec::flat(32));
        let net = InProcessTbon::new(topo);
        let leaves = leaf_packets(net.topology(), |i| i as u64);
        let out = net.reduce(leaves, &SumFilter);
        assert_eq!(SumFilter::decode(&out.result), (0..32).sum::<u64>());
        assert_eq!(out.filter_invocations, 1);
        assert_eq!(out.frontend_bytes_in, 32 * 8);
    }

    #[test]
    fn sum_reduction_is_topology_invariant() {
        let expected: u64 = (0..100u64).map(|i| i * 3 + 1).sum();
        for spec in [
            TopologySpec::flat(100),
            TopologySpec::two_deep(100, 10),
            TopologySpec::three_deep(100, 4, 16),
        ] {
            let net = InProcessTbon::new(Topology::build(spec));
            let leaves = leaf_packets(net.topology(), |i| i as u64 * 3 + 1);
            let out = net.reduce(leaves, &SumFilter);
            assert_eq!(SumFilter::decode(&out.result), expected);
        }
    }

    #[test]
    fn sequential_and_parallel_modes_agree() {
        let topo = Topology::build(TopologySpec::two_deep(64, 8));
        let seq = InProcessTbon::new(topo.clone()).with_mode(ExecutionMode::Sequential);
        let par = InProcessTbon::new(topo).with_mode(ExecutionMode::LevelParallel);
        let leaves_a = leaf_packets(seq.topology(), |i| (i * i) as u64);
        let leaves_b = leaf_packets(par.topology(), |i| (i * i) as u64);
        let a = seq.reduce(leaves_a, &SumFilter);
        let b = par.reduce(leaves_b, &SumFilter);
        assert_eq!(SumFilter::decode(&a.result), SumFilter::decode(&b.result));
        assert_eq!(a.filter_invocations, b.filter_invocations);
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
    }

    #[test]
    fn identity_filter_exposes_the_flat_tree_hotspot() {
        // With no aggregation, a deeper tree does not reduce what the front end sees,
        // but it does reduce what any single *intermediate* node must absorb relative
        // to the flat tree's front end when payloads are large.
        let payload = vec![7u8; 1024];
        let flat = InProcessTbon::new(Topology::build(TopologySpec::flat(64)));
        let deep = InProcessTbon::new(Topology::build(TopologySpec::two_deep(64, 8)));
        let flat_out = flat.reduce(
            flat.topology()
                .backends()
                .iter()
                .map(|&id| Packet::new(PacketTag::Custom(0), id, payload.clone()))
                .collect(),
            &IdentityFilter,
        );
        let deep_out = deep.reduce(
            deep.topology()
                .backends()
                .iter()
                .map(|&id| Packet::new(PacketTag::Custom(0), id, payload.clone()))
                .collect(),
            &IdentityFilter,
        );
        assert_eq!(flat_out.result.size_bytes(), 64 * 1024);
        assert_eq!(deep_out.result.size_bytes(), 64 * 1024);
        assert_eq!(flat_out.max_node_bytes_in, 64 * 1024);
        // In the 2-deep tree each comm process absorbs 8 KiB and the front end 64 KiB,
        // so the max is still the front end — but total link bytes doubled because the
        // data crossed two hops.  Both facts matter for the Section V argument.
        assert_eq!(deep_out.total_link_bytes, 2 * 64 * 1024);
        assert!(deep_out.filter_invocations > flat_out.filter_invocations);
    }

    #[test]
    #[should_panic(expected = "one leaf payload per backend")]
    fn mismatched_leaf_count_panics() {
        let net = InProcessTbon::new(Topology::build(TopologySpec::flat(4)));
        net.reduce(vec![], &SumFilter);
    }

    #[test]
    fn single_backend_tree_works() {
        let net = InProcessTbon::new(Topology::build(TopologySpec::flat(1)));
        let leaves = leaf_packets(net.topology(), |_| 41);
        let out = net.reduce(leaves, &SumFilter);
        assert_eq!(SumFilter::decode(&out.result), 41);
    }
}
