//! # tbon — a tree-based overlay network (TBON), in the spirit of MRNet
//!
//! STAT's scalability rests on a tree-based overlay network: the front end talks to a
//! layer of communication processes, which talk to further layers, which talk to the
//! back-end daemons.  Data flowing up the tree passes through *filters* that aggregate
//! it, so the front end only ever sees one merged result no matter how many daemons
//! participate.  The original implementation is MRNet (Roth, Arnold & Miller, SC'03);
//! this crate is a from-scratch Rust workalike with the pieces STAT needs:
//!
//! * [`topology`] — arbitrary-depth [`TreeShape`]s (the paper's flat/1-deep,
//!   2-deep and 3-deep trees are constructors, not an enum) and balanced-tree
//!   construction with typed structural validation;
//! * [`planner`] — cost-model-driven topology planning: enumerate candidate shapes
//!   for a cluster and job size, price them, rank them under placement constraints;
//! * [`packet`] — tagged, byte-serialised packets;
//! * [`filter`] — the filter trait plus simple built-in filters; STAT's merge filter
//!   lives in `stat-core` and plugs in through this trait;
//! * [`network`] — a real, threaded, channel-based in-process network that executes
//!   upward reductions through user filters (used by the examples, the integration
//!   tests and the real-execution benchmarks);
//! * [`cost`] — an analytic cost model of an upward reduction over a given topology,
//!   interconnect and per-level payload size, used by the figure generators and the
//!   planner to model configurations with millions of endpoints;
//! * [`delta`] — the incremental path streaming sessions use: per-node resident
//!   state folded from per-wave `TreeDelta` packets instead of re-reducing every
//!   wave from scratch.

#![warn(rust_2018_idioms)]

pub mod cost;
pub mod delta;
pub mod fault;
pub mod filter;
pub mod network;
pub mod packet;
pub mod planner;
pub mod stream;
pub mod topology;

pub use cost::{ReductionCost, ReductionCostModel};
pub use delta::{IncrementalTbon, ResidentState, StateFactory, WaveOutcome};
pub use fault::{CorruptingFilter, FaultTracker, FilterFault, FilterFaultKind, PruneReport};
pub use filter::{Filter, IdentityFilter, SumFilter};
pub use network::{ChannelInput, ExecutionMode, InProcessTbon, ReductionOutcome, TbonError};
pub use packet::{EndpointId, Packet, PacketTag};
pub use planner::{
    CandidateOrigin, PlanConstraint, PlannedTopology, PlannerConfig, TopologyPlanner,
};
pub use stream::{BroadcastRoute, Stream, StreamManager};
pub use topology::{Topology, TopologyError, TreeNode, TreeNodeRole, TreeShape};
