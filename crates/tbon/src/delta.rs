//! Incremental (delta) reduction: fold per-wave deltas into per-node resident
//! state instead of re-reducing every wave from scratch.
//!
//! A one-shot gather ships every daemon's whole local tree up the overlay each
//! time it runs.  A *streaming* session runs every few seconds for the life of
//! the job, and between waves almost nothing changes — most daemons' wave trees
//! are subsets of what the front end already knows.  The continuous-profiler
//! architecture (agents push small batches, the server folds them into a rolling
//! call tree) maps onto the TBON like this:
//!
//! * each daemon diffs its wave against the last acknowledged wave and ships a
//!   [`PacketTag::TreeDelta`] packet carrying only the *new* subtrees and
//!   task-set words;
//! * each interior node merges its children's deltas with the ordinary channel
//!   filter — the merge of deltas over disjoint child domains *is* the delta of
//!   the merge — folds the result into its own resident state, and forwards the
//!   merged delta upward;
//! * the front end folds the final delta into the job-wide resident tree, which
//!   therefore always equals what one batched merge of every wave would have
//!   produced (the equivalence property `tests/properties.rs` pins down).
//!
//! The walk is deliberately sequential: quiescent-wave deltas are root-only
//! packets a few dozen bytes long, and the interesting quantity is bytes moved
//! and state touched, not thread-pool throughput.  `statbench`'s `streaming`
//! benchmark measures this path against a full re-reduce at 64K endpoints.
//!
//! The crate knows nothing about prefix trees; resident state is abstracted
//! behind [`ResidentState`]/[`StateFactory`], which `stat-core` implements with
//! its serialised-tree fold.

use std::time::{Duration, Instant};

use crate::filter::Filter;
use crate::network::{panic_message, TbonError};
use crate::packet::{Packet, PacketTag};
use crate::topology::{Topology, TreeNodeRole};

/// Endpoint ids index per-endpoint tables.  The conversion is lossless on every
/// supported target; an out-of-range id degrades to a table miss (a typed
/// `WalkInvariant`), never a truncated index.
fn slot(index: u32) -> usize {
    usize::try_from(index).unwrap_or(usize::MAX)
}

/// Per-node accumulated state the incremental walk folds merged deltas into.
pub trait ResidentState {
    /// Fold one merged delta packet into the state.  An `Err` message becomes
    /// [`TbonError::DeltaFold`] with the folding node attached.
    fn fold(&mut self, delta: &Packet) -> Result<(), String>;

    /// Approximate resident footprint in bytes, for reporting.
    fn resident_bytes(&self) -> usize;
}

/// Builds the initial (empty) resident state for a node.
pub trait StateFactory {
    /// The state type held at each interior node and the front end.
    type State: ResidentState;

    /// A fresh, empty state.
    fn new_state(&self) -> Self::State;
}

/// What one [`IncrementalTbon::fold_wave`] walk produced.
#[derive(Clone, Debug)]
pub struct WaveOutcome {
    /// The merged delta that reached the front end (already folded into the
    /// front end's resident state).
    pub frontend_delta: Packet,
    /// Bytes of delta payload that crossed any link this wave (each
    /// child-to-parent packet counted once).
    pub delta_link_bytes: u64,
    /// The largest per-node input wave, in bytes — the hot-spot quantity.
    pub max_node_bytes_in: u64,
    /// Wall-clock spent in filter invocations and state folds.
    pub fold_wall: Duration,
    /// Filter invocations performed (one per interior node and the front end).
    pub filter_invocations: u32,
}

/// A TBON whose interior nodes and front end hold resident state across waves.
///
/// Construct one per streaming session (and a fresh one after a mid-stream
/// topology rebuild — re-seed it by folding each survivor's full tree as a
/// delta against empty state).  [`Self::fold_wave`] then accepts one delta
/// packet per back-end daemon and returns the merged front-end delta plus the
/// byte/latency accounting for the wave.
pub struct IncrementalTbon<F: StateFactory> {
    topology: Topology,
    factory: F,
    /// Resident state per endpoint id; only interior nodes and the front end
    /// ever hold `Some` (back ends are the daemons' own concern).
    states: Vec<Option<F::State>>,
    waves_folded: u64,
}

impl<F: StateFactory> IncrementalTbon<F> {
    /// A delta network over `topology` with empty resident state everywhere.
    pub fn new(topology: Topology, factory: F) -> Self {
        let mut states = Vec::new();
        states.resize_with(topology.len(), || None);
        IncrementalTbon {
            topology,
            factory,
            states,
            waves_folded: 0,
        }
    }

    /// The topology the network folds over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Waves folded so far.
    pub fn waves_folded(&self) -> u64 {
        self.waves_folded
    }

    /// The front end's resident state — the rolling job-wide merge.  `None`
    /// until the first wave folds.
    pub fn frontend_state(&self) -> Option<&F::State> {
        let id = self.topology.frontend();
        self.states.get(slot(id.0)).and_then(|s| s.as_ref())
    }

    /// Total resident footprint across every node holding state, in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.states
            .iter()
            .flatten()
            .map(|s| s.resident_bytes())
            .sum()
    }

    /// Fold one wave of per-daemon deltas up the tree.
    ///
    /// `leaf_deltas` must supply exactly one packet per back-end daemon, in
    /// [`Topology::backends`] order (the same contract as `reduce`).  Every
    /// daemon reports every wave — a quiescent daemon ships its root-only empty
    /// delta, which keeps hierarchical domain offsets stable at every merge.
    pub fn fold_wave(
        &mut self,
        leaf_deltas: Vec<Packet>,
        filter: &dyn Filter,
    ) -> Result<WaveOutcome, TbonError> {
        let backends = self.topology.backends();
        if leaf_deltas.len() != backends.len() {
            return Err(TbonError::LeafCountMismatch {
                channel: "tree-delta",
                expected: backends.len(),
                actual: leaf_deltas.len(),
            });
        }

        // Inbox per endpoint: packets arriving from children, in child order.
        let mut inbox: Vec<Vec<Packet>> = Vec::new();
        inbox.resize_with(self.topology.len(), Vec::new);
        let mut delta_link_bytes = 0u64;
        let mut deliver =
            |inbox: &mut Vec<Vec<Packet>>, parent: u32, packet: Packet| -> Result<(), TbonError> {
                delta_link_bytes += packet.size_bytes() as u64;
                inbox
                    .get_mut(slot(parent))
                    .ok_or(TbonError::WalkInvariant {
                        context: "delta parent endpoint outside the topology",
                    })?
                    .push(packet);
                Ok(())
            };

        // Leaves first: each backend forwards its delta to its parent.
        for (&backend, packet) in backends.iter().zip(leaf_deltas) {
            let node = self.topology.node(backend);
            let parent = node.parent.ok_or(TbonError::WalkInvariant {
                context: "back-end daemon with no parent",
            })?;
            deliver(&mut inbox, parent.0, packet)?;
        }

        // Interior levels bottom-up (the deepest level is the backends, already
        // delivered above; the front end is level 0 and terminates the walk).
        let mut fold_wall = Duration::ZERO;
        let mut filter_invocations = 0u32;
        let mut max_node_bytes_in = 0u64;
        let mut frontend_delta: Option<Packet> = None;
        for level in self.topology.levels().iter().rev() {
            for &id in level {
                let node = self.topology.node(id);
                if node.role == TreeNodeRole::BackEnd {
                    continue;
                }
                let inputs =
                    std::mem::take(inbox.get_mut(slot(id.0)).ok_or(TbonError::WalkInvariant {
                        context: "interior endpoint outside the inbox",
                    })?);
                let bytes_in: u64 = inputs.iter().map(|p| p.size_bytes() as u64).sum();
                max_node_bytes_in = max_node_bytes_in.max(bytes_in);

                let start = Instant::now();
                let merged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    filter.reduce(id, &inputs)
                }))
                .map_err(|payload| TbonError::FilterPanicked {
                    node: id.0,
                    channel: 0,
                    message: panic_message(payload.as_ref()),
                })?;
                filter_invocations += 1;

                let state_slot =
                    self.states
                        .get_mut(slot(id.0))
                        .ok_or(TbonError::WalkInvariant {
                            context: "interior endpoint outside the state table",
                        })?;
                state_slot
                    .get_or_insert_with(|| self.factory.new_state())
                    .fold(&merged)
                    .map_err(|message| TbonError::DeltaFold {
                        node: id.0,
                        message,
                    })?;
                fold_wall += start.elapsed();

                match node.parent {
                    Some(parent) => deliver(&mut inbox, parent.0, merged)?,
                    None => frontend_delta = Some(merged),
                }
            }
        }

        let frontend_delta = frontend_delta
            .unwrap_or_else(|| Packet::control(PacketTag::TreeDelta, self.topology.frontend()));
        self.waves_folded += 1;
        Ok(WaveOutcome {
            frontend_delta,
            delta_link_bytes,
            max_node_bytes_in,
            fold_wall,
            filter_invocations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::SumFilter;
    use crate::packet::EndpointId;
    use crate::topology::TreeShape;

    /// Resident state that sums every byte folded into it.
    struct ByteSum(u64);
    impl ResidentState for ByteSum {
        fn fold(&mut self, delta: &Packet) -> Result<(), String> {
            self.0 += delta.payload.iter().map(|&b| b as u64).sum::<u64>();
            Ok(())
        }
        fn resident_bytes(&self) -> usize {
            8
        }
    }
    struct ByteSumFactory;
    impl StateFactory for ByteSumFactory {
        type State = ByteSum;
        fn new_state(&self) -> ByteSum {
            ByteSum(0)
        }
    }

    fn leaves(topology: &Topology, value: u8) -> Vec<Packet> {
        topology
            .backends()
            .iter()
            .map(|&ep| Packet::new(PacketTag::TreeDelta, ep, vec![value]))
            .collect()
    }

    #[test]
    fn folds_accumulate_across_waves_at_every_interior_node() {
        let topology = Topology::build(TreeShape::two_deep(8, 2));
        let mut net = IncrementalTbon::new(topology, ByteSumFactory);
        let filter = SumFilter;

        for wave in 1..=3u64 {
            let leaf = leaves(net.topology(), 1);
            let outcome = net.fold_wave(leaf, &filter).unwrap();
            // 8 backends each contribute 1.
            assert_eq!(SumFilter::decode(&outcome.frontend_delta), 8);
            assert_eq!(outcome.filter_invocations, 3); // 2 comms + front end
            assert_eq!(net.waves_folded(), wave);
            // The front end folds one encode(8) packet per wave; ByteSum adds
            // its payload bytes, which for a little-endian 8 is just 8.
            assert_eq!(net.frontend_state().unwrap().0, 8 * wave);
        }
        // 2 comms + 1 front end hold state; backends hold none.
        assert_eq!(net.resident_bytes(), 3 * 8);
    }

    #[test]
    fn wrong_leaf_count_is_a_typed_error() {
        let topology = Topology::build(TreeShape::two_deep(8, 2));
        let mut net = IncrementalTbon::new(topology, ByteSumFactory);
        let err = net.fold_wave(vec![], &SumFilter).unwrap_err();
        assert!(matches!(
            err,
            TbonError::LeafCountMismatch {
                channel: "tree-delta",
                expected: 8,
                actual: 0,
            }
        ));
    }

    #[test]
    fn state_rejection_surfaces_the_folding_node() {
        struct Picky;
        impl ResidentState for Picky {
            fn fold(&mut self, _delta: &Packet) -> Result<(), String> {
                Err("wrong domain".to_string())
            }
            fn resident_bytes(&self) -> usize {
                0
            }
        }
        struct PickyFactory;
        impl StateFactory for PickyFactory {
            type State = Picky;
            fn new_state(&self) -> Picky {
                Picky
            }
        }
        let topology = Topology::build(TreeShape::flat(4));
        let mut net = IncrementalTbon::new(topology, PickyFactory);
        let leaf = leaves(net.topology(), 0);
        match net.fold_wave(leaf, &SumFilter).unwrap_err() {
            TbonError::DeltaFold { node, message } => {
                assert_eq!(node, 0); // flat tree: the front end folds directly
                assert_eq!(message, "wrong domain");
            }
            other => panic!("expected DeltaFold, got {other}"),
        }
    }

    #[test]
    fn link_bytes_count_every_hop_once() {
        let topology = Topology::build(TreeShape::two_deep(8, 2));
        let mut net = IncrementalTbon::new(topology, ByteSumFactory);
        let leaf = leaves(net.topology(), 1);
        let outcome = net.fold_wave(leaf, &SumFilter).unwrap();
        // 8 backend→comm packets of 1 byte + 2 comm→frontend packets of 8 bytes
        // (SumFilter always emits an 8-byte little-endian sum).
        assert_eq!(outcome.delta_link_bytes, 8 + 16);
        // The front end's input wave (2 × 8 bytes) is the largest.
        assert_eq!(outcome.max_node_bytes_in, 16);
        let _ = EndpointId(0);
    }
}
