//! Cost-model-driven topology planning.
//!
//! The paper hand-picked three tree shapes and measured them; the question it left
//! open — *which shape should the tool pick at a scale nobody has measured yet?* —
//! is what [`TopologyPlanner`] answers.  Given a [`Cluster`] and a task count, the
//! planner enumerates candidate [`TreeShape`]s (the paper's placement-rule shapes at
//! every depth, plus a fan-in × depth grid of uniform trees), prices each one with
//! [`ReductionCostModel`] under the hierarchical-representation payload the paper
//! converges on, checks each against the machine's
//! [`CommProcessBudget`](machine::placement::CommProcessBudget), and returns them
//! ranked as [`PlannedTopology`] values: predicted merge latency, the fan-out and
//! daemon count behind it, and the constraint that bound the shape (if any).
//!
//! Beyond the physical machine the planner extrapolates the machine family
//! ([`PlacementPlan::for_scaled_job`]), so the same API sweeps the merge question
//! out to millions of simulated cores — the title of the paper.
//!
//! Each candidate is priced over a fully built [`Topology`] so the planner and
//! the figure estimators share one cost path (`plan` at a million cores is
//! ~30 ms).  For sweeps far beyond that, an analytic per-level evaluation over
//! the raw [`TreeShape`] would avoid materialising multi-million-node trees per
//! candidate — a known optimisation lever, deliberately not taken while the two
//! paths are required to agree byte for byte.

use std::fmt;

use machine::cluster::Cluster;
use machine::placement::PlacementPlan;
use simkit::time::SimDuration;

use crate::cost::ReductionCostModel;
use crate::topology::{Topology, TreeShape};

/// Knobs of the planner's candidate enumeration and payload model.  The payload
/// constants default to the ring-hang calibration used by the figure generators, so
/// planner predictions and figure estimates agree by construction.
#[derive(Clone, Debug)]
pub struct PlannerConfig {
    /// Deepest tree the planner will consider (edges from front end to daemons).
    pub max_depth: u32,
    /// Uniform fan-ins enumerated at every depth, alongside the placement-rule
    /// shapes.
    pub fan_ins: Vec<u32>,
    /// Edges of a locally merged 2D tree.
    pub tree_edges_2d: u64,
    /// Edges of a locally merged 3D tree.
    pub tree_edges_3d: u64,
    /// Bytes of frame names carried once per packet.
    pub frame_names_bytes: u64,
    /// Optional class-saturation knee: when set, subtrees holding more tasks
    /// than this emit packets no larger than a subtree at the knee (the
    /// [`ClassSaturatedPayload`](crate::cost::ClassSaturatedPayload) model).
    /// `None` keeps the unsaturated worst-case payload the planner always used.
    pub class_saturation_tasks: Option<u64>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_depth: 6,
            fan_ins: vec![2, 4, 8, 16, 32, 64],
            tree_edges_2d: 24,
            tree_edges_3d: 60,
            frame_names_bytes: 420,
            class_saturation_tasks: None,
        }
    }
}

/// Where a candidate shape came from — the stable identity of one row of a
/// fan-in × depth sweep table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CandidateOrigin {
    /// The paper's placement rules ([`PlacementPlan::level_widths`]) at this depth.
    Placement {
        /// Tree depth in edges.
        depth: u32,
    },
    /// A uniform tree: every internal level grows by `fan_in`, the leaf level
    /// absorbs the rest.
    Uniform {
        /// Fan-in of the upper levels.
        fan_in: u32,
        /// Tree depth in edges.
        depth: u32,
    },
}

impl CandidateOrigin {
    /// A stable series label ("placement 2-deep", "fan-in 8 × 3-deep").
    pub fn label(&self) -> String {
        match self {
            CandidateOrigin::Placement { depth } => format!("placement {depth}-deep"),
            CandidateOrigin::Uniform { fan_in, depth } => {
                format!("fan-in {fan_in} × {depth}-deep")
            }
        }
    }
}

impl fmt::Display for CandidateOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The machine constraint that bound (or disqualified) a candidate shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanConstraint {
    /// The shape wants more communication processes than the machine (or its
    /// scaled-out extrapolation) can host.
    CommBudget {
        /// Communication processes the shape asks for.
        requested: u32,
        /// Processes the budget allows.
        allowed: u32,
    },
    /// A flat tree's front end cannot absorb this many direct daemon connections —
    /// the failure the paper observed at 256 I/O-node daemons on BG/L.
    FrontEndFanOut {
        /// Direct connections the shape requires.
        daemons: u32,
        /// The observed failure threshold.
        limit: u32,
    },
}

impl fmt::Display for PlanConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanConstraint::CommBudget { requested, allowed } => write!(
                f,
                "comm-process budget: shape wants {requested}, machine hosts {allowed}"
            ),
            PlanConstraint::FrontEndFanOut { daemons, limit } => write!(
                f,
                "front-end fan-out: {daemons} direct daemon connections (observed failure at {limit})"
            ),
        }
    }
}

/// One evaluated candidate: a shape, its predicted cost, and what (if anything)
/// constrained it.
#[derive(Clone, Debug)]
pub struct PlannedTopology {
    /// Which enumeration family produced the shape.
    pub origin: CandidateOrigin,
    /// The candidate shape itself.
    pub shape: TreeShape,
    /// Predicted merge critical path under the hierarchical representation.
    pub predicted: SimDuration,
    /// Largest fan-out any node of the shape has.
    pub max_fanout: u32,
    /// Back-end daemons the shape serves.
    pub daemons: u32,
    /// Communication processes the shape employs.
    pub comm_processes: u32,
    /// Whether the machine can actually run this shape.
    pub feasible: bool,
    /// The constraint that made the shape infeasible, or that it runs exactly at
    /// the edge of (`feasible` with the budget fully spent).
    pub bound_by: Option<PlanConstraint>,
}

/// Daemon count above which the paper observed the flat tree's front end failing
/// outright on I/O-node machines (Section V).
pub const FLAT_FRONTEND_LIMIT: u32 = 256;

/// The paper's hard flat-tree failure: on machines whose daemons live on
/// dedicated I/O nodes, a 1-deep tree stops working once the front end must
/// absorb [`FLAT_FRONTEND_LIMIT`] or more direct daemon connections.  Shared
/// between the planner's feasibility check and `PhaseEstimator`'s failure
/// annotation so the two can never drift.
pub fn flat_frontend_overloaded(shape: &TreeShape, daemons_on_io_nodes: bool) -> bool {
    shape.depth() == 1 && daemons_on_io_nodes && shape.backends() >= FLAT_FRONTEND_LIMIT
}

/// Searches candidate tree shapes for a cluster and job size using the reduction
/// cost model, under the machine's placement constraints.
#[derive(Clone, Debug)]
pub struct TopologyPlanner {
    cluster: Cluster,
    config: PlannerConfig,
}

impl TopologyPlanner {
    /// A planner for the given machine with the default candidate grid and the
    /// ring-hang payload calibration.
    pub fn new(cluster: Cluster) -> Self {
        TopologyPlanner {
            cluster,
            config: PlannerConfig::default(),
        }
    }

    /// Override the candidate grid / payload constants.
    pub fn with_config(mut self, config: PlannerConfig) -> Self {
        self.config = config;
        self
    }

    /// The machine the planner searches for.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Evaluate every candidate shape for a job of `tasks` MPI tasks and return
    /// them ranked: feasible candidates first, cheapest predicted merge first, with
    /// infeasible candidates (still priced, for the sweep tables) at the end.
    pub fn rank(&self, tasks: u64) -> Vec<PlannedTopology> {
        let tasks = tasks.max(1);
        let plan = PlacementPlan::for_scaled_job(&self.cluster, tasks);
        let mut candidates = Vec::new();
        for depth in 1..=self.config.max_depth.max(1) {
            candidates.push((
                CandidateOrigin::Placement { depth },
                TreeShape::for_placement(&plan, depth),
            ));
        }
        // Uniform candidates need at least one comm level; a config capped at
        // depth 1 restricts the grid to the flat placement shape alone.
        for &fan_in in &self.config.fan_ins {
            for depth in 2..=self.config.max_depth {
                candidates.push((
                    CandidateOrigin::Uniform { fan_in, depth },
                    TreeShape::uniform_with_depth(plan.daemons, fan_in, depth),
                ));
            }
        }

        let mut evaluated: Vec<PlannedTopology> = candidates
            .into_iter()
            .map(|(origin, shape)| self.evaluate(origin, shape, &plan, tasks))
            .collect();
        evaluated.sort_by(|a, b| {
            b.feasible
                .cmp(&a.feasible)
                .then(a.predicted.cmp(&b.predicted))
                .then(a.shape.depth().cmp(&b.shape.depth()))
                .then(a.max_fanout.cmp(&b.max_fanout))
        });
        evaluated
    }

    /// The cheapest feasible candidate for a job of `tasks` MPI tasks.
    ///
    /// The default grid always contains a feasible shape (the placement 2-deep
    /// tree fits any budget by construction), but a custom [`PlannerConfig`] can
    /// restrict the grid until nothing survives the constraints; the cheapest
    /// candidate overall is then returned with `feasible == false` so the caller
    /// can surface its [`bound_by`](PlannedTopology::bound_by) constraint instead
    /// of silently proceeding.
    pub fn plan(&self, tasks: u64) -> PlannedTopology {
        self.rank(tasks)
            .into_iter()
            .next()
            .expect("the candidate grid is never empty")
    }

    /// Price one shape with the reduction cost model and the machine constraints.
    fn evaluate(
        &self,
        origin: CandidateOrigin,
        shape: TreeShape,
        plan: &PlacementPlan,
        tasks: u64,
    ) -> PlannedTopology {
        let topology = Topology::build(shape.clone());
        let model = ReductionCostModel::standard(
            &topology,
            &self.cluster.interconnect,
            self.cluster.login_host_slowdown(),
            self.cluster.daemon_host_slowdown(),
        );
        let edges = self.config.tree_edges_2d + self.config.tree_edges_3d;
        let frame_bytes = self.config.frame_names_bytes;
        let tasks_per_daemon = plan.tasks_per_daemon.max(1) as u64;
        let saturation = self.config.class_saturation_tasks.unwrap_or(u64::MAX);
        let cost = model.reduce(&|_id, subtree_backends| {
            let subtree_tasks = (subtree_backends as u64 * tasks_per_daemon).min(tasks);
            edges * crate::cost::subtree_node_bytes(subtree_tasks.min(saturation)) + frame_bytes
        });

        let comm = shape.comm_processes();
        let allowed = plan.comm_budget.max_processes;
        let mut feasible = true;
        let mut bound_by = None;
        if comm > allowed {
            feasible = false;
            bound_by = Some(PlanConstraint::CommBudget {
                requested: comm,
                allowed,
            });
        } else if flat_frontend_overloaded(&shape, plan.daemons_on_io_nodes) {
            feasible = false;
            bound_by = Some(PlanConstraint::FrontEndFanOut {
                daemons: shape.backends(),
                limit: FLAT_FRONTEND_LIMIT,
            });
        } else if comm == allowed && comm > 0 {
            // Feasible, but the budget is exactly spent: the shape is bound by it.
            bound_by = Some(PlanConstraint::CommBudget {
                requested: comm,
                allowed,
            });
        }

        PlannedTopology {
            origin,
            max_fanout: shape.max_fanout(),
            daemons: shape.backends(),
            comm_processes: comm,
            shape,
            predicted: cost.critical_path,
            feasible,
            bound_by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::BglMode;

    #[test]
    fn planner_rejects_the_flat_tree_at_bgl_scale() {
        let planner = TopologyPlanner::new(Cluster::bluegene_l(BglMode::VirtualNode));
        let ranked = planner.rank(212_992);
        let flat = ranked
            .iter()
            .find(|c| c.origin == CandidateOrigin::Placement { depth: 1 })
            .expect("the flat candidate is always enumerated");
        assert!(!flat.feasible);
        assert_eq!(
            flat.bound_by,
            Some(PlanConstraint::FrontEndFanOut {
                daemons: 1_664,
                limit: 256,
            })
        );
    }

    #[test]
    fn planner_pick_respects_the_comm_budget() {
        let planner = TopologyPlanner::new(Cluster::bluegene_l(BglMode::VirtualNode));
        let pick = planner.plan(212_992);
        assert!(pick.feasible);
        assert!(
            pick.comm_processes <= 28,
            "BG/L hosts at most 28 comm processes"
        );
        assert_eq!(pick.daemons, 1_664);
        // Every feasible candidate is at least as expensive as the pick.
        for c in planner.rank(212_992).iter().filter(|c| c.feasible) {
            assert!(c.predicted >= pick.predicted);
        }
    }

    #[test]
    fn wide_uniform_shapes_are_bound_by_the_budget() {
        let planner = TopologyPlanner::new(Cluster::bluegene_l(BglMode::VirtualNode));
        let ranked = planner.rank(212_992);
        let wide = ranked
            .iter()
            .find(|c| {
                c.origin
                    == CandidateOrigin::Uniform {
                        fan_in: 64,
                        depth: 3,
                    }
            })
            .expect("fan-in 64 is in the default grid");
        // 64 + 1,664-capped second level wants far more than 28 processes.
        assert!(!wide.feasible);
        assert!(matches!(
            wide.bound_by,
            Some(PlanConstraint::CommBudget { .. })
        ));
    }

    #[test]
    fn planning_extends_beyond_the_physical_machine() {
        let planner = TopologyPlanner::new(Cluster::bluegene_l(BglMode::VirtualNode));
        let pick = planner.plan(1_048_576);
        assert_eq!(pick.daemons, 8_192, "128 tasks per daemon, unclamped");
        assert!(pick.feasible);
        assert!(pick.predicted > SimDuration::ZERO);
        // At a million tasks a deeper-than-paper tree must at least be on the
        // table; the grid prices depths the old enum could not express.
        assert!(planner
            .rank(1_048_576)
            .iter()
            .any(|c| c.shape.depth() >= 4 && c.feasible));
    }

    #[test]
    fn atlas_small_jobs_prefer_shallow_trees() {
        let planner = TopologyPlanner::new(Cluster::atlas());
        let pick = planner.plan(512);
        // 64 daemons with fast links: a deep chain of filter hops only adds
        // latency, so the planner stays shallow.
        assert!(pick.shape.depth() <= 2, "picked {:?}", pick.shape);
        assert!(pick.feasible);
    }

    #[test]
    fn depth_capped_config_restricts_the_grid() {
        let config = PlannerConfig {
            max_depth: 1,
            ..PlannerConfig::default()
        };
        let planner =
            TopologyPlanner::new(Cluster::bluegene_l(BglMode::VirtualNode)).with_config(config);
        let ranked = planner.rank(212_992);
        // Only the flat placement shape survives a depth-1 cap — no uniform
        // depth-2 candidates sneak past the config.
        assert_eq!(ranked.len(), 1);
        assert!(ranked.iter().all(|c| c.shape.depth() == 1));
        // Nothing is feasible at this scale, and the documented contract holds:
        // plan() returns the cheapest candidate flagged infeasible, carrying the
        // constraint that killed it.
        let pick = planner.plan(212_992);
        assert!(!pick.feasible);
        assert!(matches!(
            pick.bound_by,
            Some(PlanConstraint::FrontEndFanOut { .. })
        ));
    }

    #[test]
    fn class_saturation_shifts_the_pick_toward_depth() {
        // At 64M simulated tasks the unsaturated worst-case payload punishes
        // extra filter hops (every level re-ships near-job-sized bit vectors),
        // while the saturated model makes packets constant-size past the knee
        // so fan-in dominates and the planner goes deeper — the crossover the
        // campaign surface records.
        let cluster = Cluster::bluegene_l(BglMode::VirtualNode);
        let tasks = 67_108_864;
        let flat_world = TopologyPlanner::new(cluster.clone()).plan(tasks);
        let saturated = TopologyPlanner::new(cluster)
            .with_config(PlannerConfig {
                class_saturation_tasks: Some(1 << 20),
                ..PlannerConfig::default()
            })
            .plan(tasks);
        assert!(
            saturated.shape.depth() >= flat_world.shape.depth(),
            "saturation must never make the planner shallower: {:?} vs {:?}",
            saturated.shape,
            flat_world.shape
        );
        assert!(
            saturated.predicted < flat_world.predicted,
            "saturated payloads must price the same job cheaper"
        );
    }

    #[test]
    fn origin_labels_are_stable_series_names() {
        assert_eq!(
            CandidateOrigin::Placement { depth: 2 }.label(),
            "placement 2-deep"
        );
        assert_eq!(
            CandidateOrigin::Uniform {
                fan_in: 8,
                depth: 3
            }
            .label(),
            "fan-in 8 × 3-deep"
        );
    }
}
