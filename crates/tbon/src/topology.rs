//! Tree shapes and balanced-tree construction.
//!
//! The paper tests three families of tree (Section III):
//!
//! * **1-deep (flat)** — the front end connects directly to every daemon;
//! * **2-deep** — one layer of communication processes; the fan-out from the front
//!   end is `sqrt(#daemons)`, capped at 28 on BG/L because communication processes
//!   can only live on the 14 dual-processor login nodes;
//! * **3-deep** — two layers; the front end fans out to 4 processes, the next level
//!   uses 16 or 24 processes depending on job scale.
//!
//! Those three were once a closed enum.  The paper's real question — *what shape
//! keeps the merge sub-second as core counts grow past 208K toward millions?* —
//! needs arbitrary shapes, so the family enum is gone: a [`TreeShape`] describes a
//! reduction tree of any depth (explicit per-level widths, or a uniform fan-in),
//! and the paper's families are merely constructors ([`TreeShape::flat`],
//! [`TreeShape::two_deep`], [`TreeShape::three_deep`], [`TreeShape::balanced`]).
//! [`Topology::build`] turns a shape into a concrete tree with stable endpoint ids,
//! balanced so that every parent at a level has child counts differing by at most
//! one.  [`crate::planner::TopologyPlanner`] searches candidate shapes with the
//! reduction cost model.

use std::fmt;

use machine::placement::PlacementPlan;

use crate::packet::EndpointId;

/// An arbitrary-depth description of a reduction tree: the width of every level
/// from the front end (width 1) down to the back-end daemons.
///
/// Construct one with the paper's family constructors ([`flat`](TreeShape::flat),
/// [`two_deep`](TreeShape::two_deep), [`three_deep`](TreeShape::three_deep)), with
/// the generalised rules ([`balanced`](TreeShape::balanced),
/// [`uniform`](TreeShape::uniform),
/// [`uniform_with_depth`](TreeShape::uniform_with_depth),
/// [`for_placement`](TreeShape::for_placement)) or from explicit widths
/// ([`from_level_widths`](TreeShape::from_level_widths)).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TreeShape {
    /// Widths of each level, root first.  `level_widths[0]` is always 1 (the front
    /// end) and `level_widths.last()` is the number of back-end daemons.  Widths are
    /// non-decreasing from root to leaves.
    pub level_widths: Vec<u32>,
}

impl TreeShape {
    /// A shape from explicit level widths, sanitised: the root level is forced to
    /// width 1, the final width (the back-end daemon count) is authoritative, and
    /// interior widths are raised to at least 1, capped at the daemon count, and
    /// made non-decreasing from the root down (a level narrower than its parent
    /// level would leave parents childless, which no reduction tree can use).
    pub fn from_level_widths(widths: Vec<u32>) -> Self {
        if widths.len() <= 1 {
            return TreeShape {
                level_widths: vec![1, 1],
            };
        }
        let backends = widths.last().copied().unwrap_or(1).max(1);
        let mut level_widths = Vec::with_capacity(widths.len());
        level_widths.push(1u32);
        let mut floor = 1u32;
        for &w in &widths[1..widths.len() - 1] {
            floor = w.max(floor).min(backends).max(1);
            level_widths.push(floor);
        }
        level_widths.push(backends);
        TreeShape { level_widths }
    }

    /// A flat 1-to-N shape ("1-deep").
    pub fn flat(backends: u32) -> Self {
        TreeShape {
            level_widths: vec![1, backends.max(1)],
        }
    }

    /// A 2-deep shape with an explicit number of communication processes.
    pub fn two_deep(backends: u32, comm_processes: u32) -> Self {
        let backends = backends.max(1);
        let comm = comm_processes.clamp(1, backends);
        TreeShape {
            level_widths: vec![1, comm, backends],
        }
    }

    /// A 3-deep shape with explicit level widths.
    pub fn three_deep(backends: u32, first_level: u32, second_level: u32) -> Self {
        let backends = backends.max(1);
        let first = first_level.clamp(1, backends);
        let second = second_level.clamp(first, backends);
        TreeShape {
            level_widths: vec![1, first, second, backends],
        }
    }

    /// The paper's rule for a balanced `depth`-deep tree: the maximum fan-out is the
    /// `depth`-th root of the number of daemons (Section V-A), applied at any depth
    /// the caller asks for (clamped to 1..=8).
    pub fn balanced(backends: u32, depth: u32) -> Self {
        let backends = backends.max(1);
        let depth = depth.clamp(1, 8);
        if depth == 1 {
            return TreeShape::flat(backends);
        }
        let fanout = (backends as f64).powf(1.0 / depth as f64).ceil().max(1.0) as u32;
        let mut widths = vec![1u32];
        let mut width = 1u64;
        for _ in 1..depth {
            width = (width * fanout as u64).min(backends as u64);
            widths.push(width as u32);
        }
        widths.push(backends);
        TreeShape {
            level_widths: widths,
        }
    }

    /// A shape in which every internal node has (up to) `fan_in` children: level
    /// widths grow geometrically by `fan_in` until they reach the backend count.
    /// The depth falls out of the fan-in rather than being chosen up front.
    pub fn uniform(backends: u32, fan_in: u32) -> Self {
        let backends = backends.max(1);
        let fan_in = fan_in.max(2);
        let mut widths = vec![1u32];
        let mut width = 1u64;
        // Grow by fan_in while a further level is still needed; the leaf level is
        // always pinned to `backends` (if the 15-level cap is hit first, the last
        // fan-out absorbs the remainder rather than dropping daemons).
        while width.saturating_mul(fan_in as u64) < backends as u64 && widths.len() < 15 {
            width *= fan_in as u64;
            widths.push(width as u32);
        }
        widths.push(backends);
        TreeShape {
            level_widths: widths,
        }
    }

    /// A shape of exactly `depth` edges whose upper levels grow geometrically by
    /// `fan_in`; the leaf level is pinned to `backends`, so the last fan-out absorbs
    /// whatever the chosen fan-in cannot reach.  This is the candidate family the
    /// fan-in × depth sweeps and the planner enumerate.
    pub fn uniform_with_depth(backends: u32, fan_in: u32, depth: u32) -> Self {
        let backends = backends.max(1);
        let fan_in = fan_in.max(2);
        let depth = depth.clamp(1, 16);
        let mut widths = vec![1u32];
        let mut width = 1u64;
        for _ in 1..depth {
            width = (width * fan_in as u64).min(backends as u64);
            widths.push(width as u32);
        }
        widths.push(backends);
        TreeShape {
            level_widths: widths,
        }
    }

    /// The shape the paper's placement rules produce for a tree of `depth` edges on
    /// a given placement: flat for 1-deep, `min(sqrt(daemons), budget)` comm
    /// processes for 2-deep, fan-out 4 then 16/24 for 3-deep, and the budget-fitted
    /// nth-root generalisation beyond that (see [`PlacementPlan::level_widths`]).
    ///
    /// Migration note: `TopologySpec::for_placement(TopologyKind::TwoDeep, &plan)`
    /// from earlier revisions is now `TreeShape::for_placement(&plan, 2)`.
    pub fn for_placement(plan: &PlacementPlan, depth: u32) -> Self {
        TreeShape::from_level_widths(plan.level_widths(depth))
    }

    /// Number of back-end daemons.
    pub fn backends(&self) -> u32 {
        *self.level_widths.last().expect("shape always has levels")
    }

    /// Number of communication processes (all levels between the root and the leaves).
    pub fn comm_processes(&self) -> u32 {
        if self.level_widths.len() <= 2 {
            0
        } else {
            self.level_widths[1..self.level_widths.len() - 1]
                .iter()
                .sum()
        }
    }

    /// Tree depth measured in edges from the front end to a daemon.
    pub fn depth(&self) -> u32 {
        (self.level_widths.len() - 1) as u32
    }

    /// The largest fan-out any node in the tree will have.
    pub fn max_fanout(&self) -> u32 {
        self.level_widths
            .windows(2)
            .map(|w| w[1].div_ceil(w[0]))
            .max()
            .unwrap_or(1)
    }

    /// The series label used in the figures ("1-deep", "2-deep", ... "6-deep").
    pub fn label(&self) -> String {
        format!("{}-deep", self.depth())
    }
}

/// The role of a node in the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeNodeRole {
    /// The tool front end (tree root).
    FrontEnd,
    /// An intermediate communication process.
    CommProcess,
    /// A back-end tool daemon (tree leaf).
    BackEnd,
}

/// One node of a concrete tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeNode {
    /// Stable endpoint id (0 is always the front end).
    pub id: EndpointId,
    /// Role in the tree.
    pub role: TreeNodeRole,
    /// Level: 0 for the front end, `depth` for the daemons.
    pub level: u32,
    /// Index of this node within its level.
    pub index_in_level: u32,
    /// Parent endpoint, `None` only for the front end.
    pub parent: Option<EndpointId>,
    /// Children, in ascending id order.
    pub children: Vec<EndpointId>,
}

/// A structural invariant violation found by [`Topology::validate`].
///
/// Each variant carries the level, endpoint and expected/actual counts the caller
/// needs to localise the problem — the same typed-error convention `TbonError` and
/// `StatError` follow elsewhere in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// The topology contains no nodes at all.
    Empty,
    /// The front end (endpoint 0) has a parent.
    FrontEndHasParent {
        /// The parent it claims.
        parent: EndpointId,
    },
    /// A node with the front-end role sits below the root level.
    FrontEndOffRoot {
        /// The level it was found at.
        level: u32,
    },
    /// A non-root node has no parent link.
    MissingParent {
        /// The orphaned endpoint.
        endpoint: EndpointId,
        /// Its level.
        level: u32,
    },
    /// A node's parent does not sit exactly one level above it.
    LevelSkew {
        /// The child endpoint.
        endpoint: EndpointId,
        /// The child's level.
        level: u32,
        /// The parent endpoint.
        parent: EndpointId,
        /// The parent's level.
        parent_level: u32,
    },
    /// A node names a parent whose child list does not contain it.
    UnlinkedChild {
        /// The child endpoint.
        endpoint: EndpointId,
        /// The parent whose child list is missing it.
        parent: EndpointId,
    },
    /// A back-end daemon (tree leaf) has children.
    BackEndWithChildren {
        /// The offending endpoint.
        endpoint: EndpointId,
        /// How many children it has.
        children: u32,
    },
    /// The number of reachable back-end daemons disagrees with the shape.
    BackEndCount {
        /// Daemons the shape promises.
        expected: u32,
        /// Daemons actually present.
        actual: u32,
    },
    /// Sibling fan-outs at one level differ by more than one child.
    UnbalancedFanOut {
        /// The parent level whose children are skewed.
        level: u32,
        /// Smallest child count at that level.
        min_fanout: u32,
        /// Largest child count at that level.
        max_fanout: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "empty topology"),
            TopologyError::FrontEndHasParent { parent } => {
                write!(f, "front end has a parent ({parent})")
            }
            TopologyError::FrontEndOffRoot { level } => {
                write!(f, "front end found at level {level}, expected level 0")
            }
            TopologyError::MissingParent { endpoint, level } => {
                write!(f, "{endpoint} at level {level} has no parent")
            }
            TopologyError::LevelSkew {
                endpoint,
                level,
                parent,
                parent_level,
            } => write!(
                f,
                "{endpoint} at level {level} has parent {parent} at level {parent_level}"
            ),
            TopologyError::UnlinkedChild { endpoint, parent } => {
                write!(f, "{endpoint} missing from the child list of {parent}")
            }
            TopologyError::BackEndWithChildren { endpoint, children } => {
                write!(f, "backend {endpoint} has {children} children")
            }
            TopologyError::BackEndCount { expected, actual } => {
                write!(f, "expected {expected} backends, found {actual}")
            }
            TopologyError::UnbalancedFanOut {
                level,
                min_fanout,
                max_fanout,
            } => write!(
                f,
                "unbalanced level {level}: child counts range {min_fanout}..{max_fanout}"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A concrete, fully wired tree.
#[derive(Clone, Debug)]
pub struct Topology {
    shape: TreeShape,
    nodes: Vec<TreeNode>,
    levels: Vec<Vec<EndpointId>>,
}

impl Topology {
    /// Build a balanced tree from a shape.  Children are distributed contiguously so
    /// that sibling subtree sizes differ by at most one daemon.
    pub fn build(shape: TreeShape) -> Self {
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut levels: Vec<Vec<EndpointId>> = Vec::new();
        let depth = shape.depth();
        let mut next_id = 0u32;

        for (level, &width) in shape.level_widths.iter().enumerate() {
            let mut ids = Vec::with_capacity(width as usize);
            for index in 0..width {
                let id = EndpointId(next_id);
                next_id += 1;
                let role = if level == 0 {
                    TreeNodeRole::FrontEnd
                } else if level as u32 == depth {
                    TreeNodeRole::BackEnd
                } else {
                    TreeNodeRole::CommProcess
                };
                nodes.push(TreeNode {
                    id,
                    role,
                    level: level as u32,
                    index_in_level: index,
                    parent: None,
                    children: Vec::new(),
                });
                ids.push(id);
            }
            levels.push(ids);
        }

        // Wire each level to its parent level: child i of a level of width c attaches
        // to parent floor(i * p / c) of the level above (width p).  This spreads
        // children as evenly as possible and keeps rank ranges contiguous per subtree,
        // which is what the hierarchical task-list representation relies on.
        for level in 1..levels.len() {
            let parent_width = levels[level - 1].len() as u64;
            let child_width = levels[level].len() as u64;
            for (i, &child_id) in levels[level].iter().enumerate() {
                let parent_idx = (i as u64 * parent_width) / child_width;
                let parent_id = levels[level - 1][parent_idx as usize];
                nodes[child_id.0 as usize].parent = Some(parent_id);
                nodes[parent_id.0 as usize].children.push(child_id);
            }
        }

        Topology {
            shape,
            nodes,
            levels,
        }
    }

    /// The shape the tree was built from.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The front end's endpoint id.
    pub fn frontend(&self) -> EndpointId {
        EndpointId(0)
    }

    /// Endpoint ids of every back-end daemon, in rank order of their level index.
    pub fn backends(&self) -> &[EndpointId] {
        self.levels.last().expect("tree always has levels")
    }

    /// Endpoint ids of every communication process.
    pub fn comm_processes(&self) -> Vec<EndpointId> {
        self.nodes
            .iter()
            .filter(|n| n.role == TreeNodeRole::CommProcess)
            .map(|n| n.id)
            .collect()
    }

    /// Node metadata.
    pub fn node(&self, id: EndpointId) -> &TreeNode {
        &self.nodes[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Endpoint ids level by level, root first.
    pub fn levels(&self) -> &[Vec<EndpointId>] {
        &self.levels
    }

    /// Tree depth in edges.
    pub fn depth(&self) -> u32 {
        self.shape.depth()
    }

    /// Total number of endpoints.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a degenerate empty tree (never produced by [`Topology::build`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The number of back-end daemons in the subtree rooted at `id`.
    pub fn subtree_backends(&self, id: EndpointId) -> u32 {
        let node = self.node(id);
        match node.role {
            TreeNodeRole::BackEnd => 1,
            _ => node
                .children
                .iter()
                .map(|&c| self.subtree_backends(c))
                .sum(),
        }
    }

    /// The largest fan-out actually present in the built tree.
    pub fn max_fanout(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Verify structural invariants; used by property tests.  Returns a typed
    /// description of the first violation found, if any.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.nodes.is_empty() {
            return Err(TopologyError::Empty);
        }
        if let Some(parent) = self.node(self.frontend()).parent {
            return Err(TopologyError::FrontEndHasParent { parent });
        }
        let mut reachable_backends = 0u32;
        for n in &self.nodes {
            match n.role {
                TreeNodeRole::FrontEnd => {
                    if n.level != 0 {
                        return Err(TopologyError::FrontEndOffRoot { level: n.level });
                    }
                }
                TreeNodeRole::CommProcess | TreeNodeRole::BackEnd => {
                    let parent = match n.parent {
                        Some(p) => p,
                        None => {
                            return Err(TopologyError::MissingParent {
                                endpoint: n.id,
                                level: n.level,
                            })
                        }
                    };
                    let pnode = self.node(parent);
                    if pnode.level + 1 != n.level {
                        return Err(TopologyError::LevelSkew {
                            endpoint: n.id,
                            level: n.level,
                            parent,
                            parent_level: pnode.level,
                        });
                    }
                    if !pnode.children.contains(&n.id) {
                        return Err(TopologyError::UnlinkedChild {
                            endpoint: n.id,
                            parent,
                        });
                    }
                    if n.role == TreeNodeRole::BackEnd {
                        if !n.children.is_empty() {
                            return Err(TopologyError::BackEndWithChildren {
                                endpoint: n.id,
                                children: n.children.len() as u32,
                            });
                        }
                        reachable_backends += 1;
                    }
                }
            }
        }
        if reachable_backends != self.shape.backends() {
            return Err(TopologyError::BackEndCount {
                expected: self.shape.backends(),
                actual: reachable_backends,
            });
        }
        // Sibling balance: child counts at each level differ by at most one.
        for level in 0..self.levels.len().saturating_sub(1) {
            let counts: Vec<usize> = self.levels[level]
                .iter()
                .map(|&id| self.node(id).children.len())
                .collect();
            if let (Some(&min), Some(&max)) = (counts.iter().min(), counts.iter().max()) {
                if max - min > 1 {
                    return Err(TopologyError::UnbalancedFanOut {
                        level: level as u32,
                        min_fanout: min as u32,
                        max_fanout: max as u32,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::{BglMode, Cluster};

    #[test]
    fn flat_topology_connects_every_daemon_to_the_frontend() {
        let t = Topology::build(TreeShape::flat(16));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.backends().len(), 16);
        assert_eq!(t.node(t.frontend()).children.len(), 16);
        assert_eq!(t.comm_processes().len(), 0);
        t.validate().unwrap();
    }

    #[test]
    fn two_deep_distributes_daemons_evenly() {
        let t = Topology::build(TreeShape::two_deep(100, 10));
        assert_eq!(t.depth(), 2);
        assert_eq!(t.comm_processes().len(), 10);
        for cp in t.comm_processes() {
            assert_eq!(t.node(cp).children.len(), 10);
        }
        t.validate().unwrap();
    }

    #[test]
    fn uneven_division_stays_balanced() {
        let t = Topology::build(TreeShape::two_deep(103, 10));
        let counts: Vec<usize> = t
            .comm_processes()
            .iter()
            .map(|&cp| t.node(cp).children.len())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 103);
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
        t.validate().unwrap();
    }

    #[test]
    fn three_deep_has_two_comm_levels() {
        let t = Topology::build(TreeShape::three_deep(256, 4, 16));
        assert_eq!(t.depth(), 3);
        assert_eq!(t.levels().len(), 4);
        assert_eq!(t.levels()[1].len(), 4);
        assert_eq!(t.levels()[2].len(), 16);
        assert_eq!(t.backends().len(), 256);
        t.validate().unwrap();
    }

    #[test]
    fn balanced_shape_uses_nth_root_fanout() {
        let s = TreeShape::balanced(256, 2);
        assert_eq!(s.level_widths, vec![1, 16, 256]);
        let s3 = TreeShape::balanced(512, 3);
        assert_eq!(s3.depth(), 3);
        assert!(
            s3.max_fanout() <= 9,
            "cube root of 512 is 8, fanout {}",
            s3.max_fanout()
        );
        let s1 = TreeShape::balanced(64, 1);
        assert_eq!(s1.depth(), 1);
    }

    #[test]
    fn deep_shapes_the_old_enum_could_not_express() {
        // A 5-deep tree over 4,096 daemons: impossible to name under the closed
        // Flat/TwoDeep/ThreeDeep triple, routine for a TreeShape.
        let s = TreeShape::balanced(4_096, 5);
        assert_eq!(s.depth(), 5);
        let t = Topology::build(s);
        assert_eq!(t.backends().len(), 4_096);
        t.validate().unwrap();

        let u = TreeShape::uniform(1_000, 10);
        assert_eq!(u.level_widths, vec![1, 10, 100, 1_000]);
        // Even when the level cap bites before fan_in^depth reaches the daemon
        // count, the leaf level stays pinned to the requested backend count.
        let huge = TreeShape::uniform(1_048_576, 2);
        assert_eq!(huge.backends(), 1_048_576);
        assert_eq!(huge.level_widths.len(), 16);
        let ud = TreeShape::uniform_with_depth(1_664, 4, 4);
        assert_eq!(ud.level_widths, vec![1, 4, 16, 64, 1_664]);
        Topology::build(ud).validate().unwrap();
    }

    #[test]
    fn from_level_widths_sanitises_degenerate_inputs() {
        // Root width forced to 1, zeros raised, non-monotone widths flattened.
        let s = TreeShape::from_level_widths(vec![7, 0, 4, 2, 8]);
        assert_eq!(s.level_widths, vec![1, 1, 4, 4, 8]);
        Topology::build(s).validate().unwrap();
        let empty = TreeShape::from_level_widths(Vec::new());
        assert_eq!(empty.level_widths, vec![1, 1]);
        // The leaf width is the daemon count and is authoritative: interior
        // levels wider than it clamp down rather than inflating the tree with
        // phantom backends.
        let s = TreeShape::from_level_widths(vec![1, 28, 8]);
        assert_eq!(s.level_widths, vec![1, 8, 8]);
        assert_eq!(s.backends(), 8);
        Topology::build(s).validate().unwrap();
    }

    #[test]
    fn placement_rules_match_paper_section_iii() {
        // BG/L full machine in VN mode: 1,664 daemons, 2-deep fanout capped at 28.
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let plan = machine::placement::PlacementPlan::for_job(&bgl, 212_992);
        let shape = TreeShape::for_placement(&plan, 2);
        assert_eq!(shape.level_widths, vec![1, 28, 1_664]);

        let shape3 = TreeShape::for_placement(&plan, 3);
        assert_eq!(shape3.level_widths, vec![1, 4, 24, 1_664]);

        // 4-deep: the generalised rule fits every comm level inside the same
        // 28-process login-node budget the paper's 3-deep shape exhausts.
        let shape4 = TreeShape::for_placement(&plan, 4);
        assert_eq!(shape4.depth(), 4);
        assert!(shape4.comm_processes() <= plan.comm_budget.max_processes);

        // Atlas at 512 daemons: sqrt rule, no cap.
        let atlas = Cluster::atlas();
        let plan = machine::placement::PlacementPlan::for_job(&atlas, 4_096);
        let shape = TreeShape::for_placement(&plan, 2);
        assert_eq!(shape.level_widths[1], 23);
    }

    #[test]
    fn subtree_backend_counts_sum_to_total() {
        let t = Topology::build(TreeShape::three_deep(100, 4, 16));
        let total: u32 = t
            .node(t.frontend())
            .children
            .iter()
            .map(|&c| t.subtree_backends(c))
            .sum();
        assert_eq!(total, 100);
        assert_eq!(t.subtree_backends(t.frontend()), 100);
        for &b in t.backends() {
            assert_eq!(t.subtree_backends(b), 1);
        }
    }

    #[test]
    fn degenerate_shapes_are_clamped() {
        let t = Topology::build(TreeShape::flat(0));
        assert_eq!(t.backends().len(), 1);
        let t = Topology::build(TreeShape::two_deep(4, 100));
        assert!(t.comm_processes().len() <= 4);
        t.validate().unwrap();
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(TreeShape::flat(64).label(), "1-deep");
        assert_eq!(TreeShape::two_deep(64, 8).label(), "2-deep");
        assert_eq!(TreeShape::three_deep(64, 4, 16).label(), "3-deep");
        assert_eq!(TreeShape::balanced(4_096, 5).label(), "5-deep");
    }

    #[test]
    fn validate_reports_typed_violations() {
        // Corrupt a healthy tree and check the typed variants carry the context.
        let mut t = Topology::build(TreeShape::two_deep(8, 2));
        t.nodes[3].children.push(EndpointId(1));
        assert_eq!(
            t.validate(),
            Err(TopologyError::BackEndWithChildren {
                endpoint: EndpointId(3),
                children: 1,
            })
        );

        let mut t = Topology::build(TreeShape::flat(4));
        t.nodes[2].parent = None;
        assert_eq!(
            t.validate(),
            Err(TopologyError::MissingParent {
                endpoint: EndpointId(2),
                level: 1,
            })
        );

        let mut t = Topology::build(TreeShape::two_deep(9, 3));
        // Rewire one daemon under a different comm process: siblings now have
        // child counts 2 and 4.
        let moved = t.levels[2][0];
        t.nodes[moved.0 as usize].parent = Some(EndpointId(2));
        t.nodes[1].children.retain(|&c| c != moved);
        t.nodes[2].children.push(moved);
        assert_eq!(
            t.validate(),
            Err(TopologyError::UnbalancedFanOut {
                level: 1,
                min_fanout: 2,
                max_fanout: 4,
            })
        );
    }
}
