//! Topology specification and balanced-tree construction.
//!
//! The paper tests three families of tree (Section III):
//!
//! * **1-deep (flat)** — the front end connects directly to every daemon;
//! * **2-deep** — one layer of communication processes; the fan-out from the front
//!   end is `sqrt(#daemons)`, capped at 28 on BG/L because communication processes
//!   can only live on the 14 dual-processor login nodes;
//! * **3-deep** — two layers; the front end fans out to 4 processes, the next level
//!   uses 16 or 24 processes depending on job scale.
//!
//! A [`TopologySpec`] captures the *intent* (which family, how many back-ends, what
//! caps apply); [`Topology::build`] turns it into a concrete tree with stable
//! endpoint ids, balanced so that every parent at a level has child counts differing
//! by at most one.

use machine::placement::PlacementPlan;

use crate::packet::EndpointId;

/// The topology families evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Front end directly connected to every back-end daemon ("1-deep").
    Flat,
    /// One layer of communication processes ("2-deep").
    TwoDeep,
    /// Two layers of communication processes ("3-deep").
    ThreeDeep,
}

impl TopologyKind {
    /// The series label used in the figures ("1-deep", "2-deep", "3-deep").
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Flat => "1-deep",
            TopologyKind::TwoDeep => "2-deep",
            TopologyKind::ThreeDeep => "3-deep",
        }
    }

    /// All three families, in presentation order.
    pub fn all() -> [TopologyKind; 3] {
        [
            TopologyKind::Flat,
            TopologyKind::TwoDeep,
            TopologyKind::ThreeDeep,
        ]
    }
}

/// A declarative description of a tree: the width of every level from the front end
/// (width 1) down to the back-end daemons.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologySpec {
    /// Widths of each level, root first.  `widths[0]` is always 1 (the front end) and
    /// `widths.last()` is the number of back-end daemons.
    pub level_widths: Vec<u32>,
    /// Which family this spec was derived from, for labelling.
    pub kind: TopologyKind,
}

impl TopologySpec {
    /// A flat 1-to-N topology.
    pub fn flat(backends: u32) -> Self {
        TopologySpec {
            level_widths: vec![1, backends.max(1)],
            kind: TopologyKind::Flat,
        }
    }

    /// A 2-deep topology with an explicit number of communication processes.
    pub fn two_deep(backends: u32, comm_processes: u32) -> Self {
        let backends = backends.max(1);
        let comm = comm_processes.clamp(1, backends);
        TopologySpec {
            level_widths: vec![1, comm, backends],
            kind: TopologyKind::TwoDeep,
        }
    }

    /// A 3-deep topology with explicit level widths.
    pub fn three_deep(backends: u32, first_level: u32, second_level: u32) -> Self {
        let backends = backends.max(1);
        let first = first_level.clamp(1, backends);
        let second = second_level.clamp(first, backends);
        TopologySpec {
            level_widths: vec![1, first, second, backends],
            kind: TopologyKind::ThreeDeep,
        }
    }

    /// The paper's rule for a balanced `depth`-deep tree: the maximum fan-out is the
    /// `depth`-th root of the number of daemons (Section V-A).
    pub fn balanced(backends: u32, depth: u32) -> Self {
        let backends = backends.max(1);
        let depth = depth.clamp(1, 6);
        if depth == 1 {
            return TopologySpec::flat(backends);
        }
        let fanout = (backends as f64).powf(1.0 / depth as f64).ceil().max(1.0) as u32;
        let mut widths = vec![1u32];
        let mut width = 1u64;
        for _ in 1..depth {
            width = (width * fanout as u64).min(backends as u64);
            widths.push(width as u32);
        }
        widths.push(backends);
        let kind = match depth {
            2 => TopologyKind::TwoDeep,
            _ => TopologyKind::ThreeDeep,
        };
        TopologySpec {
            level_widths: widths,
            kind,
        }
    }

    /// Build the spec the paper used for a given family on a given placement
    /// (Section III): flat for 1-deep; `min(sqrt(daemons), budget)` comm processes
    /// for 2-deep; fan-out 4 then 16/24 processes for 3-deep.
    pub fn for_placement(kind: TopologyKind, plan: &PlacementPlan) -> Self {
        match kind {
            TopologyKind::Flat => TopologySpec::flat(plan.daemons),
            TopologyKind::TwoDeep => TopologySpec::two_deep(plan.daemons, plan.two_deep_fanout()),
            TopologyKind::ThreeDeep => {
                let (first, second) = plan.three_deep_level_widths();
                TopologySpec::three_deep(plan.daemons, first, second)
            }
        }
    }

    /// Number of back-end daemons.
    pub fn backends(&self) -> u32 {
        *self.level_widths.last().expect("spec always has levels")
    }

    /// Number of communication processes (all levels between the root and the leaves).
    pub fn comm_processes(&self) -> u32 {
        if self.level_widths.len() <= 2 {
            0
        } else {
            self.level_widths[1..self.level_widths.len() - 1]
                .iter()
                .sum()
        }
    }

    /// Tree depth measured in edges from the front end to a daemon.
    pub fn depth(&self) -> u32 {
        (self.level_widths.len() - 1) as u32
    }

    /// The largest fan-out any node in the tree will have.
    pub fn max_fanout(&self) -> u32 {
        self.level_widths
            .windows(2)
            .map(|w| w[1].div_ceil(w[0]))
            .max()
            .unwrap_or(1)
    }
}

/// The role of a node in the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeNodeRole {
    /// The tool front end (tree root).
    FrontEnd,
    /// An intermediate communication process.
    CommProcess,
    /// A back-end tool daemon (tree leaf).
    BackEnd,
}

/// One node of a concrete tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeNode {
    /// Stable endpoint id (0 is always the front end).
    pub id: EndpointId,
    /// Role in the tree.
    pub role: TreeNodeRole,
    /// Level: 0 for the front end, `depth` for the daemons.
    pub level: u32,
    /// Index of this node within its level.
    pub index_in_level: u32,
    /// Parent endpoint, `None` only for the front end.
    pub parent: Option<EndpointId>,
    /// Children, in ascending id order.
    pub children: Vec<EndpointId>,
}

/// A concrete, fully wired tree.
#[derive(Clone, Debug)]
pub struct Topology {
    spec: TopologySpec,
    nodes: Vec<TreeNode>,
    levels: Vec<Vec<EndpointId>>,
}

impl Topology {
    /// Build a balanced tree from a spec.  Children are distributed contiguously so
    /// that sibling subtree sizes differ by at most one daemon.
    pub fn build(spec: TopologySpec) -> Self {
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut levels: Vec<Vec<EndpointId>> = Vec::new();
        let depth = spec.depth();
        let mut next_id = 0u32;

        for (level, &width) in spec.level_widths.iter().enumerate() {
            let mut ids = Vec::with_capacity(width as usize);
            for index in 0..width {
                let id = EndpointId(next_id);
                next_id += 1;
                let role = if level == 0 {
                    TreeNodeRole::FrontEnd
                } else if level as u32 == depth {
                    TreeNodeRole::BackEnd
                } else {
                    TreeNodeRole::CommProcess
                };
                nodes.push(TreeNode {
                    id,
                    role,
                    level: level as u32,
                    index_in_level: index,
                    parent: None,
                    children: Vec::new(),
                });
                ids.push(id);
            }
            levels.push(ids);
        }

        // Wire each level to its parent level: child i of a level of width c attaches
        // to parent floor(i * p / c) of the level above (width p).  This spreads
        // children as evenly as possible and keeps rank ranges contiguous per subtree,
        // which is what the hierarchical task-list representation relies on.
        for level in 1..levels.len() {
            let parent_width = levels[level - 1].len() as u64;
            let child_width = levels[level].len() as u64;
            for (i, &child_id) in levels[level].iter().enumerate() {
                let parent_idx = (i as u64 * parent_width) / child_width;
                let parent_id = levels[level - 1][parent_idx as usize];
                nodes[child_id.0 as usize].parent = Some(parent_id);
                nodes[parent_id.0 as usize].children.push(child_id);
            }
        }

        Topology {
            spec,
            nodes,
            levels,
        }
    }

    /// The spec the tree was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// The front end's endpoint id.
    pub fn frontend(&self) -> EndpointId {
        EndpointId(0)
    }

    /// Endpoint ids of every back-end daemon, in rank order of their level index.
    pub fn backends(&self) -> &[EndpointId] {
        self.levels.last().expect("tree always has levels")
    }

    /// Endpoint ids of every communication process.
    pub fn comm_processes(&self) -> Vec<EndpointId> {
        self.nodes
            .iter()
            .filter(|n| n.role == TreeNodeRole::CommProcess)
            .map(|n| n.id)
            .collect()
    }

    /// Node metadata.
    pub fn node(&self, id: EndpointId) -> &TreeNode {
        &self.nodes[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Endpoint ids level by level, root first.
    pub fn levels(&self) -> &[Vec<EndpointId>] {
        &self.levels
    }

    /// Tree depth in edges.
    pub fn depth(&self) -> u32 {
        self.spec.depth()
    }

    /// Total number of endpoints.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a degenerate empty tree (never produced by [`Topology::build`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The number of back-end daemons in the subtree rooted at `id`.
    pub fn subtree_backends(&self, id: EndpointId) -> u32 {
        let node = self.node(id);
        match node.role {
            TreeNodeRole::BackEnd => 1,
            _ => node
                .children
                .iter()
                .map(|&c| self.subtree_backends(c))
                .sum(),
        }
    }

    /// The largest fan-out actually present in the built tree.
    pub fn max_fanout(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Verify structural invariants; used by property tests.  Returns a description
    /// of the first violation found, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty topology".into());
        }
        if self.node(self.frontend()).parent.is_some() {
            return Err("front end has a parent".into());
        }
        let mut reachable_backends = 0u32;
        for n in &self.nodes {
            match n.role {
                TreeNodeRole::FrontEnd => {
                    if n.level != 0 {
                        return Err(format!("front end at level {}", n.level));
                    }
                }
                TreeNodeRole::CommProcess | TreeNodeRole::BackEnd => {
                    let parent = match n.parent {
                        Some(p) => p,
                        None => return Err(format!("{} has no parent", n.id)),
                    };
                    let pnode = self.node(parent);
                    if pnode.level + 1 != n.level {
                        return Err(format!(
                            "{} at level {} has parent at level {}",
                            n.id, n.level, pnode.level
                        ));
                    }
                    if !pnode.children.contains(&n.id) {
                        return Err(format!("{} missing from parent's child list", n.id));
                    }
                    if n.role == TreeNodeRole::BackEnd {
                        if !n.children.is_empty() {
                            return Err(format!("backend {} has children", n.id));
                        }
                        reachable_backends += 1;
                    }
                }
            }
        }
        if reachable_backends != self.spec.backends() {
            return Err(format!(
                "expected {} backends, found {}",
                self.spec.backends(),
                reachable_backends
            ));
        }
        // Sibling balance: child counts at each level differ by at most one.
        for level in 0..self.levels.len().saturating_sub(1) {
            let counts: Vec<usize> = self.levels[level]
                .iter()
                .map(|&id| self.node(id).children.len())
                .collect();
            if let (Some(&min), Some(&max)) = (counts.iter().min(), counts.iter().max()) {
                if max - min > 1 {
                    return Err(format!(
                        "unbalanced level {level}: child counts range {min}..{max}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::{BglMode, Cluster};

    #[test]
    fn flat_topology_connects_every_daemon_to_the_frontend() {
        let t = Topology::build(TopologySpec::flat(16));
        assert_eq!(t.depth(), 1);
        assert_eq!(t.backends().len(), 16);
        assert_eq!(t.node(t.frontend()).children.len(), 16);
        assert_eq!(t.comm_processes().len(), 0);
        t.validate().unwrap();
    }

    #[test]
    fn two_deep_distributes_daemons_evenly() {
        let t = Topology::build(TopologySpec::two_deep(100, 10));
        assert_eq!(t.depth(), 2);
        assert_eq!(t.comm_processes().len(), 10);
        for cp in t.comm_processes() {
            assert_eq!(t.node(cp).children.len(), 10);
        }
        t.validate().unwrap();
    }

    #[test]
    fn uneven_division_stays_balanced() {
        let t = Topology::build(TopologySpec::two_deep(103, 10));
        let counts: Vec<usize> = t
            .comm_processes()
            .iter()
            .map(|&cp| t.node(cp).children.len())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 103);
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
        t.validate().unwrap();
    }

    #[test]
    fn three_deep_has_two_comm_levels() {
        let t = Topology::build(TopologySpec::three_deep(256, 4, 16));
        assert_eq!(t.depth(), 3);
        assert_eq!(t.levels().len(), 4);
        assert_eq!(t.levels()[1].len(), 4);
        assert_eq!(t.levels()[2].len(), 16);
        assert_eq!(t.backends().len(), 256);
        t.validate().unwrap();
    }

    #[test]
    fn balanced_spec_uses_nth_root_fanout() {
        let s = TopologySpec::balanced(256, 2);
        assert_eq!(s.level_widths, vec![1, 16, 256]);
        let s3 = TopologySpec::balanced(512, 3);
        assert_eq!(s3.depth(), 3);
        assert!(
            s3.max_fanout() <= 9,
            "cube root of 512 is 8, fanout {}",
            s3.max_fanout()
        );
        let s1 = TopologySpec::balanced(64, 1);
        assert_eq!(s1.kind, TopologyKind::Flat);
    }

    #[test]
    fn placement_rules_match_paper_section_iii() {
        // BG/L full machine in VN mode: 1,664 daemons, 2-deep fanout capped at 28.
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let plan = machine::placement::PlacementPlan::for_job(&bgl, 212_992);
        let spec = TopologySpec::for_placement(TopologyKind::TwoDeep, &plan);
        assert_eq!(spec.level_widths, vec![1, 28, 1_664]);

        let spec3 = TopologySpec::for_placement(TopologyKind::ThreeDeep, &plan);
        assert_eq!(spec3.level_widths, vec![1, 4, 24, 1_664]);

        // Atlas at 512 daemons: sqrt rule, no cap.
        let atlas = Cluster::atlas();
        let plan = machine::placement::PlacementPlan::for_job(&atlas, 4_096);
        let spec = TopologySpec::for_placement(TopologyKind::TwoDeep, &plan);
        assert_eq!(spec.level_widths[1], 23);
    }

    #[test]
    fn subtree_backend_counts_sum_to_total() {
        let t = Topology::build(TopologySpec::three_deep(100, 4, 16));
        let total: u32 = t
            .node(t.frontend())
            .children
            .iter()
            .map(|&c| t.subtree_backends(c))
            .sum();
        assert_eq!(total, 100);
        assert_eq!(t.subtree_backends(t.frontend()), 100);
        for &b in t.backends() {
            assert_eq!(t.subtree_backends(b), 1);
        }
    }

    #[test]
    fn degenerate_specs_are_clamped() {
        let t = Topology::build(TopologySpec::flat(0));
        assert_eq!(t.backends().len(), 1);
        let t = Topology::build(TopologySpec::two_deep(4, 100));
        assert!(t.comm_processes().len() <= 4);
        t.validate().unwrap();
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(TopologyKind::Flat.label(), "1-deep");
        assert_eq!(TopologyKind::TwoDeep.label(), "2-deep");
        assert_eq!(TopologyKind::ThreeDeep.label(), "3-deep");
    }
}
