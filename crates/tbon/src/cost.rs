//! Analytic cost model for tree reductions and broadcasts.
//!
//! The merge-time figures (4, 5 and 7) are fundamentally about *how many bytes pass
//! through which node*.  With the original representation every edge label is a bit
//! vector sized for the whole job, so packet sizes grow linearly with the total task
//! count no matter where a node sits in the tree — and the tree's logarithmic depth
//! cannot save the front end (or the I/O nodes) from linear data growth.  With the
//! hierarchical representation a node's packet only describes the tasks in its own
//! subtree, so per-node data volume is bounded by subtree size and the critical path
//! really is logarithmic.
//!
//! [`ReductionCostModel`] turns a topology, an interconnect and a caller-supplied
//! "how many bytes does this node emit" function into a critical-path estimate:
//!
//! * every internal node must receive one packet from each child over its incoming
//!   link (fan-in serialises at the receiving NIC),
//! * then run its filter, whose cost is affine in the bytes received,
//! * nodes at the same level proceed in parallel,
//! * and the critical path is the sum over levels of the slowest node at that level.
//!
//! The same structure gives a downward [`broadcast`](ReductionCostModel::broadcast)
//! estimate used by the SBRS model.

use machine::network::{Interconnect, LinkClass};
use simkit::time::SimDuration;

use crate::packet::EndpointId;
use crate::topology::{Topology, TreeNodeRole};

/// Inputs that rarely change between evaluations: where the tree runs and how fast
/// its hosts and links are.
#[derive(Clone, Debug)]
pub struct ReductionCostModel<'a> {
    /// The tree being evaluated.
    pub topology: &'a Topology,
    /// The machine's interconnect.
    pub interconnect: &'a Interconnect,
    /// Link class used by leaf daemons to reach their parents.
    pub daemon_uplink: LinkClass,
    /// Link class used between communication processes and the front end.
    pub upper_link: LinkClass,
    /// Filter compute cost per byte of input, on a 2.4 GHz reference core.
    pub filter_secs_per_byte: f64,
    /// Fixed filter invocation overhead, on a reference core.
    pub filter_base: SimDuration,
    /// Slowdown factor of the hosts running communication processes / the front end.
    pub comm_host_slowdown: f64,
    /// Slowdown factor of the hosts running the leaf daemons (used for their send-side
    /// packing cost).
    pub daemon_host_slowdown: f64,
}

/// The result of evaluating a reduction.
#[derive(Clone, Debug)]
pub struct ReductionCost {
    /// End-to-end critical-path time from "all daemons have their local result" to
    /// "the front end holds the merged result".
    pub critical_path: SimDuration,
    /// Time attributed to each internal level, root level first.
    pub per_level: Vec<SimDuration>,
    /// Bytes arriving at the front end.
    pub frontend_bytes_in: u64,
    /// Largest number of bytes received by any single node.
    pub max_node_bytes_in: u64,
    /// Total bytes crossing links (each packet counted once per hop).
    pub total_link_bytes: u64,
}

impl<'a> ReductionCostModel<'a> {
    /// A model with the filter constants used throughout the STAT reproduction and
    /// link classes appropriate for the given interconnect.
    pub fn standard(
        topology: &'a Topology,
        interconnect: &'a Interconnect,
        comm_host_slowdown: f64,
        daemon_host_slowdown: f64,
    ) -> Self {
        ReductionCostModel {
            topology,
            interconnect,
            daemon_uplink: interconnect.daemon_uplink(),
            upper_link: interconnect.frontend_uplink(),
            // Merging serialised prefix trees costs on the order of a few ns per byte
            // of input on a 2008-era reference core: the filter walks both inputs once.
            filter_secs_per_byte: 6.0e-9,
            filter_base: SimDuration::from_micros(150.0),
            comm_host_slowdown,
            daemon_host_slowdown,
        }
    }

    /// Evaluate an upward reduction where node `id`, whose subtree contains
    /// `subtree_backends` daemons, emits `packet_bytes(id, subtree_backends)` bytes.
    ///
    /// Any [`TreeShape`](crate::topology::TreeShape) can be priced, including
    /// depths the paper never measured.  Here a depth-4 tree — inexpressible under
    /// the old closed `Flat`/`TwoDeep`/`ThreeDeep` enum — beats the flat tree at
    /// 4,096 daemons, because the fan-in serialising at the front end's NIC is 8
    /// instead of 4,096:
    ///
    /// ```
    /// use machine::network::Interconnect;
    /// use tbon::cost::ReductionCostModel;
    /// use tbon::topology::{Topology, TreeShape};
    ///
    /// let net = Interconnect::atlas();
    /// // Four levels of fan-out 8: 1 -> 8 -> 64 -> 512 -> 4,096.
    /// let deep = Topology::build(TreeShape::uniform_with_depth(4_096, 8, 4));
    /// assert_eq!(deep.shape().level_widths, vec![1, 8, 64, 512, 4_096]);
    /// let flat = Topology::build(TreeShape::flat(4_096));
    ///
    /// // Merged prefix trees stay roughly constant-size however many daemons fed
    /// // them, so every node emits one 4 KiB packet regardless of its subtree.
    /// let payload = |_id, _subtree: u32| 4_096u64;
    /// let deep_cost = ReductionCostModel::standard(&deep, &net, 1.0, 1.0).reduce(&payload);
    /// let flat_cost = ReductionCostModel::standard(&flat, &net, 1.0, 1.0).reduce(&payload);
    ///
    /// assert!(deep_cost.critical_path < flat_cost.critical_path);
    /// // One per-level time per internal level of the deep tree.
    /// assert_eq!(deep_cost.per_level.len(), 4);
    /// ```
    pub fn reduce(&self, packet_bytes: &dyn Fn(EndpointId, u32) -> u64) -> ReductionCost {
        let topo = self.topology;
        let n = topo.len();

        // Bytes each node sends to its parent.
        let mut bytes_out = vec![0u64; n];
        for node in topo.nodes() {
            let subtree = topo.subtree_backends(node.id);
            bytes_out[node.id.0 as usize] = packet_bytes(node.id, subtree);
        }

        let mut per_level = Vec::new();
        let mut frontend_bytes_in = 0u64;
        let mut max_node_bytes_in = 0u64;
        let mut total_link_bytes = 0u64;

        let levels = topo.levels();
        // Internal levels, processed leaf-most first; reported root-first at the end.
        let mut level_times_bottom_up = Vec::new();
        for level in (0..levels.len().saturating_sub(1)).rev() {
            let mut worst = SimDuration::ZERO;
            for &id in &levels[level] {
                let node = topo.node(id);
                if node.role == TreeNodeRole::BackEnd {
                    continue;
                }
                let mut bytes_in = 0u64;
                let mut recv = SimDuration::ZERO;
                for &child in &node.children {
                    let child_role = topo.node(child).role;
                    let link = if child_role == TreeNodeRole::BackEnd {
                        self.daemon_uplink
                    } else {
                        self.upper_link
                    };
                    let child_bytes = bytes_out[child.0 as usize];
                    bytes_in += child_bytes;
                    recv += self.interconnect.transfer(link, child_bytes);
                    // Sender-side packing cost on the child's host.
                    let pack_slowdown = if child_role == TreeNodeRole::BackEnd {
                        self.daemon_host_slowdown
                    } else {
                        self.comm_host_slowdown
                    };
                    recv += SimDuration::from_secs(child_bytes as f64 * 0.5e-9 * pack_slowdown);
                }
                total_link_bytes += bytes_in;
                max_node_bytes_in = max_node_bytes_in.max(bytes_in);
                if id == topo.frontend() {
                    frontend_bytes_in = bytes_in;
                }
                let filter = (self.filter_base
                    + SimDuration::from_secs(bytes_in as f64 * self.filter_secs_per_byte))
                .mul_f64(self.comm_host_slowdown);
                let node_time = recv + filter;
                worst = worst.max(node_time);
            }
            level_times_bottom_up.push(worst);
        }

        let critical_path = level_times_bottom_up.iter().copied().sum();
        level_times_bottom_up.reverse();
        per_level.extend(level_times_bottom_up);

        ReductionCost {
            critical_path,
            per_level,
            frontend_bytes_in,
            max_node_bytes_in,
            total_link_bytes,
        }
    }

    /// Evaluate a downward broadcast of `bytes` from the front end to every daemon,
    /// where each parent sends to its children one after another (store-and-forward
    /// per level, pipelined across levels only at message granularity).  This is the
    /// communication pattern SBRS uses to push relocated binaries.
    pub fn broadcast(&self, bytes: u64) -> SimDuration {
        let topo = self.topology;
        let mut total = SimDuration::ZERO;
        for level_nodes in topo.levels().iter().take(topo.levels().len() - 1) {
            let mut worst = SimDuration::ZERO;
            for &id in level_nodes {
                let node = topo.node(id);
                let mut send = SimDuration::ZERO;
                for &child in &node.children {
                    let link = if topo.node(child).role == TreeNodeRole::BackEnd {
                        self.daemon_uplink
                    } else {
                        self.upper_link
                    };
                    send += self.interconnect.transfer(link, bytes);
                }
                worst = worst.max(send);
            }
            total += worst;
        }
        total
    }
}

// ---------------------------------------------------------------------------
// Wire-format v2 packet arithmetic
// ---------------------------------------------------------------------------
//
// The estimator and planner closures price packets with the same arithmetic
// the v2 encoder uses, so the cost model's byte terms are fed by real encoded
// sizes rather than string-era estimates.  `stat_core::serialize` pins these
// helpers against the actual encoder in its tests.

/// Bytes an LEB128 varint takes to encode `value` (1 for values below 128,
/// up to 10 for the full 64-bit range).
pub fn varint_len(value: u64) -> u64 {
    u64::from((64 - value.leading_zeros()).max(1).div_ceil(7))
}

/// Per-node framing overhead of a v2 tree record: the parent-delta varint and
/// the global frame-id varint.  Both are one byte for small trees; the model
/// prices two bytes each so deep trees and incremental frame ids stay covered.
pub const V2_NODE_OVERHEAD: u64 = 4;

/// Bytes one node of a *dense* (job-wide) v2 task set costs when `member_tasks`
/// of `total_tasks` are present: occupied words ship as up-to-10-byte varints,
/// every empty word still costs one byte.  Linear in the job by design — this
/// is the Section V scaling problem the dense representation demonstrates.
pub fn dense_node_bytes(total_tasks: u64, member_tasks: u64) -> u64 {
    let words = total_tasks.div_ceil(64);
    let occupied = member_tasks.div_ceil(64).min(words);
    V2_NODE_OVERHEAD + occupied * 10 + (words - occupied)
}

/// Worst-case bytes one node of a *subtree* (hierarchical) v2 task set costs
/// for a subtree of `subtree_tasks`: one literal-run token plus the raw words.
/// Saturated sets run-length collapse far below this, so it is a safe upper
/// bound for planning.
pub fn subtree_node_bytes(subtree_tasks: u64) -> u64 {
    let words = subtree_tasks.div_ceil(64);
    V2_NODE_OVERHEAD + varint_len((words << 2) | 2) + words * 8
}

/// Payload model for a merged prefix tree whose *class population saturates*.
///
/// The planner's default payload grows with the subtree's task count forever:
/// every extra task adds bit-vector bytes on every tree edge.  That is correct
/// for pathological workloads where every rank is in its own equivalence class,
/// but the paper's whole point (Section V) is that real jobs collapse into a
/// handful of classes — once a subtree already contains one representative of
/// every class, merging more tasks adds *membership bits*, not new edges or
/// frame names.  Past the saturation point, per-node payloads stop growing
/// with subtree size and deeper trees stop paying a depth penalty for their
/// smaller subtrees: the depth crossover the flat-payload model hides past
/// 16M cores becomes visible.
///
/// ```
/// use tbon::cost::ClassSaturatedPayload;
///
/// let payload = ClassSaturatedPayload {
///     tree_edges: 24,
///     frame_names_bytes: 420,
///     tasks: 64 << 20,          // a 67M-task job
///     tasks_per_daemon: 64,
///     saturation_tasks: 1 << 20, // classes saturate by 1M tasks
/// };
/// // A subtree far past saturation costs the same as one at saturation...
/// assert_eq!(payload.bytes(1 << 18), payload.bytes(1 << 20));
/// // ...while a small subtree still pays proportionally to its own tasks.
/// assert!(payload.bytes(16) < payload.bytes(1 << 18));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassSaturatedPayload {
    /// Edges in the serialised 2D prefix tree.
    pub tree_edges: u64,
    /// Bytes of frame-name data shipped once per packet — under wire format v2,
    /// the incremental dictionary records for frames negotiation did not seed.
    pub frame_names_bytes: u64,
    /// Total tasks in the job (caps the subtree population).
    pub tasks: u64,
    /// Tasks represented by each leaf daemon.
    pub tasks_per_daemon: u64,
    /// Task count past which the class population stops growing: subtrees
    /// holding more tasks than this emit packets no larger than a subtree at
    /// exactly the saturation point.
    pub saturation_tasks: u64,
}

impl ClassSaturatedPayload {
    /// Packet bytes emitted by a node whose subtree holds `subtree_backends`
    /// leaf daemons: per-edge v2 task-set records sized by the *saturated*
    /// subtree task count ([`subtree_node_bytes`]), plus the incremental
    /// dictionary records.
    pub fn bytes(&self, subtree_backends: u32) -> u64 {
        let subtree_tasks = (subtree_backends as u64 * self.tasks_per_daemon).min(self.tasks);
        let saturated = subtree_tasks.min(self.saturation_tasks);
        self.tree_edges * subtree_node_bytes(saturated) + self.frame_names_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TreeShape;
    use machine::cluster::Cluster;

    fn model<'a>(topo: &'a Topology, net: &'a Interconnect) -> ReductionCostModel<'a> {
        ReductionCostModel::standard(topo, net, 1.0, 1.0)
    }

    #[test]
    fn constant_payloads_favor_deeper_trees_at_scale() {
        let net = Interconnect::atlas();
        let per_leaf = |_: EndpointId, _subtree: u32| 64 * 1024u64;

        let flat = Topology::build(TreeShape::flat(512));
        let deep = Topology::build(TreeShape::two_deep(512, 23));
        let flat_cost = model(&flat, &net).reduce(&per_leaf);
        let deep_cost = model(&deep, &net).reduce(&per_leaf);
        // The flat front end absorbs 512 packets serially; the 2-deep tree spreads the
        // fan-in across 23 comm processes working in parallel.
        assert!(flat_cost.critical_path > deep_cost.critical_path);
        assert_eq!(flat_cost.frontend_bytes_in, 512 * 64 * 1024);
        assert_eq!(deep_cost.frontend_bytes_in, 23 * 64 * 1024);
    }

    #[test]
    fn global_vs_subtree_payloads_change_the_scaling_shape() {
        // This is the Section V mechanism in miniature: with payloads proportional to
        // the *whole job*, doubling the job doubles the merge time even on a 2-deep
        // tree; with payloads proportional to the subtree, the critical path grows far
        // more slowly.
        let net = Interconnect::bluegene_l();
        let bytes_per_task = 32u64;

        let time_for = |daemons: u32, global: bool| {
            let plan_tasks = daemons as u64 * 64;
            let topo = Topology::build(TreeShape::two_deep(daemons, 28));
            let m = model(&topo, &net);
            let cost = m.reduce(&|_id, subtree| {
                if global {
                    bytes_per_task * plan_tasks
                } else {
                    bytes_per_task * subtree as u64 * 64
                }
            });
            cost.critical_path.as_secs()
        };

        let global_growth = time_for(1024, true) / time_for(128, true);
        let hier_growth = time_for(1024, false) / time_for(128, false);
        assert!(
            global_growth > 6.0,
            "global bit vectors should scale ~linearly, growth={global_growth}"
        );
        assert!(
            hier_growth < global_growth / 1.5,
            "hierarchical payloads should scale much better: {hier_growth} vs {global_growth}"
        );
    }

    #[test]
    fn per_level_times_sum_to_critical_path() {
        let net = Interconnect::atlas();
        let topo = Topology::build(TreeShape::three_deep(128, 4, 16));
        let cost = model(&topo, &net).reduce(&|_, subtree| subtree as u64 * 100);
        let sum: SimDuration = cost.per_level.iter().copied().sum();
        assert_eq!(sum, cost.critical_path);
        assert_eq!(cost.per_level.len(), 3);
    }

    #[test]
    fn slower_hosts_increase_filter_time() {
        let net = Interconnect::bluegene_l();
        let topo = Topology::build(TreeShape::two_deep(256, 16));
        let fast =
            ReductionCostModel::standard(&topo, &net, 1.0, 1.0).reduce(&|_, s| s as u64 * 1_000);
        let slow =
            ReductionCostModel::standard(&topo, &net, 3.4, 3.4).reduce(&|_, s| s as u64 * 1_000);
        assert!(slow.critical_path > fast.critical_path);
    }

    #[test]
    fn broadcast_grows_with_fanout_and_depth() {
        // Use the BG/L interconnect, whose daemon uplink and inter-process links have
        // comparable bandwidth, so the comparison isolates the fan-out structure.
        let net = Interconnect::bluegene_l();
        let flat = Topology::build(TreeShape::flat(128));
        let deep = Topology::build(TreeShape::two_deep(128, 12));
        let four_mb = 4 << 20;
        let flat_b = model(&flat, &net).broadcast(four_mb);
        let deep_b = model(&deep, &net).broadcast(four_mb);
        // Flat: the front end pushes 128 copies serially.  2-deep: 12 copies from the
        // front end, then ~11 per comm process in parallel.
        assert!(flat_b > deep_b);
    }

    #[test]
    fn v2_packet_arithmetic_matches_the_wire_format() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
        // A dense node pays for every word of the job: one byte per empty word,
        // up to ten per occupied word.
        assert_eq!(
            dense_node_bytes(8_192, 128),
            V2_NODE_OVERHEAD + 2 * 10 + 126
        );
        // A subtree node only pays for its own tasks.
        assert!(subtree_node_bytes(128) < dense_node_bytes(8_192, 128) / 5);
        // Both grow monotonically with what they must describe.
        assert!(dense_node_bytes(8_192, 512) > dense_node_bytes(8_192, 64));
        assert!(subtree_node_bytes(4_096) > subtree_node_bytes(64));
    }

    #[test]
    fn saturated_payloads_flatten_past_the_knee() {
        let p = ClassSaturatedPayload {
            tree_edges: 24,
            frame_names_bytes: 420,
            tasks: 1 << 26,
            tasks_per_daemon: 64,
            saturation_tasks: 1 << 20,
        };
        // Below the knee the payload tracks the subtree linearly...
        assert!(p.bytes(64) < p.bytes(512));
        assert!(p.bytes(512) < p.bytes(4_096));
        // ...and above it every subtree emits the same saturated packet.
        let at_knee = p.bytes((1 << 20) / 64);
        assert_eq!(p.bytes(1 << 18), at_knee);
        assert_eq!(p.bytes(1 << 20), at_knee);
        // The job-size cap still applies when saturation exceeds the job.
        let small = ClassSaturatedPayload {
            saturation_tasks: u64::MAX,
            tasks: 1_024,
            ..p
        };
        assert_eq!(small.bytes(1 << 18), small.bytes(16));
    }

    #[test]
    fn saturation_reveals_the_depth_crossover() {
        // Under the unsaturated model the flat tree's frontend fan-in is painful
        // but its single level keeps the critical path competitive at moderate
        // scale; under saturation constant-size packets make fan-in the whole
        // story and depth wins decisively — the cost.rs doctest physics.
        let net = Interconnect::bluegene_l();
        let daemons = 8_192u32;
        let p = ClassSaturatedPayload {
            tree_edges: 24,
            frame_names_bytes: 420,
            tasks: daemons as u64 * 128,
            tasks_per_daemon: 128,
            saturation_tasks: 4_096,
        };
        let shallow = Topology::build(TreeShape::two_deep(daemons, 64));
        let deep = Topology::build(TreeShape::uniform_with_depth(daemons, 10, 4));
        let shallow_cost = model(&shallow, &net).reduce(&|_, s| p.bytes(s));
        let deep_cost = model(&deep, &net).reduce(&|_, s| p.bytes(s));
        assert!(deep_cost.critical_path < shallow_cost.critical_path);
    }

    #[test]
    fn standard_model_uses_machine_appropriate_links() {
        let bgl = Cluster::bluegene_l(machine::cluster::BglMode::CoProcessor);
        let topo = Topology::build(TreeShape::two_deep(64, 8));
        let m = ReductionCostModel::standard(
            &topo,
            &bgl.interconnect,
            bgl.login_host_slowdown(),
            bgl.daemon_host_slowdown(),
        );
        assert_eq!(m.daemon_uplink, LinkClass::BglFunctional);
    }
}
