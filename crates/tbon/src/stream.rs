//! Streams: multicast/gather sessions over the tree.
//!
//! MRNet organises communication into *streams*: a stream names a set of back-ends,
//! a downward path to broadcast requests to them, and an upward path whose packets
//! pass through a filter.  STAT uses a handful of streams per session (attach,
//! sample, merge-2D, merge-3D, detach).  This module adds the downward half — which
//! the reduction-only [`crate::network`] does not need — plus per-stream accounting,
//! so sessions can be expressed as "broadcast this request, then reduce the replies".

use std::collections::BTreeSet;

use crate::packet::{EndpointId, Packet, PacketTag};
use crate::topology::{Topology, TreeNodeRole};

/// A stream: a named subset of back-ends plus accounting for traffic on it.
#[derive(Clone, Debug)]
pub struct Stream {
    /// Stream identifier (unique within a session).
    pub id: u32,
    /// The back-ends participating in this stream, in backend order.
    members: Vec<EndpointId>,
    /// Packets broadcast downward on this stream.
    broadcasts: u64,
    /// Bytes broadcast downward (payload bytes × receiving back-ends).
    broadcast_bytes: u64,
}

impl Stream {
    /// Number of participating back-ends.
    pub fn members(&self) -> &[EndpointId] {
        &self.members
    }

    /// Packets broadcast so far.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Total downward payload bytes delivered (payload size × member count).
    pub fn broadcast_bytes(&self) -> u64 {
        self.broadcast_bytes
    }
}

/// The hops a downward broadcast traverses, for cost accounting: one entry per tree
/// edge the packet crosses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastRoute {
    /// (parent, child) pairs, in top-down order.
    pub hops: Vec<(EndpointId, EndpointId)>,
    /// Back-ends that received the packet.
    pub delivered_to: Vec<EndpointId>,
}

/// A stream manager bound to a topology.
#[derive(Clone, Debug)]
pub struct StreamManager {
    topology: Topology,
    streams: Vec<Stream>,
}

impl StreamManager {
    /// A manager with no streams yet.
    pub fn new(topology: Topology) -> Self {
        StreamManager {
            topology,
            streams: Vec::new(),
        }
    }

    /// The topology streams are routed over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Open a stream over every back-end (the stream STAT uses for whole-job
    /// operations).
    pub fn open_broadcast_stream(&mut self) -> u32 {
        let members = self.topology.backends().to_vec();
        self.open_stream(members)
    }

    /// Open a stream over an explicit set of back-ends (STAT's "focus on these
    /// equivalence-class representatives" mode).  Unknown endpoints and non-backends
    /// are ignored.
    pub fn open_stream(&mut self, members: Vec<EndpointId>) -> u32 {
        let valid: BTreeSet<EndpointId> = self.topology.backends().iter().copied().collect();
        let members: Vec<EndpointId> = members.into_iter().filter(|m| valid.contains(m)).collect();
        let id = self.streams.len() as u32;
        self.streams.push(Stream {
            id,
            members,
            broadcasts: 0,
            broadcast_bytes: 0,
        });
        id
    }

    /// Look up a stream.
    pub fn stream(&self, id: u32) -> Option<&Stream> {
        self.streams.get(id as usize)
    }

    /// Broadcast a packet downward on a stream, returning the route it took.
    ///
    /// The route only includes edges that lead to at least one member back-end, so a
    /// stream over a small subset of daemons does not touch the rest of the tree —
    /// this is what makes "attach a heavyweight debugger to three representatives"
    /// cheap even on a 1,664-daemon tree.
    pub fn broadcast(&mut self, id: u32, tag: PacketTag, payload_bytes: usize) -> BroadcastRoute {
        let members: BTreeSet<EndpointId> = match self.streams.get(id as usize) {
            Some(s) => s.members.iter().copied().collect(),
            None => BTreeSet::new(),
        };
        let mut hops = Vec::new();
        let mut delivered = Vec::new();
        if !members.is_empty() {
            self.route(
                self.topology.frontend(),
                &members,
                &mut hops,
                &mut delivered,
            );
        }
        if let Some(stream) = self.streams.get_mut(id as usize) {
            stream.broadcasts += 1;
            stream.broadcast_bytes += payload_bytes as u64 * delivered.len() as u64;
        }
        let _ = tag;
        BroadcastRoute {
            hops,
            delivered_to: delivered,
        }
    }

    fn route(
        &self,
        node: EndpointId,
        members: &BTreeSet<EndpointId>,
        hops: &mut Vec<(EndpointId, EndpointId)>,
        delivered: &mut Vec<EndpointId>,
    ) {
        for &child in &self.topology.node(node).children {
            let child_node = self.topology.node(child);
            let reaches_member = match child_node.role {
                TreeNodeRole::BackEnd => members.contains(&child),
                _ => self.subtree_has_member(child, members),
            };
            if !reaches_member {
                continue;
            }
            hops.push((node, child));
            if child_node.role == TreeNodeRole::BackEnd {
                delivered.push(child);
            } else {
                self.route(child, members, hops, delivered);
            }
        }
    }

    fn subtree_has_member(&self, node: EndpointId, members: &BTreeSet<EndpointId>) -> bool {
        let n = self.topology.node(node);
        if n.role == TreeNodeRole::BackEnd {
            return members.contains(&node);
        }
        n.children
            .iter()
            .any(|&c| self.subtree_has_member(c, members))
    }

    /// Build the control packet a broadcast would carry (helper for sessions that
    /// also want to hand the packet to the cost model).
    pub fn control_packet(&self, tag: PacketTag) -> Packet {
        Packet::control(tag, self.topology.frontend())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TreeShape;

    fn manager(backends: u32, comm: u32) -> StreamManager {
        StreamManager::new(Topology::build(TreeShape::two_deep(backends, comm)))
    }

    #[test]
    fn whole_job_broadcast_reaches_every_backend() {
        let mut mgr = manager(64, 8);
        let stream = mgr.open_broadcast_stream();
        let route = mgr.broadcast(stream, PacketTag::SampleTraces, 16);
        assert_eq!(route.delivered_to.len(), 64);
        // 8 frontend→comm hops + 64 comm→daemon hops.
        assert_eq!(route.hops.len(), 8 + 64);
        assert_eq!(mgr.stream(stream).unwrap().broadcasts(), 1);
        assert_eq!(mgr.stream(stream).unwrap().broadcast_bytes(), 16 * 64);
    }

    #[test]
    fn subset_streams_only_touch_their_subtrees() {
        let mut mgr = manager(64, 8);
        let backends = mgr.topology().backends().to_vec();
        // Three representatives, all under the first two comm processes.
        let members = vec![backends[0], backends[1], backends[9]];
        let stream = mgr.open_stream(members.clone());
        let route = mgr.broadcast(stream, PacketTag::Attach, 8);
        assert_eq!(route.delivered_to, members);
        // Only 2 of the 8 comm processes are on the route.
        let comm_hops = route
            .hops
            .iter()
            .filter(|(parent, _)| *parent == mgr.topology().frontend())
            .count();
        assert_eq!(comm_hops, 2);
    }

    #[test]
    fn unknown_members_are_ignored() {
        let mut mgr = manager(8, 2);
        let stream = mgr.open_stream(vec![EndpointId(0), EndpointId(9_999)]);
        // EndpointId(0) is the front end, not a backend, so the stream is empty.
        assert!(mgr.stream(stream).unwrap().members().is_empty());
        let route = mgr.broadcast(stream, PacketTag::Detach, 4);
        assert!(route.delivered_to.is_empty());
        assert!(route.hops.is_empty());
    }

    #[test]
    fn broadcasting_on_a_missing_stream_is_a_noop() {
        let mut mgr = manager(8, 2);
        let route = mgr.broadcast(42, PacketTag::Detach, 4);
        assert!(route.delivered_to.is_empty());
    }
}
