//! Filters: the aggregation plug-ins that run at every tree node.
//!
//! MRNet's defining feature is that data reduction happens *inside the network*: each
//! communication process runs a filter over the packets arriving from its children and
//! forwards a single packet to its parent.  STAT's contribution is precisely such a
//! filter — one that merges serialised call-graph prefix trees — but the TBON itself
//! only needs the narrow interface defined here.
//!
//! Filters operate in *wait-for-all* synchronisation mode, the mode STAT uses: a node
//! buffers packets until one has arrived from every child, then invokes the filter
//! once over the whole wave.  (MRNet also offers timeout and "don't wait" modes, which
//! STAT does not use; we model only what the paper exercises.)

use crate::packet::{EndpointId, Packet, PacketTag};

/// A reduction filter.
///
/// Implementations must be `Send + Sync` because the in-process network runs one
/// filter instance concurrently across tree nodes (each invocation gets its own
/// input wave; filters should be stateless or internally synchronised).
pub trait Filter: Send + Sync {
    /// Reduce one wave of child packets into a single output packet.
    ///
    /// `node` identifies the tree node performing the reduction (useful for
    /// diagnostics), and `inputs` holds exactly one packet per child, in child order.
    fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet;

    /// A human-readable name for reports.
    fn name(&self) -> &'static str {
        "filter"
    }
}

/// A filter that simply concatenates payloads — the "no aggregation" baseline.
/// With this filter the front end receives every byte every daemon produced, which is
/// exactly the behaviour hierarchical tools are trying to avoid.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityFilter;

impl Filter for IdentityFilter {
    fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet {
        let tag = inputs
            .first()
            .map(|p| p.tag)
            .unwrap_or(PacketTag::Custom(0));
        let total: usize = inputs.iter().map(|p| p.payload.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for p in inputs {
            buf.extend_from_slice(&p.payload);
        }
        Packet::new(tag, node, buf)
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// A filter that treats every payload as a little-endian `u64` and sums them.
/// Used by tests and by the launcher model to count connected daemons.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumFilter;

impl SumFilter {
    /// Encode a value for transport through the filter.
    pub fn encode(value: u64) -> Vec<u8> {
        value.to_le_bytes().to_vec()
    }

    /// Decode a value from a reduced packet.
    pub fn decode(packet: &Packet) -> u64 {
        let mut bytes = [0u8; 8];
        let n = packet.payload.len().min(8);
        bytes[..n].copy_from_slice(&packet.payload[..n]);
        u64::from_le_bytes(bytes)
    }
}

impl Filter for SumFilter {
    fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet {
        let tag = inputs
            .first()
            .map(|p| p.tag)
            .unwrap_or(PacketTag::Custom(0));
        let sum: u64 = inputs.iter().map(SumFilter::decode).sum();
        Packet::new(tag, node, SumFilter::encode(sum))
    }

    fn name(&self) -> &'static str {
        "sum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: u32, payload: Vec<u8>) -> Packet {
        Packet::new(PacketTag::Custom(1), EndpointId(src), payload)
    }

    #[test]
    fn identity_concatenates_in_child_order() {
        let f = IdentityFilter;
        let out = f.reduce(
            EndpointId(0),
            &[pkt(1, vec![1, 2]), pkt(2, vec![3]), pkt(3, vec![4, 5])],
        );
        assert_eq!(&out.payload[..], &[1, 2, 3, 4, 5]);
        assert_eq!(out.source, EndpointId(0));
    }

    #[test]
    fn identity_of_empty_wave_is_empty() {
        let out = IdentityFilter.reduce(EndpointId(0), &[]);
        assert_eq!(out.size_bytes(), 0);
    }

    #[test]
    fn sum_filter_adds_values() {
        let f = SumFilter;
        let out = f.reduce(
            EndpointId(0),
            &[
                pkt(1, SumFilter::encode(10)),
                pkt(2, SumFilter::encode(32)),
                pkt(3, SumFilter::encode(0)),
            ],
        );
        assert_eq!(SumFilter::decode(&out), 42);
    }

    #[test]
    fn sum_filter_tolerates_short_payloads() {
        let out = SumFilter.reduce(EndpointId(0), &[pkt(1, vec![5])]);
        assert_eq!(SumFilter::decode(&out), 5);
    }

    #[test]
    fn filter_names() {
        assert_eq!(IdentityFilter.name(), "identity");
        assert_eq!(SumFilter.name(), "sum");
    }
}
