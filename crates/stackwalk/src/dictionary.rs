//! The session-global frame dictionary behind wire format v2.
//!
//! Version 1 of the wire format shipped every frame name as a length-prefixed
//! string in every packet: daemons did not share an interning order, so ids were
//! packet-local and the name table travelled with each tree.  At 208K endpoints
//! that is exactly the kind of per-packet redundancy the paper's Section V
//! argues a scalable tool cannot afford — and the fixed-width length prefix it
//! required is where the `as u16` truncation bug lived.
//!
//! [`FrameDictionary`] replaces that with one u32 id space per session:
//!
//! * at `Session::attach` / `StreamingSession::open` the front end *negotiates*
//!   the dictionary — it seeds the table with the frame names the application's
//!   runtime is expected to produce ([`negotiate`](FrameDictionary::negotiate))
//!   and broadcasts that base table down the overlay once;
//! * daemons intern against the shared table while encoding
//!   ([`intern`](FrameDictionary::intern)); a frame the negotiation did not
//!   anticipate gets an id past [`base_len`](FrameDictionary::base_len) and its
//!   name ships exactly once per packet as an *incremental dictionary record*;
//! * merge filters never look names up at all — with a session-global id space,
//!   comparing two frames is integer equality on ids.
//!
//! The handle is cheap to clone (all clones share one table) and callable from
//! every daemon thread; a poisoned lock is recovered rather than propagated,
//! because the table is append-only and never observed mid-update.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::frame::{FrameId, FrameTable};

#[derive(Debug, Default)]
struct DictionaryInner {
    names: Vec<String>,
    index: HashMap<String, u32>,
    base_len: u32,
}

/// A shared, session-global frame interner with a negotiated base table.
///
/// Ids below [`base_len`](Self::base_len) were agreed at session setup and need
/// never travel again; ids at or above it are incremental and ship their name
/// once per referencing packet.
#[derive(Clone, Debug, Default)]
pub struct FrameDictionary {
    inner: Arc<Mutex<DictionaryInner>>,
}

impl FrameDictionary {
    /// Negotiate a dictionary from the frame names a session expects to see.
    ///
    /// Duplicate hints collapse onto the first occurrence, so vocabularies can
    /// be concatenated freely.
    pub fn negotiate<'a>(hints: impl IntoIterator<Item = &'a str>) -> Self {
        let dict = FrameDictionary::default();
        {
            let mut inner = dict.lock();
            for name in hints {
                if !inner.index.contains_key(name) {
                    let id = u32::try_from(inner.names.len()).unwrap_or(u32::MAX);
                    inner.names.push(name.to_string());
                    inner.index.insert(name.to_string(), id);
                }
            }
            inner.base_len = u32::try_from(inner.names.len()).unwrap_or(u32::MAX);
        }
        dict
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DictionaryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Intern a frame name, returning its session-global id.  Names beyond the
    /// negotiated base get fresh incremental ids.
    pub fn intern(&self, name: &str) -> u32 {
        let mut inner = self.lock();
        if let Some(&id) = inner.index.get(name) {
            return id;
        }
        let id = u32::try_from(inner.names.len()).unwrap_or(u32::MAX);
        inner.names.push(name.to_string());
        inner.index.insert(name.to_string(), id);
        id
    }

    /// Look up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.lock().index.get(name).copied()
    }

    /// The name behind a session-global id, if the dictionary has seen it.
    pub fn name(&self, id: u32) -> Option<String> {
        self.lock().names.get(usize::try_from(id).ok()?).cloned()
    }

    /// Size of the negotiated base table: ids below this were agreed at session
    /// setup and are never re-shipped.
    pub fn base_len(&self) -> u32 {
        self.lock().base_len
    }

    /// Total names interned so far (base + incremental).
    pub fn len(&self) -> usize {
        self.lock().names.len()
    }

    /// True if nothing was negotiated or interned.
    pub fn is_empty(&self) -> bool {
        self.lock().names.is_empty()
    }

    /// The negotiated base names in id order — the payload of the one-time
    /// dictionary broadcast down the overlay.
    pub fn negotiated_names(&self) -> Vec<String> {
        let inner = self.lock();
        let base = usize::try_from(inner.base_len).unwrap_or(inner.names.len());
        inner.names.iter().take(base).cloned().collect()
    }

    /// A point-in-time [`FrameTable`] whose [`FrameId`]s equal the dictionary's
    /// global ids — the front end resolves decoded trees against this.
    pub fn snapshot(&self) -> FrameTable {
        let inner = self.lock();
        let mut table = FrameTable::new();
        for name in &inner.names {
            table.intern(name);
        }
        table
    }

    /// Convenience: intern and wrap as a [`FrameId`], for paths that build
    /// trees directly in the global id space.
    pub fn intern_id(&self, name: &str) -> FrameId {
        FrameId(self.intern(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_fixes_the_base_and_dedupes_hints() {
        let dict = FrameDictionary::negotiate(["_start", "main", "MPI_Barrier", "main"]);
        assert_eq!(dict.base_len(), 3);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.lookup("main"), Some(1));
        assert_eq!(
            dict.negotiated_names(),
            vec!["_start", "main", "MPI_Barrier"]
        );
    }

    #[test]
    fn incremental_interns_land_past_the_base() {
        let dict = FrameDictionary::negotiate(["_start", "main"]);
        let late = dict.intern("do_SendOrStall");
        assert_eq!(late, 2);
        assert!(late >= dict.base_len());
        // Idempotent, and the base never moves.
        assert_eq!(dict.intern("do_SendOrStall"), late);
        assert_eq!(dict.base_len(), 2);
        assert_eq!(dict.name(late).as_deref(), Some("do_SendOrStall"));
    }

    #[test]
    fn clones_share_one_id_space() {
        let dict = FrameDictionary::negotiate(["main"]);
        let other = dict.clone();
        let a = dict.intern("MPI_Waitall");
        let b = other.intern("MPI_Waitall");
        assert_eq!(a, b);
        assert_eq!(dict.len(), other.len());
    }

    #[test]
    fn snapshot_ids_equal_global_ids() {
        let dict = FrameDictionary::negotiate(["_start", "main"]);
        dict.intern("poll_step");
        let table = dict.snapshot();
        assert_eq!(table.len(), 3);
        assert_eq!(table.name(FrameId(2)), "poll_step");
        assert_eq!(table.lookup("_start"), Some(FrameId(0)));
    }

    #[test]
    fn empty_dictionary_is_usable() {
        let dict = FrameDictionary::default();
        assert!(dict.is_empty());
        assert_eq!(dict.base_len(), 0);
        assert_eq!(dict.intern("???"), 0);
        assert_eq!(dict.base_len(), 0, "interning never widens the base");
    }
}
