//! Stack traces and per-task sample series.
//!
//! A [`StackTrace`] is a single call path, outermost frame first (`_start`, `main`,
//! ...).  STAT's 2D "trace/space" analysis merges one trace per task; the 3D
//! "trace/space/time" analysis merges several traces per task collected over a
//! sampling window, which is what lets it distinguish "stuck in the barrier the whole
//! time" from "passing through the barrier repeatedly".  [`TaskSamples`] carries that
//! per-task time series.

use crate::frame::FrameId;

/// A single call path, outermost frame first.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct StackTrace {
    frames: Vec<FrameId>,
}

impl StackTrace {
    /// A trace from an ordered frame list (outermost first).
    pub fn new(frames: Vec<FrameId>) -> Self {
        StackTrace { frames }
    }

    /// The frames, outermost first.
    pub fn frames(&self) -> &[FrameId] {
        &self.frames
    }

    /// Depth of the trace.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True for the empty trace (a task that could not be walked).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The innermost (leaf) frame, if any.
    pub fn leaf(&self) -> Option<FrameId> {
        self.frames.last().copied()
    }

    /// Length of the longest common prefix with another trace — the quantity prefix-
    /// tree merging is built around.
    pub fn common_prefix_len(&self, other: &StackTrace) -> usize {
        self.frames
            .iter()
            .zip(other.frames.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }
}

/// The stack-trace samples gathered from one MPI task over one sampling window.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TaskSamples {
    /// The task's MPI rank.
    pub rank: u64,
    /// Traces in sampling order (index = sample number).
    pub traces: Vec<StackTrace>,
}

impl TaskSamples {
    /// Samples for one rank.
    pub fn new(rank: u64, traces: Vec<StackTrace>) -> Self {
        TaskSamples { rank, traces }
    }

    /// Number of samples taken.
    pub fn sample_count(&self) -> usize {
        self.traces.len()
    }

    /// The distinct traces observed, preserving first-seen order.  The 2D analysis
    /// only cares about which paths were seen, not how often.
    pub fn distinct_traces(&self) -> Vec<&StackTrace> {
        let mut seen: Vec<&StackTrace> = Vec::new();
        for t in &self.traces {
            if !seen.contains(&t) {
                seen.push(t);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;

    fn trace(table: &mut FrameTable, path: &[&str]) -> StackTrace {
        StackTrace::new(table.intern_path(path))
    }

    #[test]
    fn common_prefix_of_diverging_traces() {
        let mut t = FrameTable::new();
        let a = trace(&mut t, &["_start", "main", "MPI_Barrier", "progress_wait"]);
        let b = trace(&mut t, &["_start", "main", "MPI_Waitall", "progress_wait"]);
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(a.common_prefix_len(&a), 4);
        let empty = StackTrace::default();
        assert_eq!(a.common_prefix_len(&empty), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn leaf_and_depth() {
        let mut t = FrameTable::new();
        let a = trace(&mut t, &["_start", "main", "compute"]);
        assert_eq!(a.depth(), 3);
        assert_eq!(t.name(a.leaf().unwrap()), "compute");
        assert!(StackTrace::default().leaf().is_none());
    }

    #[test]
    fn distinct_traces_deduplicate_in_order() {
        let mut t = FrameTable::new();
        let barrier = trace(&mut t, &["_start", "main", "MPI_Barrier"]);
        let send = trace(&mut t, &["_start", "main", "do_SendOrStall"]);
        let samples = TaskSamples::new(
            7,
            vec![
                barrier.clone(),
                send.clone(),
                barrier.clone(),
                barrier.clone(),
            ],
        );
        assert_eq!(samples.sample_count(), 4);
        let distinct = samples.distinct_traces();
        assert_eq!(distinct.len(), 2);
        assert_eq!(distinct[0], &barrier);
        assert_eq!(distinct[1], &send);
    }
}
