//! The stack walker and the sampling cost model.
//!
//! Two very different things live here, mirroring the split the paper draws between
//! *structural* and *environmental* costs of stack sampling:
//!
//! * [`Walker`] is the real thing: it converts an application process's current call
//!   path into an interned [`StackTrace`].  The reproduction's application simulator
//!   (`appsim`) exposes call paths as lists of function names; walking them really
//!   builds the traces that the prefix trees in `stat-core` are merged from.
//!
//! * [`SamplingCostModel`] is the environment model behind Figures 8, 9 and 10: how
//!   long does the "gather ten traces from every local process" phase take when the
//!   daemons must first parse symbol tables that live on a shared file system, share
//!   CPU with spin-waiting MPI tasks (Atlas) or run on slow dedicated I/O nodes
//!   (BG/L), and when the binaries may or may not have been relocated to node-local
//!   RAM disks by SBRS.

use machine::cluster::Cluster;
use machine::filesystem::{FileAccessKind, FileSystem, FileSystemKind};
use simkit::prelude::*;

use crate::frame::{FrameId, FrameTable};
use crate::symtab::{working_set_of, BinaryImage};
use crate::trace::StackTrace;

/// The real stack walker.
///
/// The Dyninst StackWalker API walks a third-party process's stack via ptrace or
/// equivalent; here the "process" is a simulated MPI task that exposes its call path
/// as a list of function names, and walking means interning that path.  The walker
/// counts frames walked so tests can verify perturbation accounting.
#[derive(Debug, Default)]
pub struct Walker {
    frames_walked: u64,
    traces_taken: u64,
}

impl Walker {
    /// A fresh walker.
    pub fn new() -> Self {
        Walker::default()
    }

    /// Walk one call path (outermost frame first) into a trace.
    pub fn walk(&mut self, table: &mut FrameTable, call_path: &[&str]) -> StackTrace {
        self.traces_taken += 1;
        self.frames_walked += call_path.len() as u64;
        let frames: Vec<FrameId> = call_path.iter().map(|f| table.intern(f)).collect();
        StackTrace::new(frames)
    }

    /// Total frames walked so far.
    pub fn frames_walked(&self) -> u64 {
        self.frames_walked
    }

    /// Total traces taken so far.
    pub fn traces_taken(&self) -> u64 {
        self.traces_taken
    }
}

/// Where the target application's binaries live for a sampling run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryPlacement {
    /// Shared images stay where the user staged them (NFS home directories).
    NfsHome,
    /// Shared images are staged on the Lustre parallel file system instead.
    LustreScratch,
    /// SBRS has relocated every shared image to each daemon's local RAM disk.
    RelocatedRamDisk,
}

impl BinaryPlacement {
    /// Series label used in Figure 10.
    pub fn label(self) -> &'static str {
        match self {
            BinaryPlacement::NfsHome => "NFS",
            BinaryPlacement::LustreScratch => "Lustre",
            BinaryPlacement::RelocatedRamDisk => "SBRS (RAM disk)",
        }
    }
}

/// Tunable constants of the sampling model.
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// Traces gathered per task (the paper gathers ten).
    pub samples_per_task: u32,
    /// Pause between successive samples of the same task; STAT spaces samples out so
    /// the 3D trace/space/time analysis observes behaviour *over time*.
    pub sample_interval: SimDuration,
    /// Average trace depth (frames per trace) for walk-cost purposes.
    pub mean_trace_depth: u32,
    /// Cost to walk a single frame of a third-party process on a reference core.
    pub per_frame_walk: SimDuration,
    /// Fixed per-trace overhead (attach to the thread, locate the stack pointer).
    pub per_trace_overhead: SimDuration,
    /// Cost to fold one freshly gathered trace into the daemon's local prefix trees.
    pub per_trace_merge: SimDuration,
    /// Fraction of each binary image's bytes the symbol-table parse actually reads.
    pub symtab_read_fraction: f64,
    /// Whether the run predates the OS update mentioned in Section VI-B, in which
    /// case system shared libraries also live on the shared file system (this is the
    /// ~4× difference between Figure 8 and the NFS line of Figure 10).
    pub pre_os_update: bool,
    /// Run-to-run spread of shared-file-server performance (the paper saw >20%
    /// variation, and a 2× spread between two "identical" VN runs at 208K).
    pub server_load_spread: f64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            samples_per_task: 10,
            sample_interval: SimDuration::from_millis(150.0),
            mean_trace_depth: 14,
            per_frame_walk: SimDuration::from_micros(55.0),
            per_trace_overhead: SimDuration::from_micros(400.0),
            per_trace_merge: SimDuration::from_micros(80.0),
            symtab_read_fraction: 0.35,
            pre_os_update: false,
            server_load_spread: 0.25,
        }
    }
}

/// The per-phase breakdown of one sampling estimate.
#[derive(Clone, Debug)]
pub struct SamplingEstimate {
    /// Total wall-clock time of the sampling phase (what Figures 8–10 plot).
    pub total: SimDuration,
    /// Time until the slowest daemon finished parsing symbol tables.
    pub symbol_parse: SimDuration,
    /// Time the slowest daemon spent walking stacks (including the inter-sample
    /// pauses and CPU contention with the application).
    pub trace_walk: SimDuration,
    /// Time the slowest daemon spent folding traces into its local prefix trees.
    pub local_merge: SimDuration,
    /// Number of daemons that participated.
    pub daemons: u32,
    /// Tasks sampled per daemon.
    pub tasks_per_daemon: u32,
}

/// The sampling cost model for one cluster.
#[derive(Clone, Debug)]
pub struct SamplingCostModel {
    cluster: Cluster,
    config: SamplingConfig,
}

impl SamplingCostModel {
    /// A model over a cluster with default constants.
    pub fn new(cluster: Cluster) -> Self {
        SamplingCostModel {
            cluster,
            config: SamplingConfig::default(),
        }
    }

    /// Override the tunable constants.
    pub fn with_config(mut self, config: SamplingConfig) -> Self {
        self.config = config;
        self
    }

    /// The cluster the model is bound to.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The config in effect.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// The binary images the daemons must parse, with their effective file systems
    /// under the given placement.
    pub fn effective_working_set(
        &self,
        placement: BinaryPlacement,
    ) -> Vec<(BinaryImage, FileSystemKind)> {
        let mut images = working_set_of(&self.cluster);
        if self.config.pre_os_update {
            // Before the OS update, several system libraries also lived on the slow
            // shared file system; model them as extra shared images.
            images.push(BinaryImage::new("/g/g0/compat/libc.so.6", 1_700 * 1024));
            images.push(BinaryImage::new("/g/g0/compat/libpthread.so.0", 140 * 1024));
        }
        images
            .into_iter()
            .map(|img| {
                let natural = self.cluster.mounts.filesystem_of(&img.path);
                let effective = if natural.is_shared() {
                    match placement {
                        BinaryPlacement::NfsHome => FileSystemKind::Nfs,
                        BinaryPlacement::LustreScratch => FileSystemKind::Lustre,
                        BinaryPlacement::RelocatedRamDisk => FileSystemKind::RamDisk,
                    }
                } else {
                    natural
                };
                (img, effective)
            })
            .collect()
    }

    /// Estimate the sampling phase for a job of `tasks` MPI tasks.
    ///
    /// The symbol-table parse phase is run through the discrete-event simulator so
    /// that queueing at the shared file server is modelled rather than assumed; the
    /// walk and local-merge phases are per-daemon arithmetic with deterministic
    /// per-daemon jitter, and the result is the maximum over daemons (the front end
    /// cannot proceed until the slowest daemon reports).
    pub fn estimate(&self, tasks: u64, placement: BinaryPlacement, seed: u64) -> SamplingEstimate {
        let shape = self.cluster.job(tasks);
        let daemons = shape.daemons;
        let tasks_per_daemon = shape.tasks_per_daemon;
        let cfg = &self.config;
        let slowdown = self.cluster.daemon_host_slowdown();

        let mut rng = DeterministicRng::new(seed ^ 0x5741_4c4b);
        // Run-level file-server load factor: reproduces the >20% run-to-run variation
        // (and the occasional 2×) the paper saw on the shared BG/L file systems.
        let server_load = rng.jitter(cfg.server_load_spread).max(0.5);

        // ---- Phase 1: symbol-table parsing, with file-server queueing. ----
        let working_set = self.effective_working_set(placement);
        let mut sim = Simulation::new(seed);
        let mut resources: Vec<(FileSystemKind, simkit::resource::ResourceId)> = Vec::new();
        for (_, kind) in &working_set {
            if !resources.iter().any(|(k, _)| k == kind) {
                let fs = FileSystem::of_kind(*kind);
                let id = sim.add_resource(fs.server_resource());
                resources.push((*kind, id));
            }
        }
        for daemon in 0..daemons {
            // Daemons do not all arrive at the same nanosecond: stagger arrivals a
            // little so the queue build-up is realistic rather than degenerate.
            let arrival = SimTime::from_millis(rng.uniform(0.0, 5.0));
            for (img, kind) in &working_set {
                let fs = FileSystem::of_kind(*kind);
                let read_bytes = (img.bytes as f64 * cfg.symtab_read_fraction).round() as u64;
                let mut service =
                    fs.server_service_time(FileAccessKind::SymbolTableParse, read_bytes);
                if kind.is_shared() {
                    service = service.mul_f64(server_load);
                }
                let resource = resources
                    .iter()
                    .find(|(k, _)| k == kind)
                    .map(|(_, id)| *id)
                    .expect("resource registered above");
                sim.schedule(arrival, Event::request(resource, daemon as u64, service));
            }
        }
        let report = sim.run();
        let symbol_parse_server = report.finished_at.saturating_since(SimTime::ZERO);
        // Client-side parse work happens per daemon after its reads complete.
        let client_parse: SimDuration = working_set
            .iter()
            .map(|(img, kind)| {
                FileSystem::of_kind(*kind)
                    .client_service_time(FileAccessKind::SymbolTableParse, img.bytes)
            })
            .sum();
        let symbol_parse = symbol_parse_server + client_parse.mul_f64(slowdown);

        // ---- Phase 2: walking stacks of the local tasks. ----
        // Per-trace cost on this machine's daemon hosts.
        let per_trace = (cfg.per_trace_overhead + cfg.per_frame_walk * cfg.mean_trace_depth as u64)
            .mul_f64(slowdown);
        let traces_per_daemon = tasks_per_daemon as u64 * cfg.samples_per_task as u64;
        // CPU contention: on Atlas the daemon shares its node with spin-waiting MPI
        // tasks, so walk time inflates with node occupancy; on BG/L the daemon owns a
        // dedicated I/O node and only pays its own slow clock (already in `slowdown`).
        let base_contention = if self.cluster.daemons_on_io_nodes() {
            1.0
        } else {
            let occupancy =
                (tasks_per_daemon as f64 / self.cluster.cores_per_compute as f64).min(1.0);
            1.0 + 0.8 * occupancy
        };
        // The slowest of `daemons` daemons: each gets an independent jitter draw, and
        // the max over more daemons is statistically larger — the paper's "higher
        // probability that a daemon encounters processes that spin or ... refuse to
        // yield the core" at larger scale.
        let mut worst_walk = SimDuration::ZERO;
        let mut worst_merge = SimDuration::ZERO;
        for daemon in 0..daemons {
            let mut drng = rng.fork(daemon as u64);
            let contention = base_contention * drng.jitter(0.25);
            let walk = per_trace.mul_f64(traces_per_daemon as f64 * contention);
            let merge = cfg
                .per_trace_merge
                .mul_f64(traces_per_daemon as f64 * slowdown * drng.jitter(0.1));
            worst_walk = worst_walk.max(walk);
            worst_merge = worst_merge.max(merge);
        }
        // The inter-sample pauses are wall-clock time regardless of scale.
        let pauses = cfg.sample_interval * (cfg.samples_per_task.saturating_sub(1)) as u64;
        let trace_walk = worst_walk + pauses;

        SamplingEstimate {
            total: symbol_parse + trace_walk + worst_merge,
            symbol_parse,
            trace_walk,
            local_merge: worst_merge,
            daemons,
            tasks_per_daemon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::BglMode;

    #[test]
    fn walker_interns_and_counts() {
        let mut table = FrameTable::new();
        let mut w = Walker::new();
        let t1 = w.walk(&mut table, &["_start", "main", "MPI_Barrier"]);
        let t2 = w.walk(&mut table, &["_start", "main", "MPI_Barrier"]);
        assert_eq!(t1, t2);
        assert_eq!(w.traces_taken(), 2);
        assert_eq!(w.frames_walked(), 6);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn relocated_binaries_make_sampling_constant_in_scale() {
        let model = SamplingCostModel::new(Cluster::atlas());
        let small = model.estimate(64, BinaryPlacement::RelocatedRamDisk, 1);
        let large = model.estimate(4_096, BinaryPlacement::RelocatedRamDisk, 1);
        let ratio = large.total.as_secs() / small.total.as_secs();
        assert!(
            ratio < 1.6,
            "relocated sampling should be ~flat, grew by {ratio}"
        );
        // And it lands in the ~2 s regime the paper reports.
        assert!(
            large.total.as_secs() > 0.5 && large.total.as_secs() < 6.0,
            "got {}",
            large.total.as_secs()
        );
    }

    #[test]
    fn nfs_sampling_grows_roughly_linearly_with_daemons() {
        let model = SamplingCostModel::new(Cluster::atlas());
        let a = model.estimate(512, BinaryPlacement::NfsHome, 7);
        let b = model.estimate(4_096, BinaryPlacement::NfsHome, 7);
        // 8× the daemons should cost several times more once the server saturates.
        let ratio = b.total.as_secs() / a.total.as_secs();
        assert!(ratio > 3.0, "expected server-bound growth, got {ratio}");
        assert!(b.total > b.symbol_parse, "total includes walking");
    }

    #[test]
    fn lustre_is_not_much_better_than_nfs_for_sampling() {
        let model = SamplingCostModel::new(Cluster::atlas());
        let nfs = model.estimate(1_024, BinaryPlacement::NfsHome, 3);
        let lustre = model.estimate(1_024, BinaryPlacement::LustreScratch, 3);
        let improvement = nfs.total.as_secs() / lustre.total.as_secs();
        assert!(
            improvement < 3.0,
            "paper found Lustre offered little improvement; got {improvement}x"
        );
        let sbrs = model.estimate(1_024, BinaryPlacement::RelocatedRamDisk, 3);
        assert!(sbrs.total < lustre.total);
        assert!(sbrs.total < nfs.total);
    }

    #[test]
    fn pre_os_update_runs_are_slower() {
        let cluster = Cluster::atlas();
        let recent = SamplingCostModel::new(cluster.clone());
        let cfg = SamplingConfig {
            pre_os_update: true,
            ..SamplingConfig::default()
        };
        let old = SamplingCostModel::new(cluster).with_config(cfg);
        let new_t = recent.estimate(1_024, BinaryPlacement::NfsHome, 11);
        let old_t = old.estimate(1_024, BinaryPlacement::NfsHome, 11);
        assert!(old_t.total > new_t.total);
    }

    #[test]
    fn bgl_daemons_serve_more_tasks_and_run_slower() {
        let atlas = SamplingCostModel::new(Cluster::atlas());
        let bgl = SamplingCostModel::new(Cluster::bluegene_l(BglMode::VirtualNode));
        // At equal small task counts Atlas is faster (8 vs 128 tasks per daemon),
        // matching the paper's third observation in Section VI-A.
        let a = atlas.estimate(1_024, BinaryPlacement::NfsHome, 5);
        let b = bgl.estimate(1_024, BinaryPlacement::NfsHome, 5);
        assert!(a.trace_walk < b.trace_walk);
        assert_eq!(a.tasks_per_daemon, 8);
        assert_eq!(b.tasks_per_daemon, 128);
    }

    #[test]
    fn run_to_run_variation_exists_on_shared_filesystems() {
        let model = SamplingCostModel::new(Cluster::bluegene_l(BglMode::VirtualNode));
        let times: Vec<f64> = (0..6)
            .map(|s| {
                model
                    .estimate(212_992, BinaryPlacement::NfsHome, 1000 + s)
                    .total
                    .as_secs()
            })
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max / min > 1.1, "expected >10% spread, got {min}..{max}");
    }

    #[test]
    fn effective_working_set_respects_placement() {
        let model = SamplingCostModel::new(Cluster::atlas());
        let relocated = model.effective_working_set(BinaryPlacement::RelocatedRamDisk);
        assert!(relocated.iter().all(|(_, k)| !k.is_shared()));
        let nfs = model.effective_working_set(BinaryPlacement::NfsHome);
        assert!(nfs.iter().any(|(_, k)| *k == FileSystemKind::Nfs));
        // Node-local system libraries are never "relocated" — they are already local.
        assert!(nfs.iter().any(|(_, k)| !k.is_shared()));
    }

    #[test]
    fn placement_labels_match_figure_10() {
        assert_eq!(BinaryPlacement::NfsHome.label(), "NFS");
        assert_eq!(BinaryPlacement::LustreScratch.label(), "Lustre");
        assert_eq!(BinaryPlacement::RelocatedRamDisk.label(), "SBRS (RAM disk)");
    }
}
