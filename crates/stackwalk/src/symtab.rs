//! Binary images and symbol-table bookkeeping.
//!
//! Before a daemon can symbolise a stack trace it must parse the symbol tables of the
//! application executable and every shared library in the address space.  The parse
//! itself is cheap CPU work; what the paper discovered (Section VI) is that the *read*
//! is not cheap when a thousand daemons do it simultaneously against one NFS server.
//! [`SymbolTableCache`] tracks which images a daemon has already parsed — each image is
//! read exactly once per daemon — and reports the bytes that still need to be fetched,
//! which is the quantity the sampling cost model charges to the file system.

use std::collections::HashSet;

/// One binary image (executable or shared library) in the target's address space.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BinaryImage {
    /// Path as the application sees it (used for mount-table classification).
    pub path: String,
    /// File size in bytes; symbol-table parsing reads a size-proportional fraction.
    pub bytes: u64,
}

impl BinaryImage {
    /// Construct an image record.
    pub fn new(path: impl Into<String>, bytes: u64) -> Self {
        BinaryImage {
            path: path.into(),
            bytes,
        }
    }
}

/// Per-daemon record of which images have already been parsed.
#[derive(Clone, Debug, Default)]
pub struct SymbolTableCache {
    parsed: HashSet<String>,
    bytes_parsed: u64,
}

impl SymbolTableCache {
    /// An empty cache (a freshly launched daemon).
    pub fn new() -> Self {
        SymbolTableCache::default()
    }

    /// Whether an image has already been parsed by this daemon.
    pub fn contains(&self, image: &BinaryImage) -> bool {
        self.parsed.contains(&image.path)
    }

    /// Record that an image has been parsed.  Returns `true` if it was new work.
    pub fn record(&mut self, image: &BinaryImage) -> bool {
        let new = self.parsed.insert(image.path.clone());
        if new {
            self.bytes_parsed += image.bytes;
        }
        new
    }

    /// The images from `working_set` that still need parsing, in order.
    pub fn missing<'a>(&self, working_set: &'a [BinaryImage]) -> Vec<&'a BinaryImage> {
        working_set.iter().filter(|i| !self.contains(i)).collect()
    }

    /// Total bytes of symbol data this daemon has parsed so far.
    pub fn bytes_parsed(&self) -> u64 {
        self.bytes_parsed
    }

    /// Number of distinct images parsed.
    pub fn images_parsed(&self) -> usize {
        self.parsed.len()
    }
}

/// Build the [`BinaryImage`] working set of a cluster's target application.
pub fn working_set_of(cluster: &machine::Cluster) -> Vec<BinaryImage> {
    cluster
        .binary_working_set
        .iter()
        .map(|(path, bytes)| BinaryImage::new(path.clone(), *bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::{BglMode, Cluster};

    #[test]
    fn cache_parses_each_image_once() {
        let mut cache = SymbolTableCache::new();
        let exe = BinaryImage::new("/g/g0/user/a.out", 10_240);
        let lib = BinaryImage::new("/g/g0/user/lib/libmpi.so", 4 << 20);
        assert!(cache.record(&exe));
        assert!(!cache.record(&exe), "second parse is a cache hit");
        assert!(cache.record(&lib));
        assert_eq!(cache.images_parsed(), 2);
        assert_eq!(cache.bytes_parsed(), 10_240 + (4 << 20));
    }

    #[test]
    fn missing_reports_unparsed_images_in_order() {
        let mut cache = SymbolTableCache::new();
        let ws = vec![
            BinaryImage::new("/a", 1),
            BinaryImage::new("/b", 2),
            BinaryImage::new("/c", 3),
        ];
        cache.record(&ws[1]);
        let missing = cache.missing(&ws);
        assert_eq!(missing.len(), 2);
        assert_eq!(missing[0].path, "/a");
        assert_eq!(missing[1].path, "/c");
    }

    #[test]
    fn working_sets_match_the_machines() {
        let atlas = working_set_of(&Cluster::atlas());
        assert!(
            atlas.len() >= 3,
            "dynamically linked app has several images"
        );
        let bgl = working_set_of(&Cluster::bluegene_l(BglMode::CoProcessor));
        assert_eq!(bgl.len(), 1, "statically linked app is one image");
        assert!(bgl[0].bytes > atlas[0].bytes, "static binary is bigger");
    }
}
