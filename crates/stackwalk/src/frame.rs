//! Interned stack frames.
//!
//! A 208K-task job produces millions of individual stack frames, but only a few dozen
//! *distinct* function names (the ring test's traces in Figure 1 contain about twenty).
//! Interning the names once and passing 4-byte [`FrameId`]s everywhere keeps traces,
//! prefix-tree nodes and serialised packets small — the same reasoning that leads the
//! paper to compress task sets rather than ship raw representations around.

use std::collections::HashMap;

/// An interned function-name identifier, valid within one [`FrameTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

/// A bidirectional map between function names and [`FrameId`]s.
///
/// The table is append-only: ids are stable for the lifetime of the table, so traces
/// and prefix trees can hold bare ids without lifetimes.
#[derive(Clone, Debug, Default)]
pub struct FrameTable {
    names: Vec<String>,
    index: HashMap<String, FrameId>,
}

impl FrameTable {
    /// An empty table.
    pub fn new() -> Self {
        FrameTable::default()
    }

    /// Intern a function name, returning its stable id.
    pub fn intern(&mut self, name: &str) -> FrameId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = FrameId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Intern every name of a call path (outermost frame first).
    pub fn intern_path(&mut self, path: &[&str]) -> Vec<FrameId> {
        path.iter().map(|n| self.intern(n)).collect()
    }

    /// The name behind an id.  Panics on an id from another table, which is a
    /// programming error.
    pub fn name(&self, id: FrameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Look up an id without interning.
    pub fn lookup(&self, name: &str) -> Option<FrameId> {
        self.index.get(name).copied()
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Approximate serialised size of the table itself: the table travels with a
    /// merged prefix tree exactly once (names are never repeated per edge).
    pub fn serialized_bytes(&self) -> u64 {
        self.names.iter().map(|n| n.len() as u64 + 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = FrameTable::new();
        let a = t.intern("main");
        let b = t.intern("main");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "main");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = FrameTable::new();
        let a = t.intern("MPI_Barrier");
        let b = t.intern("MPI_Waitall");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup("MPI_Barrier"), Some(a));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn intern_path_preserves_order() {
        let mut t = FrameTable::new();
        let path = t.intern_path(&["_start", "main", "MPI_Barrier"]);
        assert_eq!(path.len(), 3);
        assert_eq!(t.name(path[0]), "_start");
        assert_eq!(t.name(path[2]), "MPI_Barrier");
    }

    #[test]
    fn serialized_size_counts_each_name_once() {
        let mut t = FrameTable::new();
        for _ in 0..100 {
            t.intern("do_SendOrStall");
        }
        assert_eq!(t.serialized_bytes(), "do_SendOrStall".len() as u64 + 4);
    }
}
