//! # stackwalk — stack traces, symbol tables and the sampling cost model
//!
//! STAT gathers its raw data through the Dyninst StackWalker API: a lightweight,
//! third-party (out-of-process) stack walker that each tool daemon uses to sample the
//! call stacks of the application processes on its node.  This crate provides the
//! Rust equivalent for the reproduction:
//!
//! * [`frame`] — interned stack frames and the frame table shared by every trace;
//! * [`dictionary`] — the session-global frame dictionary wire format v2
//!   negotiates at session setup, so packets carry u32 ids instead of names;
//! * [`trace`] — stack traces and per-task sample series (the "space" and "time"
//!   dimensions of STAT's 2D and 3D prefix trees);
//! * [`symtab`] — binary images and the symbol-table bookkeeping a daemon performs
//!   before it can symbolise its first trace;
//! * [`sampler`] — the real walker that converts an application's in-memory stack
//!   into an interned [`trace::StackTrace`], plus the environment cost model that
//!   reproduces the paper's Section VI findings: symbol-table parsing against shared
//!   file systems is what makes "node-local" sampling scale badly.

#![warn(rust_2018_idioms)]

pub mod dictionary;
pub mod frame;
pub mod sampler;
pub mod symtab;
pub mod trace;

pub use dictionary::FrameDictionary;
pub use frame::{FrameId, FrameTable};
pub use sampler::{SamplingConfig, SamplingCostModel, SamplingEstimate, Walker};
pub use symtab::{BinaryImage, SymbolTableCache};
pub use trace::{StackTrace, TaskSamples};
