//! Process equivalence classes.
//!
//! STAT exists to shrink a debugging problem: instead of attaching a heavyweight
//! debugger to 208K processes, attach it to one representative of each *behaviour
//! class*.  A behaviour class is simply a distinct root-to-leaf path of the merged
//! prefix tree together with the set of tasks on it; the ring hang, for instance,
//! collapses 212,992 tasks into three classes (barrier / waitall / stalled-send), and
//! the user debugs three processes.

use stackwalk::{FrameId, FrameTable};

use crate::graph::{GlobalPrefixTree, PrefixTree};
use crate::taskset::{format_rank_ranges, TaskSetOps};

/// One behaviour class: a call path and the tasks that exhibit it.
#[derive(Clone, Debug, PartialEq)]
pub struct EquivalenceClass {
    /// The call path, outermost frame first.
    pub path: Vec<FrameId>,
    /// The member tasks, ascending.  For a global tree these are MPI ranks; for a
    /// subtree tree they are subtree-local positions (remap before presenting them).
    pub tasks: Vec<u64>,
}

impl EquivalenceClass {
    /// Number of member tasks.
    pub fn size(&self) -> usize {
        self.tasks.len()
    }

    /// A representative task to hand to a heavyweight debugger (the smallest member,
    /// matching STAT's default of picking the lowest rank).
    pub fn representative(&self) -> Option<u64> {
        self.tasks.first().copied()
    }

    /// Render the path as `frame > frame > frame`.
    pub fn path_string(&self, table: &FrameTable) -> String {
        self.path
            .iter()
            .map(|&f| table.name(f))
            .collect::<Vec<_>>()
            .join(" > ")
    }

    /// Render the member set the way Figure 1 labels edges.
    pub fn tasks_string(&self) -> String {
        format_rank_ranges(&self.tasks, 8)
    }
}

/// Extract the behaviour classes of a merged tree.
///
/// A task belongs to the class of the *deepest* node its traces reach: for every
/// node, the class members are the tasks on that node's incoming edge that do not
/// appear on any of its children's edges.  (Taking only leaves would mis-classify a
/// task whose entire trace is a prefix of some other task's trace.)
pub fn equivalence_classes<S: TaskSetOps>(tree: &PrefixTree<S>) -> Vec<EquivalenceClass> {
    let mut classes: Vec<EquivalenceClass> = Vec::new();
    for (node, _, _) in tree.iter_nodes() {
        let deeper: std::collections::HashSet<u64> = tree
            .children(node)
            .iter()
            .flat_map(|&c| tree.tasks(c).iter_members())
            .collect();
        let terminal: Vec<u64> = tree
            .tasks(node)
            .iter_members()
            .filter(|t| !deeper.contains(t))
            .collect();
        if !terminal.is_empty() {
            classes.push(EquivalenceClass {
                path: tree.path_to(node),
                tasks: terminal,
            });
        }
    }
    // Largest classes first: the user looks at the outliers (smallest classes) last
    // in the visualisation but the sort makes reports deterministic.
    classes.sort_by(|a, b| {
        b.tasks
            .len()
            .cmp(&a.tasks.len())
            .then_with(|| a.path.cmp(&b.path))
    });
    classes
}

/// Pick the minimal set of representative ranks a heavyweight debugger should attach
/// to: one per class.  This is the "reduce the problem search space to a manageable
/// subset of tasks" step of the paper's petascale debugging strategy.
pub fn debugger_attach_set(tree: &GlobalPrefixTree) -> Vec<u64> {
    let mut reps: Vec<u64> = equivalence_classes(tree)
        .iter()
        .filter_map(EquivalenceClass::representative)
        .collect();
    reps.sort_unstable();
    reps.dedup();
    reps
}

/// Summary statistics about how well the classes compress the job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassSummary {
    /// Total tasks covered by any class.
    pub tasks: u64,
    /// Number of classes.
    pub classes: usize,
    /// Size of the largest class.
    pub largest: usize,
    /// Size of the smallest class.
    pub smallest: usize,
}

/// Compute the summary for a merged tree.
pub fn summarize<S: TaskSetOps>(tree: &PrefixTree<S>) -> ClassSummary {
    let classes = equivalence_classes(tree);
    ClassSummary {
        tasks: tree.tasks(tree.root()).count(),
        classes: classes.len(),
        largest: classes
            .iter()
            .map(EquivalenceClass::size)
            .max()
            .unwrap_or(0),
        smallest: classes
            .iter()
            .map(EquivalenceClass::size)
            .min()
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::{gather_samples, Application, FrameVocabulary, RingHangApp};

    fn ring_tree(tasks: u64) -> (GlobalPrefixTree, FrameTable) {
        // Three samples per task, merged into the 3D tree — the same tree the front
        // end extracts classes from.
        let app = RingHangApp::new(tasks, FrameVocabulary::BlueGeneL);
        let mut table = FrameTable::new();
        let samples = gather_samples(&app, 3, &mut table);
        let mut tree = GlobalPrefixTree::new_global(app.num_tasks());
        for s in &samples {
            tree.add_samples(s, s.rank);
        }
        (tree, table)
    }

    #[test]
    fn ring_hang_collapses_to_three_classes() {
        let (tree, table) = ring_tree(1_024);
        let classes = equivalence_classes(&tree);
        assert_eq!(classes.len(), 3);
        // Largest class: everyone in the barrier.
        assert_eq!(classes[0].size(), 1_022);
        assert!(classes[0].path_string(&table).contains("PMPI_Barrier"));
        // The two singletons are ranks 1 and 2.
        let singles: Vec<u64> = classes[1..].iter().flat_map(|c| c.tasks.clone()).collect();
        assert_eq!(
            {
                let mut s = singles.clone();
                s.sort_unstable();
                s
            },
            vec![1, 2]
        );
    }

    #[test]
    fn attach_set_is_one_task_per_class() {
        let (tree, _) = ring_tree(4_096);
        let attach = debugger_attach_set(&tree);
        assert_eq!(attach.len(), 3);
        assert!(
            attach.contains(&0),
            "barrier class representative is rank 0"
        );
        assert!(attach.contains(&1));
        assert!(attach.contains(&2));
    }

    #[test]
    fn summary_reports_compression() {
        let (tree, _) = ring_tree(512);
        let s = summarize(&tree);
        assert_eq!(s.tasks, 512);
        assert_eq!(s.classes, 3);
        assert_eq!(s.largest, 510);
        assert_eq!(s.smallest, 1);
    }

    #[test]
    fn class_rendering_matches_figure_1_style() {
        let (tree, table) = ring_tree(1_024);
        let classes = equivalence_classes(&tree);
        let barrier = &classes[0];
        assert!(barrier.tasks_string().starts_with("1022:[0,3-"));
        assert!(barrier
            .path_string(&table)
            .starts_with("_start_blrts > main"));
        assert_eq!(barrier.representative(), Some(0));
    }

    #[test]
    fn empty_tree_has_no_classes() {
        let tree = GlobalPrefixTree::new_global(8);
        assert!(equivalence_classes(&tree).is_empty());
        let s = summarize(&tree);
        assert_eq!(s.classes, 0);
        assert_eq!(s.largest, 0);
    }
}
