//! Front-end artifacts: the representation choice, merge metrics and final result.
//!
//! The front end drives the session: it owns the overlay network, broadcasts control
//! requests downward, and receives exactly one merged tree back per channel
//! regardless of how many daemons exist.  The *machinery* that does this lives in
//! [`crate::session::Session`] (the pipeline) and [`crate::strategy`] (the
//! per-representation dispatch); this module defines what the front end produces —
//! [`GatherResult`] — and the byte-flow accounting — [`MergeMetrics`] — that the
//! paper's Section V figures are built from.

use std::time::Duration;

use stackwalk::FrameTable;
use tbon::network::ReductionOutcome;

use crate::dot::{to_dot, DotOptions};
use crate::equivalence::EquivalenceClass;
use crate::graph::GlobalPrefixTree;

/// Which task-set representation a session uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Representation {
    /// The original job-wide bit vectors.
    GlobalBitVector,
    /// The optimised hierarchical (subtree) task lists with a front-end remap.
    HierarchicalTaskList,
}

impl Representation {
    /// Series label used in Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            Representation::GlobalBitVector => "original bit vector",
            Representation::HierarchicalTaskList => "optimized bit vector",
        }
    }
}

/// Byte-flow and timing metrics of one merge, combining every channel (2D tree,
/// 3D tree and — for the hierarchical representation — the rank map) that rode the
/// overlay.
#[derive(Clone, Debug, Default)]
pub struct MergeMetrics {
    /// Elapsed wall-clock time of the overlay reduction walk(s).
    pub merge_wall: Duration,
    /// Cumulative time spent inside reduction filters, summed across channels and
    /// tree nodes.  Filter invocations run concurrently under the default
    /// level-parallel execution, so this CPU-style total can exceed `merge_wall`.
    pub filter_wall: Duration,
    /// Wall-clock time of the front-end remap step (zero for the global
    /// representation, which needs none).
    pub remap_wall: Duration,
    /// Bytes received by the front end across all channels.
    pub frontend_bytes_in: u64,
    /// Largest number of bytes any single tree node received on one channel.
    pub max_node_bytes_in: u64,
    /// Total bytes that crossed overlay links.
    pub total_link_bytes: u64,
    /// Filter invocations executed across all channels.
    pub filter_invocations: usize,
    /// Bottom-up level walks of the overlay that were executed, counted once per
    /// [`MergeMetrics::absorb_walk`] call.  The single-pass session pipeline invokes
    /// the network once per gather however many channels it merges, so this reads 1;
    /// a pipeline that fell back to per-channel reductions would accumulate one per
    /// channel.
    pub tree_walks: usize,
}

impl MergeMetrics {
    /// Fold one overlay walk's per-channel reduction accounting into the totals.
    ///
    /// `elapsed` is the measured wall-clock time of the walk.  Each call counts as
    /// one walk of the overlay — the session calls this exactly once per gather.
    pub fn absorb_walk(&mut self, outcomes: &[ReductionOutcome], elapsed: Duration) {
        self.tree_walks += 1;
        self.merge_wall += elapsed;
        for outcome in outcomes {
            self.filter_wall += outcome.filter_time;
            self.frontend_bytes_in += outcome.frontend_bytes_in;
            self.max_node_bytes_in = self.max_node_bytes_in.max(outcome.max_node_bytes_in);
            self.total_link_bytes += outcome.total_link_bytes;
            self.filter_invocations += outcome.filter_invocations;
        }
    }
}

/// The merged result as the user sees it.
#[derive(Clone, Debug)]
pub struct GatherResult {
    /// The job-wide 2D (trace/space) tree, in MPI rank order.
    pub tree_2d: GlobalPrefixTree,
    /// The job-wide 3D (trace/space/time) tree, in MPI rank order.
    pub tree_3d: GlobalPrefixTree,
    /// Frame names referenced by the trees.
    pub frames: FrameTable,
    /// Behaviour classes extracted from the 3D tree.
    pub classes: Vec<EquivalenceClass>,
    /// Byte-flow and timing metrics.
    pub metrics: MergeMetrics,
}

impl GatherResult {
    /// Render the 3D tree as DOT (the Figure 1 reproduction).
    pub fn to_dot(&self) -> String {
        to_dot(&self.tree_3d, &self.frames, &DotOptions::default())
    }

    /// The ranks a heavyweight debugger should attach to (one per class).
    pub fn attach_set(&self) -> Vec<u64> {
        self.classes
            .iter()
            .filter_map(EquivalenceClass::representative)
            .collect()
    }
}
