//! The STAT front end.
//!
//! The front end drives the session: it owns the overlay network, broadcasts control
//! requests downward, and receives exactly one merged tree back regardless of how
//! many daemons exist.  For the hierarchical representation it performs one extra
//! step the paper calls out explicitly (and prices at 0.66 s for 208K tasks): the
//! *remap*, which converts the merged tree's daemon-order positions back into MPI
//! rank order using the concatenated rank map collected at setup time.

use std::time::{Duration, Instant};

use stackwalk::FrameTable;
use tbon::filter::Filter;
use tbon::network::{InProcessTbon, ReductionOutcome};
use tbon::packet::Packet;
use tbon::topology::Topology;

use crate::daemon::DaemonContribution;
use crate::dot::{to_dot, DotOptions};
use crate::equivalence::{equivalence_classes, EquivalenceClass};
use crate::filter::{RankMapFilter, StatMergeFilter};
use crate::graph::{GlobalPrefixTree, SubtreePrefixTree};
use crate::serialize::{decode_rank_map, decode_tree};
use crate::taskset::{DenseBitVector, SubtreeTaskList};

/// Which task-set representation a session uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Representation {
    /// The original job-wide bit vectors.
    GlobalBitVector,
    /// The optimised hierarchical (subtree) task lists with a front-end remap.
    HierarchicalTaskList,
}

impl Representation {
    /// Series label used in Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            Representation::GlobalBitVector => "original bit vector",
            Representation::HierarchicalTaskList => "optimized bit vector",
        }
    }
}

/// Byte-flow and timing metrics of one merge, combining the 2D and 3D reductions.
#[derive(Clone, Debug, Default)]
pub struct MergeMetrics {
    /// Wall-clock time spent executing the reductions in this process.
    pub merge_wall: Duration,
    /// Wall-clock time of the front-end remap step (zero for the global
    /// representation, which needs none).
    pub remap_wall: Duration,
    /// Bytes received by the front end across both reductions.
    pub frontend_bytes_in: u64,
    /// Largest number of bytes any single tree node received.
    pub max_node_bytes_in: u64,
    /// Total bytes that crossed overlay links.
    pub total_link_bytes: u64,
    /// Filter invocations executed.
    pub filter_invocations: usize,
}

impl MergeMetrics {
    fn absorb(&mut self, outcome: &ReductionOutcome) {
        self.merge_wall += outcome.wall_time;
        self.frontend_bytes_in += outcome.frontend_bytes_in;
        self.max_node_bytes_in = self.max_node_bytes_in.max(outcome.max_node_bytes_in);
        self.total_link_bytes += outcome.total_link_bytes;
        self.filter_invocations += outcome.filter_invocations;
    }
}

/// The merged result as the user sees it.
#[derive(Clone, Debug)]
pub struct GatherResult {
    /// The job-wide 2D (trace/space) tree, in MPI rank order.
    pub tree_2d: GlobalPrefixTree,
    /// The job-wide 3D (trace/space/time) tree, in MPI rank order.
    pub tree_3d: GlobalPrefixTree,
    /// Frame names referenced by the trees.
    pub frames: FrameTable,
    /// Behaviour classes extracted from the 3D tree.
    pub classes: Vec<EquivalenceClass>,
    /// Byte-flow and timing metrics.
    pub metrics: MergeMetrics,
}

impl GatherResult {
    /// Render the 3D tree as DOT (the Figure 1 reproduction).
    pub fn to_dot(&self) -> String {
        to_dot(&self.tree_3d, &self.frames, &DotOptions::default())
    }

    /// The ranks a heavyweight debugger should attach to (one per class).
    pub fn attach_set(&self) -> Vec<u64> {
        self.classes
            .iter()
            .filter_map(EquivalenceClass::representative)
            .collect()
    }
}

/// The STAT front end, bound to a topology and a representation choice.
#[derive(Clone, Debug)]
pub struct StatFrontEnd {
    topology: Topology,
    representation: Representation,
}

impl StatFrontEnd {
    /// A front end over a concrete overlay topology.
    pub fn new(topology: Topology, representation: Representation) -> Self {
        StatFrontEnd {
            topology,
            representation,
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The representation in use.
    pub fn representation(&self) -> Representation {
        self.representation
    }

    fn reduce_with(&self, leaves: Vec<Packet>, filter: &dyn Filter) -> ReductionOutcome {
        let net = InProcessTbon::new(self.topology.clone());
        net.reduce(leaves, filter)
    }

    /// Merge the daemons' contributions into the final result.
    ///
    /// `contributions` must be in backend (leaf) order — the same order
    /// [`crate::daemon::StatDaemon::partition`] produces — and there must be exactly
    /// one per topology leaf.
    pub fn gather(&self, contributions: &[DaemonContribution], total_tasks: u64) -> GatherResult {
        let packets_2d: Vec<Packet> = contributions.iter().map(|c| c.tree_2d.clone()).collect();
        let packets_3d: Vec<Packet> = contributions.iter().map(|c| c.tree_3d.clone()).collect();
        let rank_maps: Vec<Packet> = contributions.iter().map(|c| c.rank_map.clone()).collect();

        let mut metrics = MergeMetrics::default();
        let mut frames = FrameTable::new();

        let (tree_2d, tree_3d, remap_wall) = match self.representation {
            Representation::GlobalBitVector => {
                let filter = StatMergeFilter::<DenseBitVector>::new();
                let out_2d = self.reduce_with(packets_2d, &filter);
                let out_3d = self.reduce_with(packets_3d, &filter);
                metrics.absorb(&out_2d);
                metrics.absorb(&out_3d);
                let tree_2d: GlobalPrefixTree = decode_tree(&out_2d.result.payload, &mut frames)
                    .expect("front end received a well-formed 2D tree");
                let tree_3d: GlobalPrefixTree = decode_tree(&out_3d.result.payload, &mut frames)
                    .expect("front end received a well-formed 3D tree");
                (tree_2d, tree_3d, Duration::ZERO)
            }
            Representation::HierarchicalTaskList => {
                let filter = StatMergeFilter::<SubtreeTaskList>::new();
                let out_2d = self.reduce_with(packets_2d, &filter);
                let out_3d = self.reduce_with(packets_3d, &filter);
                let map_out = self.reduce_with(rank_maps, &RankMapFilter);
                metrics.absorb(&out_2d);
                metrics.absorb(&out_3d);
                metrics.absorb(&map_out);
                let sub_2d: SubtreePrefixTree = decode_tree(&out_2d.result.payload, &mut frames)
                    .expect("front end received a well-formed 2D tree");
                let sub_3d: SubtreePrefixTree = decode_tree(&out_3d.result.payload, &mut frames)
                    .expect("front end received a well-formed 3D tree");
                let position_to_rank = decode_rank_map(&map_out.result.payload)
                    .expect("front end received a well-formed rank map");
                // The remap step the paper prices at 0.66 s for 208K tasks.
                let start = Instant::now();
                let tree_2d = sub_2d.remap(&position_to_rank, total_tasks);
                let tree_3d = sub_3d.remap(&position_to_rank, total_tasks);
                (tree_2d, tree_3d, start.elapsed())
            }
        };
        metrics.remap_wall = remap_wall;

        let classes = equivalence_classes(&tree_3d);
        GatherResult {
            tree_2d,
            tree_3d,
            frames,
            classes,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::StatDaemon;
    use crate::taskset::TaskSetOps;
    use appsim::{Application, FrameVocabulary, RingHangApp};
    use tbon::topology::{Topology, TopologySpec};

    fn contributions<SER: crate::serialize::WireTaskSet>(
        app: &RingHangApp,
        daemons: &[StatDaemon],
        topology: &Topology,
    ) -> Vec<DaemonContribution> {
        daemons
            .iter()
            .zip(topology.backends())
            .map(|(d, &ep)| d.contribute::<SER>(app, 3, ep))
            .collect()
    }

    fn run(representation: Representation, tasks: u64, daemons: u32) -> GatherResult {
        let app = RingHangApp::new(tasks, FrameVocabulary::BlueGeneL);
        let daemons = StatDaemon::partition(app.num_tasks(), daemons);
        let topology = Topology::build(TopologySpec::two_deep(daemons.len() as u32, 4));
        let frontend = StatFrontEnd::new(topology.clone(), representation);
        let contribs = match representation {
            Representation::GlobalBitVector => {
                contributions::<DenseBitVector>(&app, &daemons, &topology)
            }
            Representation::HierarchicalTaskList => {
                contributions::<SubtreeTaskList>(&app, &daemons, &topology)
            }
        };
        frontend.gather(&contribs, app.num_tasks())
    }

    #[test]
    fn global_representation_recovers_the_three_classes() {
        let result = run(Representation::GlobalBitVector, 256, 16);
        assert_eq!(result.classes.len(), 3);
        assert_eq!(result.tree_2d.tasks(result.tree_2d.root()).count(), 256);
        let mut attach = result.attach_set();
        attach.sort_unstable();
        assert_eq!(attach, vec![0, 1, 2]);
        assert_eq!(result.metrics.remap_wall, Duration::ZERO);
    }

    #[test]
    fn hierarchical_representation_gives_identical_answers() {
        // 2,048 tasks over 16 daemons: wide enough for the job-wide bit vectors to
        // visibly dominate the hierarchical lists.
        let global = run(Representation::GlobalBitVector, 2_048, 16);
        let hier = run(Representation::HierarchicalTaskList, 2_048, 16);
        assert_eq!(global.classes.len(), hier.classes.len());
        for (g, h) in global.classes.iter().zip(hier.classes.iter()) {
            assert_eq!(
                g.tasks, h.tasks,
                "class membership must not depend on representation"
            );
        }
        // ...but moves far fewer bytes through the overlay.
        assert!(
            global.metrics.total_link_bytes > 2 * hier.metrics.total_link_bytes,
            "global {} vs hierarchical {}",
            global.metrics.total_link_bytes,
            hier.metrics.total_link_bytes
        );
    }

    #[test]
    fn dot_output_of_the_final_result_names_the_culprit() {
        let result = run(Representation::HierarchicalTaskList, 128, 8);
        let dot = result.to_dot();
        assert!(dot.contains("do_SendOrStall"));
        assert!(dot.contains("1:[1]"));
    }

    #[test]
    fn metrics_account_for_every_reduction() {
        let result = run(Representation::HierarchicalTaskList, 64, 8);
        // 2 tree reductions + 1 rank-map reduction over a 2-deep tree with 4 comm
        // processes: (4 + 1) filter invocations each.
        assert_eq!(result.metrics.filter_invocations, 3 * 5);
        assert!(result.metrics.frontend_bytes_in > 0);
        assert!(result.metrics.total_link_bytes >= result.metrics.frontend_bytes_in);
    }
}
