//! Report → verdict helpers: running fault scenarios through the real pipeline.
//!
//! `appsim::scenario` defines *what* to inject and *what the tool must conclude*
//! ([`appsim::scenario::GroundTruth`]); this module supplies the missing middle —
//! it runs a scenario's application through the real [`Session`] pipeline
//! (planner-chosen topology, real daemons, real single-pass TBON reduction),
//! converts the resulting [`GatherResult`] into the representation-agnostic
//! [`Diagnosis`] the verdict checker understands, and returns the [`Verdict`].
//!
//! Scenario entries that carry [`OverlayFault`] modifiers run *degraded*: the
//! requested tool daemons are pruned with [`tbon::fault::FaultTracker`], only the
//! survivors sample their tasks, and the survivors' contributions are merged over
//! the tracker's pruned replacement shape — the exact bookkeeping a production
//! deployment does when an interactive session loses daemons mid-gather.
//!
//! ```
//! use appsim::scenario::catalogue;
//! use appsim::FrameVocabulary;
//! use machine::Cluster;
//! use stat_core::prelude::*;
//!
//! let scenarios = catalogue(64, FrameVocabulary::Linux);
//! let ring = scenarios.iter().find(|s| s.name == "ring_hang").unwrap();
//! let run = run_scenario(&Cluster::test_cluster(8, 8), ring, 3).unwrap();
//! assert!(run.verdict.passed(), "{}", run.verdict);
//! ```

use appsim::scenario::{
    DiagnosedClass, Diagnosis, FaultScenario, MidTreeCorruption, MidTreeFault, OverlayFault,
    Verdict,
};
use machine::cluster::Cluster;
use tbon::fault::{FaultTracker, FilterFault, FilterFaultKind};
use tbon::packet::EndpointId;
use tbon::topology::Topology;

use crate::daemon::{DaemonContribution, StatDaemon};
use crate::error::StatError;
use crate::frontend::{GatherResult, Representation};
use crate::session::{Session, SessionReport};
use crate::taskset::TaskSetOps;

/// Convert a finished gather into the representation-agnostic [`Diagnosis`] the
/// scenario verdict checkers consume: classes by frame *name*, plus the ranks a
/// degraded gather lost.
pub fn diagnose(gather: &GatherResult, tasks: u64, lost_ranks: Vec<u64>) -> Diagnosis {
    let classes = gather
        .classes
        .iter()
        .map(|class| DiagnosedClass {
            frames: class
                .path
                .iter()
                .map(|&f| gather.frames.name(f).to_string())
                .collect(),
            ranks: class.tasks.clone(),
        })
        .collect();
    Diagnosis {
        tasks,
        lost_ranks,
        classes,
    }
}

impl SessionReport {
    /// The diagnosis this (non-degraded) session produced, ready for a
    /// [`appsim::scenario::GroundTruth::check`].
    pub fn diagnosis(&self) -> Diagnosis {
        let tasks = self
            .gather
            .tree_3d
            .tasks(self.gather.tree_3d.root())
            .count();
        diagnose(&self.gather, tasks, Vec::new())
    }
}

/// Everything one scenario run produced: the verdict plus enough context to
/// report *how* the pipeline got there.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The scenario that ran.
    pub scenario: String,
    /// Daemons the planned topology started with.
    pub daemons: u32,
    /// Daemons lost to the scenario's overlay faults (0 for a healthy overlay).
    pub lost_backends: usize,
    /// The diagnosis the merged tree produced.
    pub diagnosis: Diagnosis,
    /// The ground truth's judgement of that diagnosis.
    pub verdict: Verdict,
}

/// Run one scenario through the full pipeline with the paper's default
/// (hierarchical) representation.  See [`run_scenario_with`].
pub fn run_scenario(
    cluster: &Cluster,
    scenario: &FaultScenario,
    samples_per_task: u32,
) -> Result<ScenarioRun, StatError> {
    run_scenario_with(
        cluster,
        scenario,
        samples_per_task,
        Representation::HierarchicalTaskList,
    )
}

/// Run one scenario with a planner-chosen topology and an explicit
/// representation.  See [`run_scenario_in`] for callers that have already
/// configured a session (pinned topology, emulator settings, ...).
pub fn run_scenario_with(
    cluster: &Cluster,
    scenario: &FaultScenario,
    samples_per_task: u32,
    representation: Representation,
) -> Result<ScenarioRun, StatError> {
    let session = Session::builder(cluster.clone())
        .representation(representation)
        .plan_topology()
        .samples_per_task(samples_per_task)
        .build();
    run_scenario_in(&session, scenario)
}

/// Run one scenario through an already-configured [`Session`] — whatever
/// topology choice (pinned, planned or paper-default), representation and
/// sampling depth the session carries is what the scenario executes under —
/// and judge the result against the scenario's ground truth.
pub fn run_scenario_in(
    session: &Session,
    scenario: &FaultScenario,
) -> Result<ScenarioRun, StatError> {
    let app = scenario.app.as_ref();
    let tasks = app.num_tasks();
    let samples_per_task = session.samples_per_task();
    let representation = session.representation();

    if scenario.overlay_faults.is_empty() {
        let spec = session.topology_for(tasks);
        let topology = Topology::build(spec.clone());
        let filter_faults = resolve_filter_faults(&topology, &scenario.mid_tree_faults)?;
        // Mid-tree corruption needs a session carrying the resolved faults; a
        // clean scenario runs through the caller's session untouched.
        let report = if filter_faults.is_empty() {
            session.attach(app)?
        } else {
            Session::builder(session.cluster().clone())
                .representation(representation)
                .topology(spec)
                .samples_per_task(samples_per_task)
                .filter_faults(filter_faults)
                .build()
                .attach(app)?
        };
        let diagnosis = diagnose(&report.gather, tasks, Vec::new());
        let verdict = scenario.truth.check(&scenario.name, &diagnosis);
        return Ok(ScenarioRun {
            scenario: scenario.name.clone(),
            daemons: report.daemons,
            lost_backends: 0,
            diagnosis,
            verdict,
        });
    }

    // Degraded path: prune the session's overlay, sample only the survivors,
    // merge them over the tracker's replacement shape.
    let spec = session.topology_for(tasks);
    let topology = Topology::build(spec.clone());
    let mut tracker = FaultTracker::new(topology.clone());
    for fault in &scenario.overlay_faults {
        tracker.fail(resolve_fault(&topology, *fault)?);
    }

    let total_backends = topology.backends().len();
    let surviving = tracker.surviving_backend_indices();
    let degraded_spec = tracker
        .degraded_shape()
        .ok_or(StatError::SessionNotViable {
            lost_backends: total_backends - surviving.len(),
            total_backends,
        })?;

    let daemons = StatDaemon::partition(tasks, spec.backends());
    let surviving_set: std::collections::BTreeSet<usize> = surviving.iter().copied().collect();
    let lost_ranks: Vec<u64> = daemons
        .iter()
        .enumerate()
        .filter(|(i, _)| !surviving_set.contains(i))
        .flat_map(|(_, d)| d.ranks.iter().copied())
        .collect();

    // Only the survivors spend sampling time: a dead daemon gathers nothing.
    // The degraded gather still encodes against one session-global dictionary.
    let dict = stackwalk::FrameDictionary::negotiate(app.frame_hints());
    let strategy = representation.strategy();
    let degraded_topology = Topology::build(degraded_spec.clone());
    let contributions: Vec<DaemonContribution> = surviving
        .iter()
        .zip(degraded_topology.backends())
        .map(|(&idx, &leaf)| strategy.contribute(&daemons[idx], app, samples_per_task, leaf, &dict))
        .collect();

    // Mid-tree faults hit the *degraded* tree: the corrupted comm process is
    // one that survived the pruning and still merges its (reduced) subtree.
    let filter_faults = resolve_filter_faults(&degraded_topology, &scenario.mid_tree_faults)?;
    let merge_session = Session::builder(session.cluster().clone())
        .representation(representation)
        .topology(degraded_spec)
        .samples_per_task(samples_per_task)
        .filter_faults(filter_faults)
        .build();
    let gather = merge_session.merge(contributions, tasks, &dict)?;
    let diagnosis = diagnose(&gather, tasks, lost_ranks);
    let verdict = scenario.truth.check(&scenario.name, &diagnosis);
    Ok(ScenarioRun {
        scenario: scenario.name.clone(),
        daemons: spec.backends(),
        lost_backends: total_backends - surviving.len(),
        diagnosis,
        verdict,
    })
}

/// Resolve a scenario's abstract overlay fault to a concrete endpoint of the
/// planned topology.  An index past the addressed level's width is a
/// [`StatError::FaultOutOfRange`], never a silent clamp: the old clamping made
/// `BackendFromEnd(7)` on a 4-daemon tree indistinguishable from
/// `BackendFromEnd(3)`, so a campaign sweeping fault indices across scales
/// would quietly re-run the same fault.
pub(crate) fn resolve_fault(
    topology: &Topology,
    fault: OverlayFault,
) -> Result<EndpointId, StatError> {
    match fault {
        OverlayFault::BackendFromEnd(i) => {
            let backends = topology.backends();
            if i >= backends.len() {
                return Err(StatError::FaultOutOfRange {
                    kind: "backend",
                    index: i,
                    width: backends.len(),
                });
            }
            Ok(backends[backends.len() - 1 - i])
        }
        OverlayFault::CommProcessFromEnd(i) => {
            let comm = topology.comm_processes();
            if comm.is_empty() {
                // A flat tree has no comm processes to kill; degrade a daemon so
                // the scenario still exercises the pruned path.  (Documented
                // fallback — index 0 only, anything else is out of range.)
                if i > 0 {
                    return Err(StatError::FaultOutOfRange {
                        kind: "comm-process",
                        index: i,
                        width: 0,
                    });
                }
                let backends = topology.backends();
                Ok(backends[backends.len() - 1])
            } else if i >= comm.len() {
                Err(StatError::FaultOutOfRange {
                    kind: "comm-process",
                    index: i,
                    width: comm.len(),
                })
            } else {
                Ok(comm[comm.len() - 1 - i])
            }
        }
    }
}

/// Resolve a scenario's abstract mid-tree faults to concrete
/// [`FilterFault`]s against the tree that will actually merge.  Flat trees have
/// no communication processes, so *any* mid-tree fault on them is a
/// [`StatError::FaultOutOfRange`] — there is no interior filter state to
/// corrupt.
fn resolve_filter_faults(
    topology: &Topology,
    faults: &[MidTreeFault],
) -> Result<Vec<FilterFault>, StatError> {
    let comm = topology.comm_processes();
    faults
        .iter()
        .map(|fault| {
            if fault.comm_from_end >= comm.len() {
                return Err(StatError::FaultOutOfRange {
                    kind: "mid-tree filter",
                    index: fault.comm_from_end,
                    width: comm.len(),
                });
            }
            Ok(FilterFault {
                node: comm[comm.len() - 1 - fault.comm_from_end],
                kind: match fault.kind {
                    MidTreeCorruption::Garbage => FilterFaultKind::Garbage,
                    MidTreeCorruption::Truncate => FilterFaultKind::Truncate,
                },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::scenario::catalogue;
    use appsim::FrameVocabulary;

    fn cluster() -> Cluster {
        Cluster::test_cluster(32, 8)
    }

    #[test]
    fn the_ring_hang_scenario_is_diagnosed_end_to_end() {
        let scenarios = catalogue(256, FrameVocabulary::BlueGeneL);
        let ring = scenarios.iter().find(|s| s.name == "ring_hang").unwrap();
        let run = run_scenario(&cluster(), ring, 3).unwrap();
        assert!(run.verdict.passed(), "{}", run.verdict);
        assert_eq!(run.lost_backends, 0);
        // The checker saw the real classes, by name.
        assert!(run
            .diagnosis
            .classes
            .iter()
            .any(|c| c.frames.iter().any(|f| f == "do_SendOrStall")));
    }

    #[test]
    fn a_degraded_scenario_reports_its_lost_ranks_and_still_passes() {
        let scenarios = catalogue(256, FrameVocabulary::Linux);
        let degraded = scenarios
            .iter()
            .find(|s| s.name == "ring_hang_daemon_loss")
            .unwrap();
        let run = run_scenario(&cluster(), degraded, 2).unwrap();
        assert!(run.verdict.passed(), "{}", run.verdict);
        assert!(run.lost_backends > 0);
        assert!(!run.diagnosis.lost_ranks.is_empty());
        // The lost ranks are exactly the tail daemon's slice: high ranks, so the
        // injected bug (ranks 1 and 2) stayed covered.
        assert!(run.diagnosis.lost_ranks.iter().all(|&r| r > 2));
        let covered: u64 = run
            .diagnosis
            .classes
            .iter()
            .map(|c| c.ranks.len() as u64)
            .sum();
        assert!(covered >= 256 - run.diagnosis.lost_ranks.len() as u64);
    }

    #[test]
    fn both_representations_reach_the_same_verdicts() {
        let scenarios = catalogue(128, FrameVocabulary::Linux);
        for scenario in &scenarios {
            let hier = run_scenario_with(
                &cluster(),
                scenario,
                3,
                Representation::HierarchicalTaskList,
            )
            .unwrap();
            let dense = run_scenario_with(&cluster(), scenario, 3, Representation::GlobalBitVector)
                .unwrap();
            assert!(hier.verdict.passed(), "{}", hier.verdict);
            assert!(dense.verdict.passed(), "{}", dense.verdict);
            assert_eq!(hier.diagnosis.classes.len(), dense.diagnosis.classes.len());
        }
    }

    #[test]
    fn a_wrong_diagnosis_is_rejected_not_papered_over() {
        // Cross-wire a scenario: run the deadlock app against the ring hang's
        // ground truth.  The harness must say FAIL, not find a way to pass.
        let scenarios = catalogue(128, FrameVocabulary::Linux);
        let ring = scenarios.iter().find(|s| s.name == "ring_hang").unwrap();
        let deadlock = scenarios
            .iter()
            .find(|s| s.name == "deadlock_pair")
            .unwrap();
        let mut crossed = deadlock.clone();
        crossed.truth = ring.truth.clone();
        let run = run_scenario(&cluster(), &crossed, 3).unwrap();
        assert!(!run.verdict.passed());
        assert!(run.verdict.failures().iter().any(|c| c.name == "isolation"));
    }

    #[test]
    fn out_of_range_backend_faults_are_typed_errors_not_silent_clamps() {
        let scenarios = catalogue(64, FrameVocabulary::Linux);
        let mut wild = scenarios
            .iter()
            .find(|s| s.name == "ring_hang")
            .unwrap()
            .clone();
        let backends = Session::builder(cluster())
            .plan_topology()
            .build()
            .topology_for(64)
            .backends() as usize;
        wild.overlay_faults = vec![appsim::scenario::OverlayFault::BackendFromEnd(backends)];
        let err = run_scenario(&cluster(), &wild, 1).unwrap_err();
        assert_eq!(
            err,
            StatError::FaultOutOfRange {
                kind: "backend",
                index: backends,
                width: backends,
            }
        );
    }

    #[test]
    fn out_of_range_comm_faults_are_typed_errors_not_silent_clamps() {
        let scenarios = catalogue(64, FrameVocabulary::Linux);
        let mut wild = scenarios
            .iter()
            .find(|s| s.name == "deadlock_pair")
            .unwrap()
            .clone();
        wild.overlay_faults = vec![appsim::scenario::OverlayFault::CommProcessFromEnd(999)];
        let err = run_scenario(&cluster(), &wild, 1).unwrap_err();
        assert!(
            matches!(
                err,
                StatError::FaultOutOfRange {
                    kind: "comm-process",
                    index: 999,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn mid_tree_corruption_is_detected_not_papered_over() {
        // Corrupt one interior node's filter output: the parent merge drops the
        // corrupted subtree (or the front end refuses to decode), so the run
        // must surface the damage — a failed verdict or a pipeline error, never
        // a clean PASS.
        use appsim::scenario::{MidTreeCorruption, MidTreeFault};
        use tbon::topology::TreeShape;
        let scenarios = catalogue(256, FrameVocabulary::BlueGeneL);
        // Pin a 2-deep tree so the topology definitely has interior nodes.
        let session = Session::builder(cluster())
            .topology(TreeShape::two_deep(32, 4))
            .samples_per_task(2)
            .build();
        for kind in [MidTreeCorruption::Garbage, MidTreeCorruption::Truncate] {
            let mut corrupted = scenarios
                .iter()
                .find(|s| s.name == "ring_hang")
                .unwrap()
                .clone();
            corrupted.mid_tree_faults = vec![MidTreeFault {
                comm_from_end: 0,
                kind,
            }];
            assert!(corrupted.is_corrupting());
            match run_scenario_in(&session, &corrupted) {
                Ok(run) => assert!(
                    !run.verdict.passed(),
                    "{kind:?} corruption produced a clean PASS:\n{}",
                    run.verdict
                ),
                Err(err) => assert!(
                    matches!(
                        err,
                        StatError::Decode { .. }
                            | StatError::RankMapMismatch { .. }
                            | StatError::Reduce(_)
                    ),
                    "unexpected error class for {kind:?}: {err}"
                ),
            }
        }
    }

    #[test]
    fn mid_tree_faults_on_a_flat_tree_are_out_of_range() {
        use appsim::scenario::{MidTreeCorruption, MidTreeFault};
        use tbon::topology::TreeShape;
        let scenarios = catalogue(64, FrameVocabulary::Linux);
        let mut corrupted = scenarios
            .iter()
            .find(|s| s.name == "ring_hang")
            .unwrap()
            .clone();
        corrupted.mid_tree_faults = vec![MidTreeFault {
            comm_from_end: 0,
            kind: MidTreeCorruption::Garbage,
        }];
        let session = Session::builder(cluster())
            .topology(TreeShape::flat(8))
            .samples_per_task(1)
            .build();
        let err = run_scenario_in(&session, &corrupted).unwrap_err();
        assert_eq!(
            err,
            StatError::FaultOutOfRange {
                kind: "mid-tree filter",
                index: 0,
                width: 0,
            }
        );
    }

    #[test]
    fn losing_every_daemon_is_an_error_not_a_panic() {
        let scenarios = catalogue(64, FrameVocabulary::Linux);
        let mut doomed = scenarios
            .iter()
            .find(|s| s.name == "ring_hang")
            .unwrap()
            .clone();
        // More faults than the topology has backends: every daemon dies.
        let backends = Session::builder(cluster())
            .plan_topology()
            .build()
            .topology_for(64)
            .backends() as usize;
        doomed.overlay_faults = (0..backends)
            .map(appsim::scenario::OverlayFault::BackendFromEnd)
            .collect();
        let err = run_scenario(&cluster(), &doomed, 1).unwrap_err();
        assert!(matches!(err, StatError::SessionNotViable { .. }));
        assert!(err.to_string().contains("no degraded session"));
    }
}
