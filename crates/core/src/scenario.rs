//! Report → verdict helpers: running fault scenarios through the real pipeline.
//!
//! `appsim::scenario` defines *what* to inject and *what the tool must conclude*
//! ([`appsim::scenario::GroundTruth`]); this module supplies the missing middle —
//! it runs a scenario's application through the real [`Session`] pipeline
//! (planner-chosen topology, real daemons, real single-pass TBON reduction),
//! converts the resulting [`GatherResult`] into the representation-agnostic
//! [`Diagnosis`] the verdict checker understands, and returns the [`Verdict`].
//!
//! Scenario entries that carry [`OverlayFault`] modifiers run *degraded*: the
//! requested tool daemons are pruned with [`tbon::fault::FaultTracker`], only the
//! survivors sample their tasks, and the survivors' contributions are merged over
//! the tracker's pruned replacement shape — the exact bookkeeping a production
//! deployment does when an interactive session loses daemons mid-gather.
//!
//! ```
//! use appsim::scenario::catalogue;
//! use appsim::FrameVocabulary;
//! use machine::Cluster;
//! use stat_core::prelude::*;
//!
//! let scenarios = catalogue(64, FrameVocabulary::Linux);
//! let ring = scenarios.iter().find(|s| s.name == "ring_hang").unwrap();
//! let run = run_scenario(&Cluster::test_cluster(8, 8), ring, 3).unwrap();
//! assert!(run.verdict.passed(), "{}", run.verdict);
//! ```

use appsim::scenario::{DiagnosedClass, Diagnosis, FaultScenario, OverlayFault, Verdict};
use machine::cluster::Cluster;
use tbon::fault::FaultTracker;
use tbon::packet::EndpointId;
use tbon::topology::Topology;

use crate::daemon::{DaemonContribution, StatDaemon};
use crate::error::StatError;
use crate::frontend::{GatherResult, Representation};
use crate::session::{Session, SessionReport};
use crate::taskset::TaskSetOps;

/// Convert a finished gather into the representation-agnostic [`Diagnosis`] the
/// scenario verdict checkers consume: classes by frame *name*, plus the ranks a
/// degraded gather lost.
pub fn diagnose(gather: &GatherResult, tasks: u64, lost_ranks: Vec<u64>) -> Diagnosis {
    let classes = gather
        .classes
        .iter()
        .map(|class| DiagnosedClass {
            frames: class
                .path
                .iter()
                .map(|&f| gather.frames.name(f).to_string())
                .collect(),
            ranks: class.tasks.clone(),
        })
        .collect();
    Diagnosis {
        tasks,
        lost_ranks,
        classes,
    }
}

impl SessionReport {
    /// The diagnosis this (non-degraded) session produced, ready for a
    /// [`appsim::scenario::GroundTruth::check`].
    pub fn diagnosis(&self) -> Diagnosis {
        let tasks = self
            .gather
            .tree_3d
            .tasks(self.gather.tree_3d.root())
            .count();
        diagnose(&self.gather, tasks, Vec::new())
    }
}

/// Everything one scenario run produced: the verdict plus enough context to
/// report *how* the pipeline got there.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The scenario that ran.
    pub scenario: &'static str,
    /// Daemons the planned topology started with.
    pub daemons: u32,
    /// Daemons lost to the scenario's overlay faults (0 for a healthy overlay).
    pub lost_backends: usize,
    /// The diagnosis the merged tree produced.
    pub diagnosis: Diagnosis,
    /// The ground truth's judgement of that diagnosis.
    pub verdict: Verdict,
}

/// Run one scenario through the full pipeline with the paper's default
/// (hierarchical) representation.  See [`run_scenario_with`].
pub fn run_scenario(
    cluster: &Cluster,
    scenario: &FaultScenario,
    samples_per_task: u32,
) -> Result<ScenarioRun, StatError> {
    run_scenario_with(
        cluster,
        scenario,
        samples_per_task,
        Representation::HierarchicalTaskList,
    )
}

/// Run one scenario with a planner-chosen topology and an explicit
/// representation.  See [`run_scenario_in`] for callers that have already
/// configured a session (pinned topology, emulator settings, ...).
pub fn run_scenario_with(
    cluster: &Cluster,
    scenario: &FaultScenario,
    samples_per_task: u32,
    representation: Representation,
) -> Result<ScenarioRun, StatError> {
    let session = Session::builder(cluster.clone())
        .representation(representation)
        .plan_topology()
        .samples_per_task(samples_per_task)
        .build();
    run_scenario_in(&session, scenario)
}

/// Run one scenario through an already-configured [`Session`] — whatever
/// topology choice (pinned, planned or paper-default), representation and
/// sampling depth the session carries is what the scenario executes under —
/// and judge the result against the scenario's ground truth.
pub fn run_scenario_in(
    session: &Session,
    scenario: &FaultScenario,
) -> Result<ScenarioRun, StatError> {
    let app = scenario.app.as_ref();
    let tasks = app.num_tasks();
    let samples_per_task = session.samples_per_task();
    let representation = session.representation();

    if scenario.overlay_faults.is_empty() {
        let report = session.attach(app)?;
        let diagnosis = diagnose(&report.gather, tasks, Vec::new());
        let verdict = scenario.truth.check(scenario.name, &diagnosis);
        return Ok(ScenarioRun {
            scenario: scenario.name,
            daemons: report.daemons,
            lost_backends: 0,
            diagnosis,
            verdict,
        });
    }

    // Degraded path: prune the session's overlay, sample only the survivors,
    // merge them over the tracker's replacement shape.
    let spec = session.topology_for(tasks);
    let topology = Topology::build(spec.clone());
    let mut tracker = FaultTracker::new(topology.clone());
    for fault in &scenario.overlay_faults {
        tracker.fail(resolve_fault(&topology, *fault));
    }

    let total_backends = topology.backends().len();
    let surviving = tracker.surviving_backend_indices();
    let degraded_spec = tracker
        .degraded_shape()
        .ok_or(StatError::SessionNotViable {
            lost_backends: total_backends - surviving.len(),
            total_backends,
        })?;

    let daemons = StatDaemon::partition(tasks, spec.backends());
    let surviving_set: std::collections::BTreeSet<usize> = surviving.iter().copied().collect();
    let lost_ranks: Vec<u64> = daemons
        .iter()
        .enumerate()
        .filter(|(i, _)| !surviving_set.contains(i))
        .flat_map(|(_, d)| d.ranks.iter().copied())
        .collect();

    // Only the survivors spend sampling time: a dead daemon gathers nothing.
    let strategy = representation.strategy();
    let degraded_topology = Topology::build(degraded_spec.clone());
    let contributions: Vec<DaemonContribution> = surviving
        .iter()
        .zip(degraded_topology.backends())
        .map(|(&idx, &leaf)| strategy.contribute(&daemons[idx], app, samples_per_task, leaf))
        .collect();

    let merge_session = Session::builder(session.cluster().clone())
        .representation(representation)
        .topology(degraded_spec)
        .samples_per_task(samples_per_task)
        .build();
    let gather = merge_session.merge(contributions, tasks)?;
    let diagnosis = diagnose(&gather, tasks, lost_ranks);
    let verdict = scenario.truth.check(scenario.name, &diagnosis);
    Ok(ScenarioRun {
        scenario: scenario.name,
        daemons: spec.backends(),
        lost_backends: total_backends - surviving.len(),
        diagnosis,
        verdict,
    })
}

/// Resolve a scenario's abstract overlay fault to a concrete endpoint of the
/// planned topology.
fn resolve_fault(topology: &Topology, fault: OverlayFault) -> EndpointId {
    match fault {
        OverlayFault::BackendFromEnd(i) => {
            let backends = topology.backends();
            backends[backends.len() - 1 - i.min(backends.len() - 1)]
        }
        OverlayFault::CommProcessFromEnd(i) => {
            let comm = topology.comm_processes();
            if comm.is_empty() {
                // A flat tree has no comm processes to kill; degrade a daemon so
                // the scenario still exercises the pruned path.
                let backends = topology.backends();
                backends[backends.len() - 1]
            } else {
                comm[comm.len() - 1 - i.min(comm.len() - 1)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::scenario::catalogue;
    use appsim::FrameVocabulary;

    fn cluster() -> Cluster {
        Cluster::test_cluster(32, 8)
    }

    #[test]
    fn the_ring_hang_scenario_is_diagnosed_end_to_end() {
        let scenarios = catalogue(256, FrameVocabulary::BlueGeneL);
        let ring = scenarios.iter().find(|s| s.name == "ring_hang").unwrap();
        let run = run_scenario(&cluster(), ring, 3).unwrap();
        assert!(run.verdict.passed(), "{}", run.verdict);
        assert_eq!(run.lost_backends, 0);
        // The checker saw the real classes, by name.
        assert!(run
            .diagnosis
            .classes
            .iter()
            .any(|c| c.frames.iter().any(|f| f == "do_SendOrStall")));
    }

    #[test]
    fn a_degraded_scenario_reports_its_lost_ranks_and_still_passes() {
        let scenarios = catalogue(256, FrameVocabulary::Linux);
        let degraded = scenarios
            .iter()
            .find(|s| s.name == "ring_hang_daemon_loss")
            .unwrap();
        let run = run_scenario(&cluster(), degraded, 2).unwrap();
        assert!(run.verdict.passed(), "{}", run.verdict);
        assert!(run.lost_backends > 0);
        assert!(!run.diagnosis.lost_ranks.is_empty());
        // The lost ranks are exactly the tail daemon's slice: high ranks, so the
        // injected bug (ranks 1 and 2) stayed covered.
        assert!(run.diagnosis.lost_ranks.iter().all(|&r| r > 2));
        let covered: u64 = run
            .diagnosis
            .classes
            .iter()
            .map(|c| c.ranks.len() as u64)
            .sum();
        assert!(covered >= 256 - run.diagnosis.lost_ranks.len() as u64);
    }

    #[test]
    fn both_representations_reach_the_same_verdicts() {
        let scenarios = catalogue(128, FrameVocabulary::Linux);
        for scenario in &scenarios {
            let hier = run_scenario_with(
                &cluster(),
                scenario,
                3,
                Representation::HierarchicalTaskList,
            )
            .unwrap();
            let dense = run_scenario_with(&cluster(), scenario, 3, Representation::GlobalBitVector)
                .unwrap();
            assert!(hier.verdict.passed(), "{}", hier.verdict);
            assert!(dense.verdict.passed(), "{}", dense.verdict);
            assert_eq!(hier.diagnosis.classes.len(), dense.diagnosis.classes.len());
        }
    }

    #[test]
    fn a_wrong_diagnosis_is_rejected_not_papered_over() {
        // Cross-wire a scenario: run the deadlock app against the ring hang's
        // ground truth.  The harness must say FAIL, not find a way to pass.
        let scenarios = catalogue(128, FrameVocabulary::Linux);
        let ring = scenarios.iter().find(|s| s.name == "ring_hang").unwrap();
        let deadlock = scenarios
            .iter()
            .find(|s| s.name == "deadlock_pair")
            .unwrap();
        let mut crossed = deadlock.clone();
        crossed.truth = ring.truth.clone();
        let run = run_scenario(&cluster(), &crossed, 3).unwrap();
        assert!(!run.verdict.passed());
        assert!(run.verdict.failures().iter().any(|c| c.name == "isolation"));
    }

    #[test]
    fn losing_every_daemon_is_an_error_not_a_panic() {
        let scenarios = catalogue(64, FrameVocabulary::Linux);
        let mut doomed = scenarios
            .iter()
            .find(|s| s.name == "ring_hang")
            .unwrap()
            .clone();
        // More faults than the topology has backends: every daemon dies.
        let backends = Session::builder(cluster())
            .plan_topology()
            .build()
            .topology_for(64)
            .backends() as usize;
        doomed.overlay_faults = (0..backends)
            .map(appsim::scenario::OverlayFault::BackendFromEnd)
            .collect();
        let err = run_scenario(&cluster(), &doomed, 1).unwrap_err();
        assert!(matches!(err, StatError::SessionNotViable { .. }));
        assert!(err.to_string().contains("no degraded session"));
    }
}
