//! Task-set representations: the heart of the Section V lesson.
//!
//! Every edge of STAT's call-graph prefix tree is labelled with the set of MPI tasks
//! whose stacks contain that edge.  How that set is *represented* decides whether the
//! tool scales:
//!
//! * The original STAT used a **global bit vector** ([`DenseBitVector`]): one bit per
//!   task of the whole job, on every edge, at every level of the tree.  At a million
//!   cores that is a megabit per edge, almost all of it zeros for any given daemon —
//!   "the tool unnecessarily tracks and sends many zero bits".
//!
//! * The optimised STAT uses a **hierarchical task list** ([`SubtreeTaskList`]): each
//!   analysis node only represents the tasks in its own subtree, children are merged
//!   by simple concatenation, and only the front end — after a final *remap* into MPI
//!   rank order — ever materialises a job-wide view.
//!
//! Both are implemented here for real, behind the [`TaskSetOps`] trait so the prefix
//! tree, the merge filter and the benchmarks can run the same algorithm over either
//! representation and measure the difference instead of asserting it.

use std::fmt;

/// Operations a task-set representation must support for prefix-tree merging.
pub trait TaskSetOps: Clone + fmt::Debug {
    /// An empty set over a domain of `width` positions.
    fn empty(width: u64) -> Self;

    /// A singleton set.
    fn singleton(width: u64, index: u64) -> Self {
        let mut s = Self::empty(width);
        s.insert(index);
        s
    }

    /// Insert a position (a global MPI rank for the dense representation, a
    /// subtree-local position for the hierarchical one).
    fn insert(&mut self, index: u64);

    /// The domain width this set is defined over.
    fn width(&self) -> u64;

    /// Number of members.
    fn count(&self) -> u64;

    /// Whether a position is a member.
    fn contains(&self, index: u64) -> bool;

    /// Members in ascending order.
    fn members(&self) -> Vec<u64>;

    /// Union with another set over the same domain.
    fn union_in_place(&mut self, other: &Self);

    /// Re-embed this set into a wider domain, shifting every member by `offset`.
    /// This is the concatenation step of the hierarchical merge; the dense
    /// representation never changes domain, so its implementation only checks that
    /// the call is the identity.
    fn rebase(&mut self, offset: u64, new_width: u64);

    /// Bytes this set occupies in a serialised prefix tree.
    fn serialized_bytes(&self) -> u64;
}

// ---------------------------------------------------------------------------------
// Dense, job-wide bit vector (the original representation)
// ---------------------------------------------------------------------------------

/// A fixed-width bit vector sized for the entire job.
#[derive(Clone, PartialEq, Eq)]
pub struct DenseBitVector {
    width: u64,
    words: Vec<u64>,
}

impl DenseBitVector {
    fn word_count(width: u64) -> usize {
        width.div_ceil(64) as usize
    }

    /// Direct access to the packed words (used by serialisation).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstruct from packed words (used by deserialisation).
    pub fn from_words(width: u64, words: Vec<u64>) -> Self {
        let mut v = DenseBitVector { width, words };
        v.words.resize(Self::word_count(width), 0);
        v
    }
}

impl TaskSetOps for DenseBitVector {
    fn empty(width: u64) -> Self {
        DenseBitVector {
            width,
            words: vec![0; Self::word_count(width)],
        }
    }

    fn insert(&mut self, index: u64) {
        assert!(
            index < self.width,
            "rank {index} out of range for a {}-task job",
            self.width
        );
        self.words[(index / 64) as usize] |= 1u64 << (index % 64);
    }

    fn width(&self) -> u64 {
        self.width
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn contains(&self, index: u64) -> bool {
        if index >= self.width {
            return false;
        }
        self.words[(index / 64) as usize] & (1u64 << (index % 64)) != 0
    }

    fn members(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.count() as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as u64;
                out.push(wi as u64 * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    fn union_in_place(&mut self, other: &Self) {
        assert_eq!(
            self.width, other.width,
            "dense bit vectors must share the job-wide domain"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    fn rebase(&mut self, offset: u64, new_width: u64) {
        // The whole point of the dense representation is that the domain never
        // changes: every node in the tree uses the job-wide width.
        assert_eq!(offset, 0, "dense bit vectors are never offset");
        assert_eq!(
            new_width, self.width,
            "dense bit vectors are already job-wide"
        );
    }

    fn serialized_bytes(&self) -> u64 {
        // 8-byte width header plus the full bitmap — including all the zero bits for
        // tasks this subtree never saw.  That is the Section V problem.
        8 + self.width.div_ceil(8)
    }
}

impl fmt::Debug for DenseBitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseBitVector({}/{})", self.count(), self.width)
    }
}

// ---------------------------------------------------------------------------------
// Hierarchical, subtree-local task list (the optimised representation)
// ---------------------------------------------------------------------------------

/// A task set that only describes positions within its own subtree.
///
/// Internally it is a subtree-local bit vector (the paper's optimised representation
/// keeps bit vectors too, just narrow ones), which makes concatenation an offset plus
/// a bitmap append and keeps the serialised size proportional to the subtree.
#[derive(Clone, PartialEq, Eq)]
pub struct SubtreeTaskList {
    width: u64,
    words: Vec<u64>,
}

impl SubtreeTaskList {
    fn word_count(width: u64) -> usize {
        width.div_ceil(64) as usize
    }

    /// Direct access to the packed words (used by serialisation).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstruct from packed words (used by deserialisation).
    pub fn from_words(width: u64, words: Vec<u64>) -> Self {
        let mut v = SubtreeTaskList { width, words };
        v.words.resize(Self::word_count(width), 0);
        v
    }

    /// Remap this subtree-local set into a job-wide dense bit vector, given the
    /// position→rank map collected at setup time.  This is the front end's remap
    /// step; its cost is reported alongside Figure 7 (0.66 s at 208K in the paper).
    pub fn remap_to_dense(&self, position_to_rank: &[u64], total_tasks: u64) -> DenseBitVector {
        let mut dense = DenseBitVector::empty(total_tasks);
        for pos in self.members() {
            let rank = position_to_rank
                .get(pos as usize)
                .copied()
                .expect("position→rank map must cover every subtree position");
            dense.insert(rank);
        }
        dense
    }
}

impl TaskSetOps for SubtreeTaskList {
    fn empty(width: u64) -> Self {
        SubtreeTaskList {
            width,
            words: vec![0; Self::word_count(width)],
        }
    }

    fn insert(&mut self, index: u64) {
        assert!(
            index < self.width,
            "position {index} out of range for a {}-task subtree",
            self.width
        );
        self.words[(index / 64) as usize] |= 1u64 << (index % 64);
    }

    fn width(&self) -> u64 {
        self.width
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn contains(&self, index: u64) -> bool {
        if index >= self.width {
            return false;
        }
        self.words[(index / 64) as usize] & (1u64 << (index % 64)) != 0
    }

    fn members(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.count() as usize);
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as u64;
                out.push(wi as u64 * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    fn union_in_place(&mut self, other: &Self) {
        assert_eq!(
            self.width, other.width,
            "subtree task lists must be rebased to a common domain before union"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    fn rebase(&mut self, offset: u64, new_width: u64) {
        assert!(
            offset + self.width <= new_width,
            "rebase would push positions past the new domain"
        );
        let mut widened = SubtreeTaskList::empty(new_width);
        for pos in self.members() {
            widened.insert(pos + offset);
        }
        *self = widened;
    }

    fn serialized_bytes(&self) -> u64 {
        // 8-byte width header plus a bitmap covering only this subtree's tasks.
        8 + self.width.div_ceil(8)
    }
}

impl fmt::Debug for SubtreeTaskList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubtreeTaskList({}/{})", self.count(), self.width)
    }
}

// ---------------------------------------------------------------------------------
// Rank-range formatting (the "1022:[0,3-1023]" labels of Figure 1)
// ---------------------------------------------------------------------------------

/// Format a sorted rank list the way STAT's visualisation does: `count:[a,b-c,...]`,
/// truncated with `...` past `max_ranges` ranges (Figure 1 truncates long lists).
pub fn format_rank_ranges(ranks: &[u64], max_ranges: usize) -> String {
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for &r in ranks {
        match ranges.last_mut() {
            Some((_, end)) if *end + 1 == r => *end = r,
            _ => ranges.push((r, r)),
        }
    }
    let mut shown: Vec<String> = ranges
        .iter()
        .take(max_ranges)
        .map(|(a, b)| {
            if a == b {
                a.to_string()
            } else {
                format!("{a}-{b}")
            }
        })
        .collect();
    if ranges.len() > max_ranges {
        shown.push("...".to_string());
    }
    format!("{}:[{}]", ranks.len(), shown.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basic_ops<S: TaskSetOps>(width: u64) {
        let mut s = S::empty(width);
        assert_eq!(s.count(), 0);
        assert_eq!(s.width(), width);
        s.insert(0);
        s.insert(width - 1);
        s.insert(width / 2);
        assert_eq!(s.count(), 3);
        assert!(s.contains(0));
        assert!(s.contains(width - 1));
        assert!(!s.contains(1));
        assert_eq!(s.members(), vec![0, width / 2, width - 1]);
        let single = S::singleton(width, 5);
        assert_eq!(single.count(), 1);
        assert!(single.contains(5));
    }

    #[test]
    fn dense_and_hierarchical_share_basic_behaviour() {
        check_basic_ops::<DenseBitVector>(1_000);
        check_basic_ops::<SubtreeTaskList>(1_000);
        check_basic_ops::<DenseBitVector>(64);
        check_basic_ops::<SubtreeTaskList>(65);
    }

    #[test]
    fn dense_union_is_bitwise_or() {
        let mut a = DenseBitVector::empty(256);
        a.insert(1);
        a.insert(100);
        let mut b = DenseBitVector::empty(256);
        b.insert(100);
        b.insert(255);
        a.union_in_place(&b);
        assert_eq!(a.members(), vec![1, 100, 255]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_rejects_out_of_range_ranks() {
        let mut a = DenseBitVector::empty(10);
        a.insert(10);
    }

    #[test]
    fn dense_serialized_size_is_job_wide_regardless_of_population() {
        let empty = DenseBitVector::empty(212_992);
        let mut one = DenseBitVector::empty(212_992);
        one.insert(7);
        assert_eq!(empty.serialized_bytes(), one.serialized_bytes());
        // 212,992 bits = 26,624 bytes (+8 header): the megabit-per-edge problem in
        // miniature.
        assert_eq!(empty.serialized_bytes(), 8 + 26_624);
    }

    #[test]
    fn subtree_serialized_size_tracks_the_subtree() {
        let daemon_local = SubtreeTaskList::empty(128);
        let full_job = DenseBitVector::empty(212_992);
        assert!(daemon_local.serialized_bytes() * 100 < full_job.serialized_bytes());
    }

    #[test]
    fn rebase_concatenates_domains() {
        // Daemon 0 saw its local tasks {0, 2}; daemon 1 saw {1}.  After the merge the
        // combined subtree has 4 positions: daemon 0's two, then daemon 1's two.
        let mut a = SubtreeTaskList::empty(2);
        a.insert(0);
        a.insert(1);
        let mut b = SubtreeTaskList::empty(2);
        b.insert(1);
        a.rebase(0, 4);
        let mut b2 = b.clone();
        b2.rebase(2, 4);
        a.union_in_place(&b2);
        assert_eq!(a.members(), vec![0, 1, 3]);
        assert_eq!(a.width(), 4);
    }

    #[test]
    #[should_panic(expected = "rebase would push positions past")]
    fn rebase_rejects_overflowing_offsets() {
        let mut a = SubtreeTaskList::empty(8);
        a.insert(0);
        a.rebase(5, 10);
    }

    #[test]
    fn dense_rebase_is_identity_only() {
        let mut a = DenseBitVector::empty(100);
        a.insert(3);
        a.rebase(0, 100); // fine
        assert!(a.contains(3));
    }

    #[test]
    #[should_panic(expected = "never offset")]
    fn dense_rebase_with_offset_panics() {
        let mut a = DenseBitVector::empty(100);
        a.rebase(10, 110);
    }

    #[test]
    fn remap_restores_mpi_rank_order() {
        // Figure 6's example: daemon 0 debugs tasks {0, 2}, daemon 1 debugs {1, 3}.
        // Positions after concatenation are [d0t0, d0t1, d1t0, d1t1] = ranks [0,2,1,3].
        let position_to_rank = vec![0u64, 2, 1, 3];
        let mut set = SubtreeTaskList::empty(4);
        set.insert(1); // daemon 0's second task  -> rank 2
        set.insert(2); // daemon 1's first task   -> rank 1
        let dense = set.remap_to_dense(&position_to_rank, 4);
        assert_eq!(dense.members(), vec![1, 2]);
        assert_eq!(dense.width(), 4);
    }

    #[test]
    fn word_round_trip() {
        let mut d = DenseBitVector::empty(130);
        d.insert(0);
        d.insert(64);
        d.insert(129);
        let back = DenseBitVector::from_words(130, d.words().to_vec());
        assert_eq!(back.members(), d.members());

        let mut s = SubtreeTaskList::empty(70);
        s.insert(69);
        let back = SubtreeTaskList::from_words(70, s.words().to_vec());
        assert_eq!(back.members(), vec![69]);
    }

    #[test]
    fn rank_range_formatting_matches_figure_1_style() {
        let ranks: Vec<u64> = std::iter::once(0).chain(3..=1023).collect();
        assert_eq!(format_rank_ranges(&ranks, 10), "1022:[0,3-1023]");
        assert_eq!(format_rank_ranges(&[1], 10), "1:[1]");
        assert_eq!(format_rank_ranges(&[], 10), "0:[]");
        // Truncation with an ellipsis, as in the figure's long labels.
        let scattered: Vec<u64> = (0..20).map(|i| i * 2).collect();
        let label = format_rank_ranges(&scattered, 4);
        assert!(label.starts_with("20:["));
        assert!(label.ends_with(",...]"));
    }
}
