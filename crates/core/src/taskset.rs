//! Task-set representations: the heart of the Section V lesson.
//!
//! Every edge of STAT's call-graph prefix tree is labelled with the set of MPI tasks
//! whose stacks contain that edge.  How that set is *represented* decides whether the
//! tool scales:
//!
//! * The original STAT used a **global bit vector** ([`DenseBitVector`]): one bit per
//!   task of the whole job, on every edge, at every level of the tree.  At a million
//!   cores that is a megabit per edge, almost all of it zeros for any given daemon —
//!   "the tool unnecessarily tracks and sends many zero bits".
//!
//! * The optimised STAT uses a **hierarchical task list** ([`SubtreeTaskList`]): each
//!   analysis node only represents the tasks in its own subtree, children are merged
//!   by simple concatenation, and only the front end — after a final *remap* into MPI
//!   rank order — ever materialises a job-wide view.
//!
//! Both are implemented here for real, behind the [`TaskSetOps`] trait so the prefix
//! tree, the merge filter and the benchmarks can run the same algorithm over either
//! representation and measure the difference instead of asserting it.
//!
//! ## Word-level concatenation
//!
//! Since ISSUE 4 the hierarchical concatenation is a *word* operation, not a member
//! operation: [`TaskSetOps::union_shifted`] ORs the other set's packed words into
//! this one at a bit offset (two shifts and an OR per word), and
//! [`TaskSetOps::rebase`] re-embeds a set into a wider domain the same way.  Merging
//! two subtree trees therefore costs O(words), independent of how many members the
//! sets hold — at 208K tasks that is ~3,300 `u64`s per edge instead of 212,992
//! individual inserts.  [`TaskSetOps::iter_members`] walks members without
//! materialising a `Vec`, and [`SubtreeTaskList::remap_to_dense`] recognises the
//! contiguous runs a daemon-ordered rank map is made of and copies them word by
//! word.  `results/BENCH_merge.md` records what these rewrites bought.

use std::fmt;

/// Operations a task-set representation must support for prefix-tree merging.
pub trait TaskSetOps: Clone + fmt::Debug {
    /// An empty set over a domain of `width` positions.
    fn empty(width: u64) -> Self;

    /// A singleton set.
    fn singleton(width: u64, index: u64) -> Self {
        let mut s = Self::empty(width);
        s.insert(index);
        s
    }

    /// Insert a position (a global MPI rank for the dense representation, a
    /// subtree-local position for the hierarchical one).
    fn insert(&mut self, index: u64);

    /// The domain width this set is defined over.
    fn width(&self) -> u64;

    /// Number of members.
    fn count(&self) -> u64;

    /// Whether a position is a member.
    fn contains(&self, index: u64) -> bool;

    /// Members in ascending order, without allocating.
    ///
    /// Every internal caller that used to call [`TaskSetOps::members`] and throw the
    /// `Vec` away walks this instead.
    fn iter_members(&self) -> MemberIter<'_>;

    /// Members in ascending order, collected into a `Vec` (for presentation-layer
    /// callers that genuinely need one).
    fn members(&self) -> Vec<u64> {
        self.iter_members().collect()
    }

    /// Union with another set over the same domain.
    fn union_in_place(&mut self, other: &Self);

    /// Remove `other`'s members from this set (set difference over the same
    /// domain) — one AND-NOT per word.  This is the delta computation of the
    /// streaming path: the bits a wave added are `wave & !previous`.
    fn subtract(&mut self, other: &Self);

    /// Whether the set has no members (O(words), no popcount accumulation).
    fn is_empty_set(&self) -> bool;

    /// OR `other`'s members into this set, shifted up by `offset` positions — the
    /// word-level concatenation step of the hierarchical merge (O(words), not
    /// O(members)).  Requires `offset + other.width() <= self.width()`.  The dense
    /// representation never changes domain, so it only accepts `offset == 0`, where
    /// this is a plain union.
    fn union_shifted(&mut self, other: &Self, offset: u64);

    /// Re-embed this set into a wider domain, shifting every member by `offset`.
    /// This is the concatenation step of the hierarchical merge, done at word level:
    /// `offset == 0` is an in-place widen (no per-member work at all), any other
    /// offset is a shifted word copy.  The dense representation never changes
    /// domain, so its implementation only checks that the call is the identity.
    fn rebase(&mut self, offset: u64, new_width: u64);

    /// Bytes this set occupies in a serialised prefix tree.
    fn serialized_bytes(&self) -> u64;
}

/// Allocation-free iterator over the members of a packed-word task set, ascending.
///
/// The length is exact (a popcount taken at construction), so `collect::<Vec<_>>()`
/// — the default [`TaskSetOps::members`] — allocates once.
#[derive(Clone, Debug)]
pub struct MemberIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    remaining: usize,
}

impl<'a> MemberIter<'a> {
    fn new(words: &'a [u64]) -> Self {
        MemberIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
            // stat-analyzer: allow(truncating-cast) — count_ones of a u64 is at most 64
            remaining: words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }
}

impl Iterator for MemberIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as u64;
        self.current &= self.current - 1;
        self.remaining -= 1;
        Some(self.word_idx as u64 * 64 + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for MemberIter<'_> {}

// ---------------------------------------------------------------------------------
// Shared word-level machinery (both representations pack members into u64 words)
// ---------------------------------------------------------------------------------

fn words_for(width: u64) -> usize {
    // stat-analyzer: allow(truncating-cast) — a domain whose words fit in memory has ≤ usize::MAX words; wider domains fail at Vec allocation, not silently
    width.div_ceil(64) as usize
}

/// Word index of a bit position.  The one audited `u64`→`usize` cast for word
/// indexing: any position that can address an in-memory `Vec<u64>` of words
/// satisfies `bit / 64 < words.len()`, and `words.len()` is a `usize`.
fn word_of(bit: u64) -> usize {
    // stat-analyzer: allow(truncating-cast) — quotient is bounded by the word vector's usize length
    (bit / 64) as usize
}

/// Offset of a bit position within its word — always `< 64`.
fn bit_of(bit: u64) -> u32 {
    // stat-analyzer: allow(truncating-cast) — a remainder mod 64 fits any integer type
    (bit % 64) as u32
}

/// Set one bit; out-of-range positions are a no-op (callers assert range first).
fn set_bit(words: &mut [u64], index: u64) {
    if let Some(w) = words.get_mut(word_of(index)) {
        *w |= 1u64 << bit_of(index);
    }
}

/// Test one bit; out-of-range positions read as unset.
fn get_bit(words: &[u64], index: u64) -> bool {
    words
        .get(word_of(index))
        .is_some_and(|w| w & (1u64 << bit_of(index)) != 0)
}

/// Zero any bits at or above `width` in the last word, so a malformed packet can
/// never corrupt `count`/`members`.
fn mask_stray_bits(width: u64, words: &mut [u64]) {
    let used = bit_of(width);
    if used != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << used) - 1;
        }
    }
}

/// OR `src`'s words into `dst` at a bit offset: two shifts and an OR per word.
/// Requires `dst` to be wide enough for every set bit of `src` shifted by `offset`
/// (callers assert the domain arithmetic; `src` carries no stray bits above its
/// width by construction).
// stat-analyzer: allow(hot-path-panic, fn) — every caller asserts offset + src domain ≤ dst domain before calling, so word_off + src.len() ≤ dst.len()
fn or_shifted(dst: &mut [u64], src: &[u64], offset: u64) {
    let word_off = word_of(offset);
    let bit_off = bit_of(offset);
    if bit_off == 0 {
        for (d, &s) in dst[word_off..].iter_mut().zip(src.iter()) {
            *d |= s;
        }
    } else {
        for (i, &s) in src.iter().enumerate() {
            dst[word_off + i] |= s << bit_off;
            let carry = s >> (64 - bit_off);
            if carry != 0 {
                dst[word_off + i + 1] |= carry;
            }
        }
    }
}

// ---------------------------------------------------------------------------------
// Dense, job-wide bit vector (the original representation)
// ---------------------------------------------------------------------------------

/// A fixed-width bit vector sized for the entire job.
#[derive(Clone, PartialEq, Eq)]
pub struct DenseBitVector {
    width: u64,
    words: Vec<u64>,
}

impl DenseBitVector {
    /// Direct access to the packed words (used by serialisation).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstruct from packed words (used by deserialisation).
    ///
    /// Stray bits at or above `width` in the last word are masked off and a word
    /// vector longer than the domain requires is rejected, so a malformed packet
    /// cannot corrupt `count`/`members`.
    pub fn from_words(width: u64, words: Vec<u64>) -> Self {
        assert!(
            words.len() <= words_for(width),
            "{} words is more than a {width}-task domain can hold",
            words.len()
        );
        let mut v = DenseBitVector { width, words };
        v.words.resize(words_for(width), 0);
        mask_stray_bits(width, &mut v.words);
        v
    }
}

impl TaskSetOps for DenseBitVector {
    fn empty(width: u64) -> Self {
        DenseBitVector {
            width,
            words: vec![0; words_for(width)],
        }
    }

    fn insert(&mut self, index: u64) {
        assert!(
            index < self.width,
            "rank {index} out of range for a {}-task job",
            self.width
        );
        set_bit(&mut self.words, index);
    }

    fn width(&self) -> u64 {
        self.width
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn contains(&self, index: u64) -> bool {
        if index >= self.width {
            return false;
        }
        get_bit(&self.words, index)
    }

    fn iter_members(&self) -> MemberIter<'_> {
        MemberIter::new(&self.words)
    }

    fn union_in_place(&mut self, other: &Self) {
        assert_eq!(
            self.width, other.width,
            "dense bit vectors must share the job-wide domain"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    fn subtract(&mut self, other: &Self) {
        assert_eq!(
            self.width, other.width,
            "dense bit vectors must share the job-wide domain"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    fn is_empty_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn union_shifted(&mut self, other: &Self, offset: u64) {
        // The dense representation's domain is the whole job; a shifted union only
        // makes sense at offset zero, where it is a plain union.
        assert_eq!(offset, 0, "dense bit vectors are never offset");
        self.union_in_place(other);
    }

    fn rebase(&mut self, offset: u64, new_width: u64) {
        // The whole point of the dense representation is that the domain never
        // changes: every node in the tree uses the job-wide width.
        assert_eq!(offset, 0, "dense bit vectors are never offset");
        assert_eq!(
            new_width, self.width,
            "dense bit vectors are already job-wide"
        );
    }

    fn serialized_bytes(&self) -> u64 {
        // 8-byte width header plus the full bitmap — including all the zero bits for
        // tasks this subtree never saw.  That is the Section V problem.
        8 + self.width.div_ceil(8)
    }
}

impl fmt::Debug for DenseBitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseBitVector({}/{})", self.count(), self.width)
    }
}

// ---------------------------------------------------------------------------------
// Hierarchical, subtree-local task list (the optimised representation)
// ---------------------------------------------------------------------------------

/// A task set that only describes positions within its own subtree.
///
/// Internally it is a subtree-local bit vector (the paper's optimised representation
/// keeps bit vectors too, just narrow ones), which makes concatenation an offset plus
/// a bitmap append and keeps the serialised size proportional to the subtree.
#[derive(Clone, PartialEq, Eq)]
pub struct SubtreeTaskList {
    width: u64,
    words: Vec<u64>,
}

impl SubtreeTaskList {
    /// Direct access to the packed words (used by serialisation).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstruct from packed words (used by deserialisation).
    ///
    /// Stray bits at or above `width` in the last word are masked off and a word
    /// vector longer than the domain requires is rejected, so a malformed packet
    /// cannot corrupt `count`/`members`.
    pub fn from_words(width: u64, words: Vec<u64>) -> Self {
        assert!(
            words.len() <= words_for(width),
            "{} words is more than a {width}-position domain can hold",
            words.len()
        );
        let mut v = SubtreeTaskList { width, words };
        v.words.resize(words_for(width), 0);
        mask_stray_bits(width, &mut v.words);
        v
    }

    /// Remap this subtree-local set into a job-wide dense bit vector, given the
    /// position→rank map collected at setup time.  This is the front end's remap
    /// step; its cost is reported alongside Figure 7 (0.66 s at 208K in the paper).
    ///
    /// A rank map is a concatenation of per-daemon rank lists, and daemons own
    /// contiguous rank blocks, so the map is mostly made of ascending runs: whenever
    /// a fully populated word of this set covers one, the 64 members are copied as
    /// one shifted word OR instead of 64 scattered inserts.  Arbitrary maps still
    /// work, member by member.
    pub fn remap_to_dense(&self, position_to_rank: &[u64], total_tasks: u64) -> DenseBitVector {
        assert!(
            position_to_rank.len() as u64 >= self.width,
            "position→rank map must cover every subtree position"
        );
        let mut dense = DenseBitVector::empty(total_tasks);
        for (wi, &word) in self.words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let base = wi as u64 * 64;
            if word == u64::MAX {
                // Whole word populated: check whether the map carries this block as
                // one ascending run (a single vectorisable scan of 64 entries).
                let seg = usize::try_from(base).ok().and_then(|b| {
                    let end = b.checked_add(64)?;
                    position_to_rank.get(b..end)
                });
                if let Some((&start, seg)) = seg.and_then(|seg| seg.split_first()) {
                    if start + 64 <= total_tasks
                        && seg
                            .iter()
                            .enumerate()
                            .all(|(i, &rank)| rank == start + 1 + i as u64)
                    {
                        or_shifted(&mut dense.words, std::slice::from_ref(&u64::MAX), start);
                        continue;
                    }
                }
            }
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as u64;
                w &= w - 1;
                let rank = usize::try_from(base + bit)
                    .ok()
                    .and_then(|p| position_to_rank.get(p));
                if let Some(&rank) = rank {
                    dense.insert(rank);
                }
            }
        }
        dense
    }
}

impl TaskSetOps for SubtreeTaskList {
    fn empty(width: u64) -> Self {
        SubtreeTaskList {
            width,
            words: vec![0; words_for(width)],
        }
    }

    fn insert(&mut self, index: u64) {
        assert!(
            index < self.width,
            "position {index} out of range for a {}-task subtree",
            self.width
        );
        set_bit(&mut self.words, index);
    }

    fn width(&self) -> u64 {
        self.width
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn contains(&self, index: u64) -> bool {
        if index >= self.width {
            return false;
        }
        get_bit(&self.words, index)
    }

    fn iter_members(&self) -> MemberIter<'_> {
        MemberIter::new(&self.words)
    }

    fn union_in_place(&mut self, other: &Self) {
        assert_eq!(
            self.width, other.width,
            "subtree task lists must be rebased to a common domain before union"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    fn subtract(&mut self, other: &Self) {
        assert_eq!(
            self.width, other.width,
            "subtree task lists must be rebased to a common domain before subtract"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
    }

    fn is_empty_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn union_shifted(&mut self, other: &Self, offset: u64) {
        assert!(
            offset + other.width <= self.width,
            "shifted union would push positions past this domain"
        );
        or_shifted(&mut self.words, &other.words, offset);
    }

    fn rebase(&mut self, offset: u64, new_width: u64) {
        assert!(
            offset + self.width <= new_width,
            "rebase would push positions past the new domain"
        );
        if offset == 0 {
            // In-place widen: the existing words already sit at the right
            // positions, the domain just grows (amortised by Vec's growth policy —
            // this is what the accumulated tree pays on every hierarchical merge).
            self.words.resize(words_for(new_width), 0);
            self.width = new_width;
            return;
        }
        if offset.is_multiple_of(64) {
            // Word-aligned shift: move the words up in place, zero the gap.
            let word_off = word_of(offset);
            let old_len = self.words.len();
            self.words.resize(words_for(new_width), 0);
            self.words.copy_within(0..old_len, word_off);
            if let Some(gap) = self.words.get_mut(..word_off.min(old_len)) {
                gap.fill(0);
            }
            self.width = new_width;
            return;
        }
        let mut words = vec![0u64; words_for(new_width)];
        or_shifted(&mut words, &self.words, offset);
        self.words = words;
        self.width = new_width;
    }

    fn serialized_bytes(&self) -> u64 {
        // 8-byte width header plus a bitmap covering only this subtree's tasks.
        8 + self.width.div_ceil(8)
    }
}

impl fmt::Debug for SubtreeTaskList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubtreeTaskList({}/{})", self.count(), self.width)
    }
}

// ---------------------------------------------------------------------------------
// Rank-range formatting (the "1022:[0,3-1023]" labels of Figure 1)
// ---------------------------------------------------------------------------------

/// Format a sorted rank list the way STAT's visualisation does: `count:[a,b-c,...]`,
/// truncated with `...` past `max_ranges` ranges (Figure 1 truncates long lists).
pub fn format_rank_ranges(ranks: &[u64], max_ranges: usize) -> String {
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for &r in ranks {
        match ranges.last_mut() {
            Some((_, end)) if *end + 1 == r => *end = r,
            _ => ranges.push((r, r)),
        }
    }
    let mut shown: Vec<String> = ranges
        .iter()
        .take(max_ranges)
        .map(|(a, b)| {
            if a == b {
                a.to_string()
            } else {
                format!("{a}-{b}")
            }
        })
        .collect();
    if ranges.len() > max_ranges {
        shown.push("...".to_string());
    }
    format!("{}:[{}]", ranks.len(), shown.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basic_ops<S: TaskSetOps>(width: u64) {
        let mut s = S::empty(width);
        assert_eq!(s.count(), 0);
        assert_eq!(s.width(), width);
        s.insert(0);
        s.insert(width - 1);
        s.insert(width / 2);
        assert_eq!(s.count(), 3);
        assert!(s.contains(0));
        assert!(s.contains(width - 1));
        assert!(!s.contains(1));
        assert_eq!(s.members(), vec![0, width / 2, width - 1]);
        let single = S::singleton(width, 5);
        assert_eq!(single.count(), 1);
        assert!(single.contains(5));
    }

    #[test]
    fn dense_and_hierarchical_share_basic_behaviour() {
        check_basic_ops::<DenseBitVector>(1_000);
        check_basic_ops::<SubtreeTaskList>(1_000);
        check_basic_ops::<DenseBitVector>(64);
        check_basic_ops::<SubtreeTaskList>(65);
    }

    #[test]
    fn dense_union_is_bitwise_or() {
        let mut a = DenseBitVector::empty(256);
        a.insert(1);
        a.insert(100);
        let mut b = DenseBitVector::empty(256);
        b.insert(100);
        b.insert(255);
        a.union_in_place(&b);
        assert_eq!(a.members(), vec![1, 100, 255]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_rejects_out_of_range_ranks() {
        let mut a = DenseBitVector::empty(10);
        a.insert(10);
    }

    #[test]
    fn dense_serialized_size_is_job_wide_regardless_of_population() {
        let empty = DenseBitVector::empty(212_992);
        let mut one = DenseBitVector::empty(212_992);
        one.insert(7);
        assert_eq!(empty.serialized_bytes(), one.serialized_bytes());
        // 212,992 bits = 26,624 bytes (+8 header): the megabit-per-edge problem in
        // miniature.
        assert_eq!(empty.serialized_bytes(), 8 + 26_624);
    }

    #[test]
    fn subtree_serialized_size_tracks_the_subtree() {
        let daemon_local = SubtreeTaskList::empty(128);
        let full_job = DenseBitVector::empty(212_992);
        assert!(daemon_local.serialized_bytes() * 100 < full_job.serialized_bytes());
    }

    #[test]
    fn rebase_concatenates_domains() {
        // Daemon 0 saw its local tasks {0, 2}; daemon 1 saw {1}.  After the merge the
        // combined subtree has 4 positions: daemon 0's two, then daemon 1's two.
        let mut a = SubtreeTaskList::empty(2);
        a.insert(0);
        a.insert(1);
        let mut b = SubtreeTaskList::empty(2);
        b.insert(1);
        a.rebase(0, 4);
        let mut b2 = b.clone();
        b2.rebase(2, 4);
        a.union_in_place(&b2);
        assert_eq!(a.members(), vec![0, 1, 3]);
        assert_eq!(a.width(), 4);
    }

    #[test]
    #[should_panic(expected = "rebase would push positions past")]
    fn rebase_rejects_overflowing_offsets() {
        let mut a = SubtreeTaskList::empty(8);
        a.insert(0);
        a.rebase(5, 10);
    }

    #[test]
    fn dense_rebase_is_identity_only() {
        let mut a = DenseBitVector::empty(100);
        a.insert(3);
        a.rebase(0, 100); // fine
        assert!(a.contains(3));
    }

    #[test]
    #[should_panic(expected = "never offset")]
    fn dense_rebase_with_offset_panics() {
        let mut a = DenseBitVector::empty(100);
        a.rebase(10, 110);
    }

    #[test]
    fn remap_restores_mpi_rank_order() {
        // Figure 6's example: daemon 0 debugs tasks {0, 2}, daemon 1 debugs {1, 3}.
        // Positions after concatenation are [d0t0, d0t1, d1t0, d1t1] = ranks [0,2,1,3].
        let position_to_rank = vec![0u64, 2, 1, 3];
        let mut set = SubtreeTaskList::empty(4);
        set.insert(1); // daemon 0's second task  -> rank 2
        set.insert(2); // daemon 1's first task   -> rank 1
        let dense = set.remap_to_dense(&position_to_rank, 4);
        assert_eq!(dense.members(), vec![1, 2]);
        assert_eq!(dense.width(), 4);
    }

    #[test]
    fn word_round_trip() {
        let mut d = DenseBitVector::empty(130);
        d.insert(0);
        d.insert(64);
        d.insert(129);
        let back = DenseBitVector::from_words(130, d.words().to_vec());
        assert_eq!(back.members(), d.members());

        let mut s = SubtreeTaskList::empty(70);
        s.insert(69);
        let back = SubtreeTaskList::from_words(70, s.words().to_vec());
        assert_eq!(back.members(), vec![69]);
    }

    #[test]
    fn from_words_masks_stray_bits_above_the_width() {
        // A malformed packet can carry garbage bits above `width` in the last word;
        // they must not leak into count/members/contains.
        let stray = u64::MAX; // bits 6..64 are out of range for width 70's last word
        let d = DenseBitVector::from_words(70, vec![0, stray]);
        assert_eq!(d.count(), 6);
        assert_eq!(d.members(), vec![64, 65, 66, 67, 68, 69]);
        assert!(!d.contains(70));

        let s = SubtreeTaskList::from_words(70, vec![0, stray]);
        assert_eq!(s.count(), 6);
        assert_eq!(s.members(), vec![64, 65, 66, 67, 68, 69]);

        // A width that is an exact word multiple has no stray region.
        let d = DenseBitVector::from_words(128, vec![u64::MAX, u64::MAX]);
        assert_eq!(d.count(), 128);
    }

    #[test]
    #[should_panic(expected = "more than a 70-task domain can hold")]
    fn dense_from_words_rejects_oversized_word_vectors() {
        DenseBitVector::from_words(70, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "more than a 100-position domain can hold")]
    fn subtree_from_words_rejects_oversized_word_vectors() {
        SubtreeTaskList::from_words(100, vec![0; 3]);
    }

    #[test]
    fn union_shifted_matches_rebase_then_union() {
        for (local_a, local_b, offset_extra) in [(2u64, 2u64, 0u64), (70, 130, 0), (64, 65, 3)] {
            let mut a = SubtreeTaskList::empty(local_a);
            for i in (0..local_a).step_by(3) {
                a.insert(i);
            }
            let mut b = SubtreeTaskList::empty(local_b);
            for i in (0..local_b).step_by(2) {
                b.insert(i);
            }
            let new_width = local_a + offset_extra + local_b;

            // The member-by-member reference result.
            let mut expected = SubtreeTaskList::empty(new_width);
            for m in a.members() {
                expected.insert(m);
            }
            for m in b.members() {
                expected.insert(m + local_a + offset_extra);
            }

            let mut got = a.clone();
            got.rebase(0, new_width);
            got.union_shifted(&b, local_a + offset_extra);
            assert_eq!(
                got.members(),
                expected.members(),
                "offsets {local_a}+{offset_extra}"
            );
            assert_eq!(got.width(), new_width);
        }
    }

    #[test]
    #[should_panic(expected = "shifted union would push positions past")]
    fn union_shifted_rejects_overflowing_offsets() {
        let mut a = SubtreeTaskList::empty(8);
        let b = SubtreeTaskList::empty(8);
        a.union_shifted(&b, 1);
    }

    #[test]
    fn dense_union_shifted_is_union_at_offset_zero_only() {
        let mut a = DenseBitVector::empty(100);
        a.insert(1);
        let mut b = DenseBitVector::empty(100);
        b.insert(2);
        a.union_shifted(&b, 0);
        assert_eq!(a.members(), vec![1, 2]);
    }

    #[test]
    fn iter_members_agrees_with_members_without_allocating() {
        let mut s = SubtreeTaskList::empty(300);
        for i in [0u64, 63, 64, 127, 128, 255, 299] {
            s.insert(i);
        }
        let walked: Vec<u64> = s.iter_members().collect();
        assert_eq!(walked, s.members());
        assert_eq!(SubtreeTaskList::empty(0).iter_members().next(), None);
        assert_eq!(DenseBitVector::empty(64).iter_members().next(), None);
    }

    #[test]
    fn word_aligned_and_unaligned_rebase_agree() {
        for offset in [0u64, 1, 63, 64, 65, 128, 200] {
            let mut s = SubtreeTaskList::empty(130);
            for i in [0u64, 1, 64, 129] {
                s.insert(i);
            }
            let before = s.members();
            s.rebase(offset, 130 + offset);
            let after = s.members();
            assert_eq!(after.len(), before.len(), "offset {offset}");
            for (b, a) in before.iter().zip(after.iter()) {
                assert_eq!(b + offset, *a, "offset {offset}");
            }
        }
    }

    #[test]
    fn remap_handles_blocked_and_scattered_maps_identically() {
        // 256 positions in 4 daemon blocks of 64; daemon blocks reversed in rank
        // space (every block is an ascending run — the fast path), plus a fully
        // scattered map (the slow path).  Both must agree with per-member remap.
        let blocked: Vec<u64> = (0..256u64).map(|p| (3 - p / 64) * 64 + p % 64).collect();
        let scattered: Vec<u64> = (0..256u64).map(|p| (p * 37 + 11) % 256).collect();
        for map in [blocked, scattered] {
            let mut set = SubtreeTaskList::empty(256);
            for i in 0..256u64 {
                if i % 5 != 0 || i < 128 {
                    set.insert(i);
                }
            }
            let dense = set.remap_to_dense(&map, 256);
            let mut expected = DenseBitVector::empty(256);
            for m in set.members() {
                expected.insert(map[m as usize]);
            }
            assert_eq!(dense.members(), expected.members());
        }
    }

    #[test]
    fn subtract_is_per_word_and_not() {
        fn check<S: TaskSetOps>() {
            let mut a = S::empty(200);
            for i in [0u64, 63, 64, 65, 128, 199] {
                a.insert(i);
            }
            let mut b = S::empty(200);
            for i in [63u64, 65, 199, 100] {
                b.insert(i);
            }
            a.subtract(&b);
            assert_eq!(a.members(), vec![0, 64, 128]);
            assert!(!a.is_empty_set());
            let clone = a.clone();
            a.subtract(&clone);
            assert!(a.is_empty_set());
            assert!(S::empty(200).is_empty_set());
        }
        check::<DenseBitVector>();
        check::<SubtreeTaskList>();
    }

    #[test]
    #[should_panic(expected = "common domain before subtract")]
    fn subtree_subtract_rejects_mismatched_domains() {
        let mut a = SubtreeTaskList::empty(8);
        a.subtract(&SubtreeTaskList::empty(9));
    }

    #[test]
    fn rank_range_formatting_matches_figure_1_style() {
        let ranks: Vec<u64> = std::iter::once(0).chain(3..=1023).collect();
        assert_eq!(format_rank_ranges(&ranks, 10), "1022:[0,3-1023]");
        assert_eq!(format_rank_ranges(&[1], 10), "1:[1]");
        assert_eq!(format_rank_ranges(&[], 10), "0:[]");
        // Truncation with an ellipsis, as in the figure's long labels.
        let scattered: Vec<u64> = (0..20).map(|i| i * 2).collect();
        let label = format_rank_ranges(&scattered, 4);
        assert!(label.starts_with("20:["));
        assert!(label.ends_with(",...]"));
    }
}
