//! The STAT back-end daemon.
//!
//! One daemon runs per compute node (Atlas) or per I/O node (BG/L).  Its job is
//! small and local: attach to the MPI tasks it is responsible for, gather a window of
//! stack traces from each via the stack walker, fold them into *locally merged* 2D
//! and 3D prefix trees, and hand the serialised trees (plus its local rank list) to
//! the overlay network.  Everything global happens in the filters above it.

use appsim::Application;
use stackwalk::{FrameDictionary, FrameTable, TaskSamples};
use tbon::packet::{EndpointId, Packet, PacketTag};

use crate::graph::PrefixTree;
use crate::serialize::{encode_rank_map, encode_tree, WireTaskSet};

/// A back-end daemon responsible for a contiguous slice of MPI ranks.
#[derive(Clone, Debug)]
pub struct StatDaemon {
    /// Daemon index (also its leaf position in the TBON, in backend order).
    pub id: u32,
    /// The MPI ranks this daemon gathers traces from, ascending.
    pub ranks: Vec<u64>,
    /// Total tasks in the job (needed for the global representation's domain).
    pub total_tasks: u64,
}

/// Everything a daemon contributes to one gather: serialised trees and its rank map.
#[derive(Clone, Debug)]
pub struct DaemonContribution {
    /// The daemon that produced this contribution.
    pub daemon_id: u32,
    /// Serialised locally merged 2D (trace/space) tree.
    pub tree_2d: Packet,
    /// Serialised locally merged 3D (trace/space/time) tree.
    pub tree_3d: Packet,
    /// The daemon's local rank list, for the front-end remap.
    pub rank_map: Packet,
    /// Number of traces gathered from local tasks.
    pub traces_gathered: u64,
    /// Wall-clock time this daemon spent gathering stack traces.
    pub sample_wall: std::time::Duration,
    /// Wall-clock time this daemon spent building and serialising its local trees.
    pub local_merge_wall: std::time::Duration,
}

impl StatDaemon {
    /// A daemon serving the given ranks of a `total_tasks`-task job.
    pub fn new(id: u32, ranks: Vec<u64>, total_tasks: u64) -> Self {
        StatDaemon {
            id,
            ranks,
            total_tasks,
        }
    }

    /// Partition a job of `total_tasks` ranks over `daemons` daemons the way the
    /// machines in the paper do: contiguous blocks in rank order, the earlier daemons
    /// taking the remainder.
    pub fn partition(total_tasks: u64, daemons: u32) -> Vec<StatDaemon> {
        let daemons = daemons.max(1) as u64;
        let base = total_tasks / daemons;
        let extra = total_tasks % daemons;
        let mut out = Vec::with_capacity(daemons as usize);
        let mut next_rank = 0u64;
        for d in 0..daemons {
            let count = base + if d < extra { 1 } else { 0 };
            let ranks: Vec<u64> = (next_rank..next_rank + count).collect();
            next_rank += count;
            out.push(StatDaemon::new(d as u32, ranks, total_tasks));
        }
        out
    }

    /// Number of local tasks.
    pub fn local_tasks(&self) -> u64 {
        self.ranks.len() as u64
    }

    /// Gather `samples` traces from each local task of `app`.
    pub fn gather(
        &self,
        app: &dyn Application,
        samples: u32,
        table: &mut FrameTable,
    ) -> Vec<TaskSamples> {
        appsim::gather_samples_for_ranks(app, &self.ranks, samples, table)
    }

    /// Build the locally merged 2D and 3D trees from gathered samples.
    ///
    /// The index used for each task depends on the representation: the global (dense)
    /// representation indexes by MPI rank in a job-wide domain, the hierarchical one
    /// by local position in a domain the size of this daemon's task list.
    pub fn build_trees<S: WireTaskSet>(
        &self,
        samples: &[TaskSamples],
    ) -> (PrefixTree<S>, PrefixTree<S>) {
        let hierarchical = S::TAG == 1;
        let width = if hierarchical {
            self.local_tasks()
        } else {
            self.total_tasks
        };
        let mut tree_2d = PrefixTree::<S>::new(width, hierarchical);
        let mut tree_3d = PrefixTree::<S>::new(width, hierarchical);
        for (local_pos, task) in samples.iter().enumerate() {
            let index = if hierarchical {
                local_pos as u64
            } else {
                task.rank
            };
            tree_2d.add_first_sample(task, index);
            tree_3d.add_samples(task, index);
        }
        (tree_2d, tree_3d)
    }

    /// Run one full gather-and-merge cycle and package the results for the TBON.
    ///
    /// The two daemon-local phases — sampling the application and building the local
    /// trees — are timed separately so the session can report the pipeline breakdown
    /// the paper measures.  `dict` is the session's negotiated frame dictionary:
    /// the daemon still symbolises into its own local [`FrameTable`], but the v2
    /// encoder relabels every frame to its session-global id on the way out.
    pub fn contribute<S: WireTaskSet>(
        &self,
        app: &dyn Application,
        samples: u32,
        leaf_endpoint: EndpointId,
        dict: &FrameDictionary,
    ) -> DaemonContribution {
        let mut table = FrameTable::new();
        let sample_start = std::time::Instant::now();
        let gathered = self.gather(app, samples, &mut table);
        let sample_wall = sample_start.elapsed();
        let traces: u64 = gathered.iter().map(|t| t.sample_count() as u64).sum();
        let merge_start = std::time::Instant::now();
        let (tree_2d, tree_3d) = self.build_trees::<S>(&gathered);
        DaemonContribution {
            daemon_id: self.id,
            tree_2d: Packet::new(
                PacketTag::Merged2d,
                leaf_endpoint,
                encode_tree(&tree_2d, &table, dict),
            ),
            tree_3d: Packet::new(
                PacketTag::Merged3d,
                leaf_endpoint,
                encode_tree(&tree_3d, &table, dict),
            ),
            rank_map: Packet::new(
                PacketTag::RankMap,
                leaf_endpoint,
                encode_rank_map(&self.ranks),
            ),
            traces_gathered: traces,
            sample_wall,
            local_merge_wall: merge_start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::decode_tree;
    use crate::taskset::{DenseBitVector, SubtreeTaskList, TaskSetOps};
    use appsim::{FrameVocabulary, RingHangApp};

    #[test]
    fn partition_covers_every_rank_exactly_once() {
        let daemons = StatDaemon::partition(1_000, 7);
        assert_eq!(daemons.len(), 7);
        let mut all: Vec<u64> = daemons.iter().flat_map(|d| d.ranks.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..1_000).collect::<Vec<_>>());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = daemons.iter().map(|d| d.ranks.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partition_with_more_daemons_than_tasks() {
        let daemons = StatDaemon::partition(3, 8);
        let nonempty = daemons.iter().filter(|d| !d.ranks.is_empty()).count();
        assert_eq!(nonempty, 3);
        assert_eq!(daemons.len(), 8);
    }

    #[test]
    fn daemon_trees_reflect_local_tasks_only() {
        let app = RingHangApp::new(64, FrameVocabulary::Linux);
        let daemons = StatDaemon::partition(64, 8);
        let d0 = &daemons[0]; // ranks 0..8, includes the hung rank 1 and victim 2
        let mut table = FrameTable::new();
        let samples = d0.gather(&app, 2, &mut table);
        assert_eq!(samples.len(), 8);

        let (tree_2d, tree_3d) = d0.build_trees::<DenseBitVector>(&samples);
        assert_eq!(tree_2d.tasks(tree_2d.root()).count(), 8);
        assert!(tree_3d.node_count() >= tree_2d.node_count());

        let (sub_2d, _) = d0.build_trees::<SubtreeTaskList>(&samples);
        assert_eq!(sub_2d.width(), 8);
        assert_eq!(sub_2d.tasks(sub_2d.root()).count(), 8);
    }

    #[test]
    fn contribution_packets_decode_back() {
        let app = RingHangApp::new(32, FrameVocabulary::BlueGeneL);
        let dict = FrameDictionary::negotiate(app.frame_hints());
        let daemons = StatDaemon::partition(32, 4);
        let c = daemons[1].contribute::<DenseBitVector>(&app, 3, EndpointId(5), &dict);
        assert_eq!(c.daemon_id, 1);
        assert_eq!(c.traces_gathered, 8 * 3);
        let (tree, _frames): (PrefixTree<DenseBitVector>, _) =
            decode_tree(&c.tree_2d.payload).unwrap();
        assert_eq!(tree.tasks(tree.root()).members(), daemons[1].ranks);
        let map = crate::serialize::decode_rank_map(&c.rank_map.payload).unwrap();
        assert_eq!(map, daemons[1].ranks);
    }

    #[test]
    fn hierarchical_contribution_is_much_smaller_for_big_jobs() {
        let app = RingHangApp::new(8_192, FrameVocabulary::BlueGeneL);
        let dict = FrameDictionary::negotiate(app.frame_hints());
        let daemons = StatDaemon::partition(8_192, 64);
        let dense = daemons[0].contribute::<DenseBitVector>(&app, 1, EndpointId(1), &dict);
        let hier = daemons[0].contribute::<SubtreeTaskList>(&app, 1, EndpointId(1), &dict);
        assert!(dense.tree_2d.size_bytes() > 10 * hier.tree_2d.size_bytes());
    }
}
