//! Continuous streaming sessions: wave-based delta gather and temporal merge.
//!
//! A one-shot [`Session::attach`] samples the job once and exits.  A *streaming*
//! session stays attached for the life of the job and samples in **waves**:
//! every wave each daemon gathers a fresh window of traces, reduces the wave's
//! view through the overlay for an up-to-date per-wave [`Diagnosis`], and ships
//! a [`PacketTag::TreeDelta`] — the difference between its wave tree and the
//! last acknowledged cumulative state — so the job-wide *temporal* 3D tree is
//! maintained incrementally instead of being re-reduced from scratch.
//!
//! Per-wave lifecycle (one [`StreamingSession::advance`] call):
//!
//! 1. **Faults due this wave** are applied first: pruned daemons drop out of all
//!    subsequent waves, the overlay is rebuilt over the survivors and their
//!    cumulative trees re-seed the fresh resident state.  A prune that leaves no
//!    viable session is a typed [`StatError::SessionNotViable`].
//! 2. **Gather**: every surviving daemon samples its ranks at the global sample
//!    clock (`wave × samples_per_wave`), builds its wave-local 2D/3D trees, and
//!    diffs the wave 3D tree against its cumulative local tree.
//! 3. **Wave reduction**: the wave's 2D/3D trees (and rank map) ride the
//!    ordinary single-pass multi-channel reduction, producing the wave's
//!    [`GatherResult`]-derived diagnosis, behaviour-class count and phase
//!    timings.
//! 4. **Delta fold**: the per-daemon deltas ride the incremental path
//!    ([`tbon::delta::IncrementalTbon`]); interior nodes merge child deltas with
//!    the ordinary merge filter and fold the result into their resident state,
//!    so the front end's resident tree always equals one batched merge of
//!    everything seen so far (the equivalence `tests/streaming.rs` pins down).
//! 5. **Judgement**: the diagnosis is checked against the wave source's ground
//!    truth for that wave, giving verdict *latency* — the number of waves
//!    between a fault first appearing and a stable correct verdict — a
//!    machine-checkable meaning.
//!
//! [`Session::attach`]: crate::session::Session::attach
//! [`PacketTag::TreeDelta`]: tbon::packet::PacketTag::TreeDelta
//! [`GatherResult`]: crate::frontend::GatherResult

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

use appsim::scenario::{Diagnosis, OverlayFault, Verdict};
use appsim::{gather_samples_for_ranks_from, Application, WaveSource};
use stackwalk::{FrameDictionary, FrameTable};
use tbon::delta::{IncrementalTbon, ResidentState, StateFactory};
use tbon::fault::FaultTracker;
use tbon::filter::Filter;
use tbon::packet::{Packet, PacketTag};
use tbon::topology::{Topology, TreeShape};

use crate::daemon::{DaemonContribution, StatDaemon};
use crate::error::StatError;
use crate::frontend::Representation;
use crate::graph::PrefixTree;
use crate::scenario::{diagnose, resolve_fault};
use crate::serialize::{
    decode_tree, encode_rank_map, encode_tree, encoded_merged_tree_size, encoded_tree_size,
    WireFrames, WireTaskSet,
};
use crate::session::{PhaseTimings, Session};
use crate::taskset::{DenseBitVector, SubtreeTaskList};

/// A tree reduced to a representation-independent, order-independent shape:
/// one `(path of frame names, member tasks)` entry per node, sorted.  Two trees
/// with equal canonical forms describe the same merged state even when their
/// arenas, frame ids or child orders differ.
pub type CanonicalTree = Vec<(Vec<String>, Vec<u64>)>;

fn canonical<S: WireTaskSet>(tree: &PrefixTree<S>, table: &FrameTable) -> CanonicalTree {
    let mut out: CanonicalTree = (0..tree.node_count())
        .map(|node| {
            let path: Vec<String> = tree
                .path_to(node)
                .iter()
                .map(|&f| table.name(f).to_string())
                .collect();
            (path, tree.tasks(node).members())
        })
        .collect();
    out.sort();
    out
}

/// Per-node resident state of the incremental path: a rolling merged tree plus
/// the accumulated incremental dictionary records its deltas shipped.  Under
/// wire format v2 the resident never re-resolves a frame name: deltas carry
/// session-global ids, so folding is id-aligned merging plus a union of the
/// [`WireFrames`] records.  Public (opaque) so benchmarks can drive the
/// production fold through [`tbon::delta::IncrementalTbon`] directly.
pub struct TreeResident<S: WireTaskSet> {
    frames: Option<WireFrames>,
    tree: Option<PrefixTree<S>>,
}

impl<S: WireTaskSet> ResidentState for TreeResident<S> {
    fn fold(&mut self, delta: &Packet) -> Result<(), String> {
        if delta.payload.is_empty() {
            // An empty control packet: nothing reached this node this wave.
            return Ok(());
        }
        let (decoded, decoded_frames): (PrefixTree<S>, WireFrames) =
            decode_tree(&delta.payload).map_err(|e| e.to_string())?;
        match self.frames.as_mut() {
            None => self.frames = Some(decoded_frames),
            Some(frames) => frames.merge(&decoded_frames).map_err(|e| e.to_string())?,
        }
        match self.tree.as_mut() {
            None => self.tree = Some(decoded),
            Some(tree) => {
                if tree.width() != decoded.width() {
                    return Err(format!(
                        "delta domain {} does not match resident domain {}",
                        decoded.width(),
                        tree.width()
                    ));
                }
                tree.merge_aligned(decoded);
            }
        }
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        match (self.tree.as_ref(), self.frames.as_ref()) {
            (Some(tree), Some(frames)) => encoded_merged_tree_size(tree, frames),
            _ => 0,
        }
    }
}

/// Factory handing [`TreeResident`] states to the incremental overlay — the
/// state every streaming session's [`tbon::delta::IncrementalTbon`] runs on.
pub struct TreeResidentFactory<S>(PhantomData<S>);

impl<S> TreeResidentFactory<S> {
    /// A new factory.
    pub fn new() -> Self {
        TreeResidentFactory(PhantomData)
    }
}

impl<S> Default for TreeResidentFactory<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: WireTaskSet> StateFactory for TreeResidentFactory<S> {
    type State = TreeResident<S>;
    fn new_state(&self) -> TreeResident<S> {
        TreeResident {
            frames: None,
            tree: None,
        }
    }
}

/// One daemon's persistent streaming state: its rank slice, its frame table
/// (shared by every wave so frame ids stay stable across diffs) and the
/// cumulative local 3D tree its deltas are computed against.
struct DaemonStream<S: WireTaskSet> {
    daemon: StatDaemon,
    table: FrameTable,
    cum_3d: PrefixTree<S>,
}

/// Per-wave daemon-side accounting, summed over survivors.
#[derive(Default)]
struct WaveStats {
    sample: Duration,
    local_merge: Duration,
    packet_bytes: u64,
    delta_bytes: u64,
    full_packet_bytes: u64,
}

/// The representation-monomorphic core of a streaming session: one slot per
/// original daemon (`None` once lost) plus the incremental overlay state and
/// the session-global frame dictionary every wave encodes against.
struct StreamCore<S: WireTaskSet> {
    streams: Vec<Option<DaemonStream<S>>>,
    incremental: IncrementalTbon<TreeResidentFactory<S>>,
    dict: FrameDictionary,
}

impl<S: WireTaskSet> StreamCore<S> {
    fn new(daemons: Vec<StatDaemon>, topology: &Topology, dict: FrameDictionary) -> Self {
        let hierarchical = S::TAG == 1;
        let streams = daemons
            .into_iter()
            .map(|daemon| {
                let width = if hierarchical {
                    daemon.local_tasks()
                } else {
                    daemon.total_tasks
                };
                Some(DaemonStream {
                    cum_3d: PrefixTree::new(width, hierarchical),
                    table: FrameTable::new(),
                    daemon,
                })
            })
            .collect();
        StreamCore {
            streams,
            incremental: IncrementalTbon::new(topology.clone(), TreeResidentFactory(PhantomData)),
            dict,
        }
    }

    /// Drop the daemons whose surviving ordinal is not in `keep`, record their
    /// ranks as lost, and re-seed a fresh incremental overlay over `topology`
    /// by folding each survivor's full cumulative tree as a delta against
    /// empty state.  Returns the bytes the re-seed shipped at the leaves.
    fn rebuild(
        &mut self,
        keep: &BTreeSet<usize>,
        lost_ranks: &mut Vec<u64>,
        topology: &Topology,
        filter: &dyn Filter,
    ) -> Result<u64, StatError> {
        let mut ordinal = 0usize;
        for slot in self.streams.iter_mut() {
            if slot.is_some() {
                let kept = keep.contains(&ordinal);
                ordinal += 1;
                if !kept {
                    if let Some(stream) = slot.take() {
                        lost_ranks.extend(stream.daemon.ranks.iter().copied());
                    }
                }
            }
        }
        self.incremental = IncrementalTbon::new(topology.clone(), TreeResidentFactory(PhantomData));
        let packets: Vec<Packet> = self
            .streams
            .iter()
            .flatten()
            .zip(topology.backends().iter())
            .map(|(stream, &leaf)| {
                Packet::new(
                    PacketTag::TreeDelta,
                    leaf,
                    encode_tree(&stream.cum_3d, &stream.table, &self.dict),
                )
            })
            .collect();
        let reseed_bytes = packets.iter().map(|p| p.size_bytes() as u64).sum();
        self.incremental.fold_wave(packets, filter)?;
        Ok(reseed_bytes)
    }

    /// Sample one wave on every surviving daemon: build the wave trees, encode
    /// the full-packet channels, diff the wave's 3D tree against the cumulative
    /// local tree and fold the wave in.  Every survivor always emits a delta —
    /// a quiescent daemon ships its root-only empty tree — which keeps
    /// hierarchical domain offsets stable at every merge above it.
    fn gather_wave(
        &mut self,
        app: &dyn Application,
        base: u32,
        samples: u32,
        topology: &Topology,
        needs_rank_map: bool,
    ) -> (Vec<DaemonContribution>, Vec<Packet>, u64, WaveStats) {
        let mut contributions = Vec::new();
        let mut deltas = Vec::new();
        let mut traces_total = 0u64;
        let mut stats = WaveStats::default();
        for (stream, &leaf) in self
            .streams
            .iter_mut()
            .flatten()
            .zip(topology.backends().iter())
        {
            let sample_start = Instant::now();
            let gathered = gather_samples_for_ranks_from(
                app,
                &stream.daemon.ranks,
                base,
                samples,
                &mut stream.table,
            );
            let sample_wall = sample_start.elapsed();
            let traces: u64 = gathered.iter().map(|t| t.sample_count() as u64).sum();
            traces_total += traces;

            let merge_start = Instant::now();
            let (wave_2d, wave_3d) = stream.daemon.build_trees::<S>(&gathered);
            let bytes_2d = encode_tree(&wave_2d, &stream.table, &self.dict);
            let bytes_3d = encode_tree(&wave_3d, &stream.table, &self.dict);
            let delta = wave_3d.delta_from(&stream.cum_3d);
            stream.cum_3d.merge_aligned(wave_3d);
            let delta_payload = encode_tree(&delta, &stream.table, &self.dict);
            let local_merge_wall = merge_start.elapsed();

            let tree_2d = Packet::new(PacketTag::Merged2d, leaf, bytes_2d);
            let tree_3d = Packet::new(PacketTag::Merged3d, leaf, bytes_3d);
            let rank_map = Packet::new(
                PacketTag::RankMap,
                leaf,
                encode_rank_map(&stream.daemon.ranks),
            );
            stats.packet_bytes += (tree_2d.size_bytes() + tree_3d.size_bytes()) as u64;
            if needs_rank_map {
                stats.packet_bytes += rank_map.size_bytes() as u64;
            }
            let delta_packet = Packet::new(PacketTag::TreeDelta, leaf, delta_payload);
            stats.delta_bytes += delta_packet.size_bytes() as u64;
            stats.full_packet_bytes +=
                encoded_tree_size(&stream.cum_3d, &stream.table, &self.dict) as u64;
            stats.sample += sample_wall;
            stats.local_merge += local_merge_wall;

            contributions.push(DaemonContribution {
                daemon_id: stream.daemon.id,
                tree_2d,
                tree_3d,
                rank_map,
                traces_gathered: traces,
                sample_wall,
                local_merge_wall,
            });
            deltas.push(delta_packet);
        }
        (contributions, deltas, traces_total, stats)
    }

    fn covered_tasks(&self) -> u64 {
        self.streams
            .iter()
            .flatten()
            .map(|s| s.daemon.local_tasks())
            .sum()
    }

    fn incremental_canonical(&self) -> CanonicalTree {
        // Frame ids in the resident tree are session-global, so the dictionary
        // snapshot — the same table every daemon encoded against — resolves
        // every name, including incrementally interned ones.
        match self.incremental.frontend_state() {
            Some(state) => match state.tree.as_ref() {
                Some(tree) => canonical(tree, &self.dict.snapshot()),
                None => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    fn batched_canonical(&self) -> CanonicalTree {
        let mut merged: Option<PrefixTree<S>> = None;
        for stream in self.streams.iter().flatten() {
            let payload = encode_tree(&stream.cum_3d, &stream.table, &self.dict);
            let Ok((tree, _frames)) = decode_tree::<S>(&payload) else {
                return Vec::new();
            };
            match merged.as_mut() {
                None => merged = Some(tree),
                Some(acc) => acc.merge(tree),
            }
        }
        match merged {
            Some(tree) => canonical(&tree, &self.dict.snapshot()),
            None => Vec::new(),
        }
    }
}

/// Enum dispatch over the two wire representations — the streaming counterpart
/// of the sealed [`crate::strategy::RepresentationStrategy`] dispatch.
enum StreamState {
    Dense(StreamCore<DenseBitVector>),
    Hier(StreamCore<SubtreeTaskList>),
}

/// What one wave of a streaming session produced.
#[derive(Clone, Debug)]
pub struct WaveReport {
    /// The wave index this report describes (0-based).
    pub wave: u32,
    /// Per-phase wall-clock breakdown of the wave's full-view pipeline.
    pub phases: PhaseTimings,
    /// Wall-clock the incremental path spent merging and folding deltas.
    pub fold_wall: Duration,
    /// Total bytes the wave's full-view reduction pushed into the TBON at the
    /// leaves (2D + 3D trees, plus the rank map when the representation ships
    /// one) — the same quantity as [`crate::session::SessionReport::packet_bytes`].
    pub packet_bytes: u64,
    /// Bytes of per-daemon delta packets entering the incremental path this
    /// wave.  Pure steady-state delta traffic: re-seed traffic after a
    /// mid-stream prune is reported separately in [`reseed_bytes`], so the
    /// delta column stays comparable wave over wave.
    ///
    /// [`reseed_bytes`]: WaveReport::reseed_bytes
    pub delta_bytes: u64,
    /// Bytes the overlay re-seed shipped at the leaves this wave: every
    /// survivor's full cumulative tree, re-folded as a delta against fresh
    /// state after a mid-stream prune.  Zero unless [`reseeded`] is set.
    ///
    /// [`reseeded`]: WaveReport::reseeded
    pub reseed_bytes: u64,
    /// What shipping every survivor's full cumulative 3D tree would have cost
    /// at the leaves instead — the delta path's savings baseline.
    pub full_packet_bytes: u64,
    /// Traces gathered across surviving daemons this wave.
    pub traces_gathered: u64,
    /// Behaviour classes the wave's 3D view produced.
    pub classes: usize,
    /// The wave's diagnosis: classes by frame name plus the ranks lost so far.
    pub diagnosis: Diagnosis,
    /// The wave source's ground truth judged against that diagnosis.
    pub verdict: Verdict,
    /// Tasks still covered by surviving daemons (covered + lost = job size).
    pub covered_tasks: u64,
    /// Tasks whose daemons have been lost so far.
    pub lost_tasks: u64,
    /// Whether a mid-stream prune rebuilt the overlay at the start of this wave.
    pub reseeded: bool,
}

/// Builder for a [`StreamingSession`]; obtained from
/// [`crate::session::SessionBuilder::streaming`].
pub struct StreamingBuilder {
    session: Session,
    scheduled: Vec<(u32, OverlayFault)>,
}

impl StreamingBuilder {
    pub(crate) fn new(session: Session) -> Self {
        StreamingBuilder {
            session,
            scheduled: Vec::new(),
        }
    }

    /// Schedule an overlay fault to strike at the *start* of wave `wave`: the
    /// addressed endpoint (and everything it orphans) drops out of that wave
    /// and every later one, with per-wave coverage accounting in the reports.
    pub fn overlay_fault_at(mut self, wave: u32, fault: OverlayFault) -> Self {
        self.scheduled.push((wave, fault));
        self
    }

    /// Open the stream over a wave source.  The topology is resolved once from
    /// the source's job size (streaming jobs do not resize); waves are then
    /// driven explicitly with [`StreamingSession::advance`].
    pub fn open(self, source: Box<dyn WaveSource>) -> Result<StreamingSession, StatError> {
        let tasks = source.num_tasks();
        let spec = self.session.topology_for(tasks);
        let topology = Topology::build(spec.clone());
        let daemons = StatDaemon::partition(tasks, spec.backends());
        let total_backends = daemons.len();
        // Wire-format v2: negotiate the session-global frame dictionary once,
        // at open, from the source's wave-0 application.  Later waves (fault
        // apps included) share the same vocabulary; any frame they introduce
        // anyway ships as an incremental dictionary record.
        let dict = FrameDictionary::negotiate(source.app_at(0).frame_hints());
        let state = match self.session.representation() {
            Representation::GlobalBitVector => {
                StreamState::Dense(StreamCore::new(daemons, &topology, dict.clone()))
            }
            Representation::HierarchicalTaskList => {
                StreamState::Hier(StreamCore::new(daemons, &topology, dict.clone()))
            }
        };
        Ok(StreamingSession {
            session: self.session,
            source,
            tasks,
            wave: 0,
            spec,
            topology,
            scheduled: self.scheduled,
            lost_ranks: Vec::new(),
            state,
            total_backends,
            dict,
        })
    }
}

/// A continuously-attached session driving wave after wave of the pipeline.
///
/// ```
/// use appsim::{catalogue, FaultSchedule, FrameVocabulary};
/// use machine::Cluster;
/// use stat_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The ring hang, scheduled to first appear at wave 2 of the stream.
/// let scenario = catalogue(64, FrameVocabulary::Linux)
///     .into_iter()
///     .find(|s| s.name == "ring_hang")
///     .ok_or("catalogue always has ring_hang")?;
/// let source = FaultSchedule::new(scenario, FrameVocabulary::Linux, 2);
///
/// let mut stream = Session::builder(Cluster::test_cluster(8, 8))
///     .streaming(2) // two trace samples per task, per wave
///     .open(Box::new(source))?;
///
/// let healthy = stream.advance()?; // wave 0: the job is still healthy
/// assert!(healthy.verdict.passed());
/// assert_eq!(healthy.classes, 1);
///
/// stream.advance()?; // wave 1: still healthy
/// let faulty = stream.advance()?; // wave 2: the hang has appeared
/// assert!(faulty.verdict.passed(), "{}", faulty.verdict);
/// assert!(faulty.classes > healthy.classes);
///
/// // Quiescent repeats ship far smaller deltas than full cumulative trees.
/// let repeat = stream.advance()?; // wave 3: same hang, nothing new
/// assert!(repeat.delta_bytes < repeat.full_packet_bytes);
/// # Ok(())
/// # }
/// ```
pub struct StreamingSession {
    session: Session,
    source: Box<dyn WaveSource>,
    tasks: u64,
    wave: u32,
    spec: TreeShape,
    topology: Topology,
    scheduled: Vec<(u32, OverlayFault)>,
    lost_ranks: Vec<u64>,
    state: StreamState,
    total_backends: usize,
    dict: FrameDictionary,
}

impl StreamingSession {
    /// Run the next wave: apply any faults due, gather, reduce the wave's view,
    /// fold the deltas, and judge the diagnosis against the wave's truth.
    pub fn advance(&mut self) -> Result<WaveReport, StatError> {
        let wave = self.wave;
        let strategy = self.session.representation().strategy();
        let filter = strategy.merge_filter();

        let due: Vec<OverlayFault> = self
            .scheduled
            .iter()
            .filter(|(w, _)| *w == wave)
            .map(|(_, f)| *f)
            .collect();
        let mut reseeded = false;
        let mut reseed_bytes = 0u64;
        if !due.is_empty() {
            reseed_bytes = self.apply_faults(&due, filter.as_ref())?;
            reseeded = true;
        }

        let app = self.source.app_at(wave);
        let samples = self.session.samples_per_task();
        let base = wave.saturating_mul(samples);
        let (contributions, deltas, traces_gathered, stats) = match &mut self.state {
            StreamState::Dense(core) => core.gather_wave(
                app.as_ref(),
                base,
                samples,
                &self.topology,
                strategy.needs_rank_map(),
            ),
            StreamState::Hier(core) => core.gather_wave(
                app.as_ref(),
                base,
                samples,
                &self.topology,
                strategy.needs_rank_map(),
            ),
        };

        let (gather, mut phases) =
            self.session
                .merge_through(&self.topology, contributions, self.tasks, &self.dict)?;
        phases.sample = stats.sample;
        phases.local_merge = stats.local_merge;

        let fold = match &mut self.state {
            StreamState::Dense(core) => core.incremental.fold_wave(deltas, filter.as_ref()),
            StreamState::Hier(core) => core.incremental.fold_wave(deltas, filter.as_ref()),
        }?;

        let diagnosis = diagnose(&gather, self.tasks, self.lost_ranks.clone());
        let verdict = self
            .source
            .truth_at(wave)
            .check(self.source.name(), &diagnosis);
        let lost_tasks = self.lost_ranks.len() as u64;

        self.wave = wave.saturating_add(1);
        Ok(WaveReport {
            wave,
            phases,
            fold_wall: fold.fold_wall,
            packet_bytes: stats.packet_bytes,
            delta_bytes: stats.delta_bytes,
            reseed_bytes,
            full_packet_bytes: stats.full_packet_bytes,
            traces_gathered,
            classes: gather.classes.len(),
            diagnosis,
            verdict,
            covered_tasks: self.tasks - lost_tasks,
            lost_tasks,
            reseeded,
        })
    }

    /// Apply overlay faults against the *current* (possibly already pruned)
    /// topology, rebuild over the survivors and re-seed the incremental state.
    fn apply_faults(
        &mut self,
        faults: &[OverlayFault],
        filter: &dyn Filter,
    ) -> Result<u64, StatError> {
        let mut tracker = FaultTracker::new(self.topology.clone());
        for &fault in faults {
            tracker.fail(resolve_fault(&self.topology, fault)?);
        }
        let surviving = tracker.surviving_backend_indices();
        let degraded_spec = tracker
            .degraded_shape()
            .ok_or(StatError::SessionNotViable {
                lost_backends: self.total_backends - surviving.len(),
                total_backends: self.total_backends,
            })?;
        let keep: BTreeSet<usize> = surviving.into_iter().collect();
        self.spec = degraded_spec.clone();
        self.topology = Topology::build(degraded_spec);
        match &mut self.state {
            StreamState::Dense(core) => {
                core.rebuild(&keep, &mut self.lost_ranks, &self.topology, filter)
            }
            StreamState::Hier(core) => {
                core.rebuild(&keep, &mut self.lost_ranks, &self.topology, filter)
            }
        }
    }

    /// Waves advanced so far (also the index the next [`advance`] will run).
    ///
    /// [`advance`]: StreamingSession::advance
    pub fn waves_advanced(&self) -> u32 {
        self.wave
    }

    /// The wave source driving the stream.
    pub fn source(&self) -> &dyn WaveSource {
        self.source.as_ref()
    }

    /// The overlay shape currently in use (pruned after mid-stream faults).
    pub fn topology(&self) -> &TreeShape {
        &self.spec
    }

    /// Ranks whose daemons have been lost so far, ascending per loss event.
    pub fn lost_ranks(&self) -> &[u64] {
        &self.lost_ranks
    }

    /// Tasks still covered by surviving daemons.
    pub fn covered_tasks(&self) -> u64 {
        match &self.state {
            StreamState::Dense(core) => core.covered_tasks(),
            StreamState::Hier(core) => core.covered_tasks(),
        }
    }

    /// Total resident footprint of the incremental overlay state, in bytes.
    pub fn resident_bytes(&self) -> usize {
        match &self.state {
            StreamState::Dense(core) => core.incremental.resident_bytes(),
            StreamState::Hier(core) => core.incremental.resident_bytes(),
        }
    }

    /// The front end's rolling incrementally-folded 3D tree, in canonical form.
    /// Empty before the first wave folds.  This is the verification surface the
    /// streaming test suite compares against [`batched_canonical`] at every
    /// wave.
    ///
    /// [`batched_canonical`]: StreamingSession::batched_canonical
    pub fn incremental_canonical(&self) -> CanonicalTree {
        match &self.state {
            StreamState::Dense(core) => core.incremental_canonical(),
            StreamState::Hier(core) => core.incremental_canonical(),
        }
    }

    /// What one batched merge of every survivor's full cumulative tree produces,
    /// in canonical form — recomputed from scratch, independently of the
    /// incremental path.
    pub fn batched_canonical(&self) -> CanonicalTree {
        match &self.state {
            StreamState::Dense(core) => core.batched_canonical(),
            StreamState::Hier(core) => core.batched_canonical(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::scenario::catalogue;
    use appsim::{FaultSchedule, FrameVocabulary, SteadySource};
    use machine::cluster::Cluster;

    fn ring_schedule(tasks: u64, fault_wave: u32) -> FaultSchedule {
        let scenario = catalogue(tasks, FrameVocabulary::Linux)
            .into_iter()
            .find(|s| s.name == "ring_hang")
            .unwrap();
        FaultSchedule::new(scenario, FrameVocabulary::Linux, fault_wave)
    }

    fn stream_with(
        representation: Representation,
        source: Box<dyn WaveSource>,
    ) -> StreamingSession {
        Session::builder(Cluster::test_cluster(8, 8))
            .representation(representation)
            .streaming(2)
            .open(source)
            .unwrap()
    }

    #[test]
    fn healthy_waves_stay_healthy_and_quiescent_deltas_shrink() {
        let mut stream = stream_with(
            Representation::HierarchicalTaskList,
            Box::new(SteadySource::healthy(64, FrameVocabulary::Linux)),
        );
        let first = stream.advance().unwrap();
        assert!(first.verdict.passed(), "{}", first.verdict);
        assert_eq!(first.classes, 1);
        assert_eq!(first.covered_tasks, 64);
        assert_eq!(first.lost_tasks, 0);
        assert!(first.packet_bytes > 0);
        // No prune, no re-seed traffic.
        assert_eq!(first.reseed_bytes, 0);

        // The all-equivalent app never changes: wave 1's deltas are root-only.
        let second = stream.advance().unwrap();
        assert!(second.verdict.passed());
        assert!(
            second.delta_bytes < first.delta_bytes,
            "quiescent wave {} vs first wave {}",
            second.delta_bytes,
            first.delta_bytes
        );
        assert!(second.delta_bytes < second.full_packet_bytes);
    }

    #[test]
    fn the_fault_wave_flips_the_diagnosis_for_both_representations() {
        for representation in [
            Representation::HierarchicalTaskList,
            Representation::GlobalBitVector,
        ] {
            let mut stream = stream_with(representation, Box::new(ring_schedule(64, 2)));
            for wave in 0..2 {
                let report = stream.advance().unwrap();
                assert!(
                    report.verdict.passed(),
                    "pre-fault wave {wave} must judge healthy: {}",
                    report.verdict
                );
                assert_eq!(report.classes, 1);
            }
            let faulty = stream.advance().unwrap();
            assert!(faulty.verdict.passed(), "{}", faulty.verdict);
            assert!(faulty.classes >= 3);
        }
    }

    #[test]
    fn incremental_state_equals_batched_merge_at_every_wave() {
        for representation in [
            Representation::HierarchicalTaskList,
            Representation::GlobalBitVector,
        ] {
            let mut stream = stream_with(representation, Box::new(ring_schedule(64, 2)));
            for wave in 0..5 {
                stream.advance().unwrap();
                let incremental = stream.incremental_canonical();
                assert!(!incremental.is_empty());
                assert_eq!(
                    incremental,
                    stream.batched_canonical(),
                    "wave {wave} diverged under {representation:?}"
                );
            }
        }
    }

    #[test]
    fn mid_stream_daemon_loss_keeps_coverage_accounting_exact() {
        let mut stream = Session::builder(Cluster::test_cluster(8, 8))
            .streaming(2)
            .open(Box::new(ring_schedule(64, 1)))
            .unwrap();
        let healthy = stream.advance().unwrap();
        assert_eq!(healthy.covered_tasks + healthy.lost_tasks, 64);
        assert_eq!(healthy.lost_tasks, 0);
        assert!(!healthy.reseeded);

        // A control stream over the same schedule, with no overlay fault: its
        // wave-1 deltas are the eight daemons' pure steady-state traffic.
        let mut control = Session::builder(Cluster::test_cluster(8, 8))
            .streaming(2)
            .open(Box::new(ring_schedule(64, 1)))
            .unwrap();
        control.advance().unwrap();
        let control_wave1 = control.advance().unwrap();

        // Losing the last daemon mid-stream drops its 8 ranks from wave 1 on.
        let mut stream = Session::builder(Cluster::test_cluster(8, 8))
            .streaming(2)
            .overlay_fault_at(1, OverlayFault::BackendFromEnd(0))
            .open(Box::new(ring_schedule(64, 1)))
            .unwrap();
        let wave0 = stream.advance().unwrap();
        assert_eq!(wave0.lost_tasks, 0);
        assert_eq!(wave0.reseed_bytes, 0);
        let wave1 = stream.advance().unwrap();
        assert!(wave1.reseeded);
        assert_eq!(wave1.lost_tasks, 8);
        assert_eq!(wave1.covered_tasks + wave1.lost_tasks, 64);
        assert_eq!(stream.covered_tasks(), 56);
        assert_eq!(stream.lost_ranks(), (56..64).collect::<Vec<_>>());
        // The three byte columns stay decoupled: the re-seed charges its own
        // column and the delta column stays pure steady-state traffic.  Seven
        // survivors ship content-identical deltas to the control stream's first
        // seven daemons, so the pruned wave must ship strictly *fewer* delta
        // bytes than the unpruned control — folding the re-seed into the delta
        // column (the old accounting) would reverse this inequality.
        assert!(wave1.reseed_bytes > 0);
        assert!(
            wave1.delta_bytes < control_wave1.delta_bytes,
            "pruned wave pure deltas ({}) must undercut the 8-daemon control ({})",
            wave1.delta_bytes,
            control_wave1.delta_bytes
        );
        // The verdict still passes: the hang (ranks 1 and 2) stayed covered and
        // the coverage check accepts the reported losses.
        assert!(wave1.verdict.passed(), "{}", wave1.verdict);
        // The pruned state still matches a batched merge of the survivors.
        assert_eq!(stream.incremental_canonical(), stream.batched_canonical());
        let wave2 = stream.advance().unwrap();
        assert!(!wave2.reseeded);
        assert_eq!(wave2.reseed_bytes, 0);
        assert_eq!(wave2.covered_tasks, 56);
        // Quiescent again: pure deltas shrink well below the full-tree baseline.
        assert!(wave2.delta_bytes < wave2.full_packet_bytes);
    }

    #[test]
    fn a_prune_that_kills_the_session_is_a_typed_error() {
        let mut builder = Session::builder(Cluster::test_cluster(8, 8)).streaming(1);
        // Losing every backend leaves nothing to gather from, whatever interior
        // shape the placement chose.
        for backend in 0..8 {
            builder = builder.overlay_fault_at(1, OverlayFault::BackendFromEnd(backend));
        }
        let mut stream = builder.open(Box::new(ring_schedule(64, 0))).unwrap();
        stream.advance().unwrap();
        let err = stream.advance().unwrap_err();
        assert!(
            matches!(err, StatError::SessionNotViable { .. }),
            "expected SessionNotViable, got {err:?}"
        );
    }

    #[test]
    fn session_report_packet_bytes_totals_every_leaf_channel() {
        let app = appsim::RingHangApp::new(64, FrameVocabulary::Linux);
        let hier = Session::builder(Cluster::test_cluster(8, 8))
            .samples_per_task(2)
            .build()
            .attach(&app)
            .unwrap();
        // Hierarchical sessions ship a rank map, so the leaf total exceeds the
        // per-daemon tree bytes alone.
        assert!(hier.packet_bytes > hier.mean_daemon_packet_bytes * hier.daemons as u64);
        let dense = Session::builder(Cluster::test_cluster(8, 8))
            .representation(Representation::GlobalBitVector)
            .samples_per_task(2)
            .build()
            .attach(&app)
            .unwrap();
        assert!(dense.packet_bytes >= dense.mean_daemon_packet_bytes * dense.daemons as u64);
    }
}
