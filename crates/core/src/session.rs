//! End-to-end STAT sessions.
//!
//! Two ways of "running STAT" coexist in the reproduction, mirroring the split the
//! rest of the code base makes between real algorithms and modelled environment:
//!
//! * [`Session`] actually runs the tool: it partitions the job over daemons, gathers
//!   stack traces from the (simulated) application with the real walker, builds the
//!   real local trees, and pushes the real serialised packets — 2D tree, 3D tree and
//!   rank map together, as channels of **one** overlay walk — through the real
//!   in-process TBON with the real merge filters.  [`Session::attach`] returns a
//!   [`SessionReport`] with the merged trees, behaviour classes, byte-flow metrics
//!   and a per-phase timing breakdown.  The examples, integration tests and
//!   real-execution benchmarks use this path.
//!
//! * [`PhaseEstimator`] prices the three phases the paper measures — startup,
//!   sampling, merge — for configurations as large as the full 212,992-task BG/L,
//!   using the launcher, sampling and reduction cost models.  The figure generators
//!   use this path, with the real path cross-checking the small-scale points.

use std::time::{Duration, Instant};

use appsim::Application;
use machine::cluster::Cluster;
use machine::placement::PlacementPlan;
use simkit::time::SimDuration;
use stackwalk::sampler::{BinaryPlacement, SamplingCostModel, SamplingEstimate};
use stackwalk::FrameDictionary;
use tbon::cost::ReductionCostModel;
use tbon::fault::{CorruptingFilter, FilterFault};
use tbon::filter::Filter;
use tbon::network::{ChannelInput, InProcessTbon};
use tbon::planner::TopologyPlanner;
use tbon::topology::{Topology, TreeShape};

use crate::daemon::{DaemonContribution, StatDaemon};
use crate::equivalence::equivalence_classes;
use crate::error::{MergeChannel, StatError};
use crate::filter::RankMapFilter;
use crate::frontend::{GatherResult, MergeMetrics, Representation};
use crate::serialize::encode_dictionary;

/// Wall-clock time of each phase of a real session, in pipeline order.
///
/// The paper's central observation is that sampling → local merge → reduction →
/// remap is *one* pipeline whose phases must be measured together; this struct is
/// how a [`SessionReport`] exposes that.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Gathering stack traces from the application tasks (summed over daemons, all
    /// executed in this process).
    pub sample: Duration,
    /// Building and serialising the daemon-local prefix trees (summed over daemons).
    pub local_merge: Duration,
    /// The single multi-channel TBON reduction walk.
    pub reduce: Duration,
    /// The front-end remap into MPI rank order (zero for the global representation).
    pub remap: Duration,
    /// Extracting behaviour classes from the merged 3D tree.
    pub classify: Duration,
}

impl PhaseTimings {
    /// Total wall-clock time across every phase.
    pub fn total(&self) -> Duration {
        self.sample + self.local_merge + self.reduce + self.remap + self.classify
    }
}

/// The result of a real session: what the user sees plus how the pipeline behaved.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The merged trees, classes and byte-flow metrics.
    pub gather: GatherResult,
    /// Number of daemons that participated.
    pub daemons: u32,
    /// The tree shape that was used.
    pub topology: TreeShape,
    /// Total traces gathered across all daemons.
    pub traces_gathered: u64,
    /// Per-phase wall-clock breakdown.
    pub phases: PhaseTimings,
    /// Total bytes that entered the TBON at the leaves: every daemon's serialised
    /// 2D and 3D trees plus — for representations that ship one — its rank-map
    /// packet.  This is the per-gather ingress volume streaming sessions compare
    /// their per-wave deltas against.
    pub packet_bytes: u64,
    /// Largest serialised contribution (2D + 3D trees) any single daemon produced.
    pub max_daemon_packet_bytes: u64,
    /// Mean serialised contribution (2D + 3D trees) across daemons.
    pub mean_daemon_packet_bytes: u64,
    /// Bytes spent broadcasting the negotiated frame dictionary down the overlay
    /// at session setup: the encoded dictionary payload once per overlay link.
    /// A one-time setup cost, kept separate from the per-gather `packet_bytes`
    /// so streaming sessions can amortise it across waves.
    pub dictionary_bytes: u64,
}

/// How a session decides its overlay tree shape.
#[derive(Clone, Debug)]
enum TopologyChoice {
    /// The paper's default: the placement-rule 2-deep shape for the job size,
    /// resolved when the job size is known.
    PaperDefault,
    /// A caller-pinned shape — degraded gathers over a pruned overlay and tests
    /// that need an exact tree.
    Pinned(TreeShape),
    /// Let [`TopologyPlanner`] search candidate shapes with the cost model and use
    /// its cheapest feasible pick.
    Planned,
}

/// Builder for a real (in-process) STAT session.
///
/// Obtained from [`Session::builder`]; every knob has the defaults the paper's
/// experiments use (2-deep tree, hierarchical representation, 10 samples per task).
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    cluster: Cluster,
    representation: Representation,
    samples_per_task: u32,
    topology: TopologyChoice,
    filter_faults: Vec<FilterFault>,
}

impl SessionBuilder {
    /// Select the task-set representation.
    pub fn representation(mut self, representation: Representation) -> Self {
        self.representation = representation;
        self
    }

    /// Set how many stack-trace samples to gather per task.
    pub fn samples_per_task(mut self, samples: u32) -> Self {
        self.samples_per_task = samples;
        self
    }

    /// Pin an explicit tree shape instead of deriving one from the machine's
    /// placement rules — used by degraded gathers over a pruned overlay and by
    /// tests that need an exact tree.
    ///
    /// Migration note: callers that used to select a family with
    /// `topology_kind(TopologyKind::ThreeDeep)` now pass the placement-rule shape
    /// at that depth explicitly:
    /// `topology(TreeShape::for_placement(&PlacementPlan::for_job(&cluster, tasks), 3))`
    /// — or call [`plan_topology`](SessionBuilder::plan_topology) and let the cost
    /// model pick the depth.
    pub fn topology(mut self, shape: TreeShape) -> Self {
        self.topology = TopologyChoice::Pinned(shape);
        self
    }

    /// Let the [`TopologyPlanner`] pick the tree shape: when the job size is known
    /// (at [`Session::attach`] / [`Session::merge`] time), candidate shapes are
    /// priced with the reduction cost model under the machine's placement
    /// constraints, and the cheapest feasible one is used.
    pub fn plan_topology(mut self) -> Self {
        self.topology = TopologyChoice::Planned;
        self
    }

    /// Inject mid-tree filter faults: every merge (and rank-map) filter
    /// invocation at the named tree nodes has its output corrupted through a
    /// [`CorruptingFilter`].  This is the fault-campaign hook for "an interior
    /// node's filter state went bad" — the node still participates in the walk,
    /// but the packet it forwards no longer describes its subtree, and the test
    /// is whether the front end *detects* the damage rather than silently
    /// producing a clean-looking diagnosis.
    pub fn filter_faults(mut self, faults: Vec<FilterFault>) -> Self {
        self.filter_faults = faults;
        self
    }

    /// Turn this configuration into a *streaming* session builder: instead of one
    /// attach-and-exit gather, the session will sample in waves of
    /// `samples_per_wave` traces per task, ship per-wave deltas through the
    /// overlay and maintain a rolling job-wide merge.  See
    /// [`crate::streaming::StreamingSession`].
    pub fn streaming(self, samples_per_wave: u32) -> crate::streaming::StreamingBuilder {
        crate::streaming::StreamingBuilder::new(self.samples_per_task(samples_per_wave).build())
    }

    /// Finish the builder.
    pub fn build(self) -> Session {
        Session {
            cluster: self.cluster,
            representation: self.representation,
            samples_per_task: self.samples_per_task,
            topology: self.topology,
            filter_faults: self.filter_faults,
        }
    }
}

/// A configured STAT session over a (simulated) machine.
///
/// ```
/// use appsim::{FrameVocabulary, RingHangApp};
/// use machine::Cluster;
/// use stat_core::prelude::*;
///
/// // A 256-task MPI ring test in which rank 1 hangs before its send.
/// let app = RingHangApp::new(256, FrameVocabulary::Linux);
/// let session = Session::builder(Cluster::test_cluster(32, 8))
///     .representation(Representation::HierarchicalTaskList)
///     .samples_per_task(3)
///     .build();
/// let report = session.attach(&app).expect("the session merges cleanly");
///
/// // The 256 tasks collapse into three behaviour classes...
/// assert_eq!(report.gather.classes.len(), 3);
/// // ...and the whole merge took exactly one walk of the overlay.
/// assert_eq!(report.gather.metrics.tree_walks, 1);
/// ```
#[derive(Clone, Debug)]
pub struct Session {
    cluster: Cluster,
    representation: Representation,
    samples_per_task: u32,
    topology: TopologyChoice,
    filter_faults: Vec<FilterFault>,
}

impl Session {
    /// Start configuring a session on the given machine.
    pub fn builder(cluster: Cluster) -> SessionBuilder {
        SessionBuilder {
            cluster,
            representation: Representation::HierarchicalTaskList,
            samples_per_task: 10,
            topology: TopologyChoice::PaperDefault,
            filter_faults: Vec::new(),
        }
    }

    /// The mid-tree filter faults this session injects (empty = honest merge).
    pub fn filter_faults(&self) -> &[FilterFault] {
        &self.filter_faults
    }

    /// The machine the session is modelled on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The task-set representation in use.
    pub fn representation(&self) -> Representation {
        self.representation
    }

    /// Samples gathered per task.
    pub fn samples_per_task(&self) -> u32 {
        self.samples_per_task
    }

    /// The tree shape the session will use for a job of `tasks` tasks.
    pub fn topology_for(&self, tasks: u64) -> TreeShape {
        match &self.topology {
            TopologyChoice::Pinned(shape) => shape.clone(),
            TopologyChoice::Planned => TopologyPlanner::new(self.cluster.clone()).plan(tasks).shape,
            TopologyChoice::PaperDefault => {
                let plan = PlacementPlan::for_job(&self.cluster, tasks);
                TreeShape::for_placement(&plan, 2)
            }
        }
    }

    /// Attach to an application and run the full pipeline: sample every task, build
    /// the daemon-local trees, carry all channels up the overlay in one reduction
    /// walk, remap (if the representation needs it) and classify.
    pub fn attach(&self, app: &dyn Application) -> Result<SessionReport, StatError> {
        let tasks = app.num_tasks();
        let spec = self.topology_for(tasks);
        let topology = Topology::build(spec.clone());
        let strategy = self.representation.strategy();

        // Wire-format v2: the session-global frame dictionary is negotiated once,
        // before any daemon contributes, and every packet in the session then
        // carries integer ids from it.  Negotiation costs one broadcast of the
        // encoded dictionary down the overlay, priced per link.
        let dict = FrameDictionary::negotiate(app.frame_hints());
        let dictionary_payload = encode_dictionary(&dict.negotiated_names()).len() as u64;
        let dictionary_bytes =
            InProcessTbon::new(topology.clone()).broadcast_link_bytes(dictionary_payload);

        let daemons = StatDaemon::partition(tasks, spec.backends());
        let contributions: Vec<DaemonContribution> = daemons
            .iter()
            .zip(topology.backends())
            .map(|(daemon, &leaf)| {
                strategy.contribute(daemon, app, self.samples_per_task, leaf, &dict)
            })
            .collect();

        let traces_gathered = contributions.iter().map(|c| c.traces_gathered).sum();
        let sample: Duration = contributions.iter().map(|c| c.sample_wall).sum();
        let local_merge: Duration = contributions.iter().map(|c| c.local_merge_wall).sum();
        let per_daemon_bytes: Vec<u64> = contributions
            .iter()
            .map(|c| (c.tree_2d.size_bytes() + c.tree_3d.size_bytes()) as u64)
            .collect();
        let max_daemon_packet_bytes = per_daemon_bytes.iter().copied().max().unwrap_or(0);
        let mean_daemon_packet_bytes = if per_daemon_bytes.is_empty() {
            0
        } else {
            per_daemon_bytes.iter().sum::<u64>() / per_daemon_bytes.len() as u64
        };
        let rank_map_bytes: u64 = if strategy.needs_rank_map() {
            contributions
                .iter()
                .map(|c| c.rank_map.size_bytes() as u64)
                .sum()
        } else {
            0
        };
        let packet_bytes = per_daemon_bytes.iter().sum::<u64>() + rank_map_bytes;

        let (gather, mut phases) = self.merge_through(&topology, contributions, tasks, &dict)?;
        phases.sample = sample;
        phases.local_merge = local_merge;

        Ok(SessionReport {
            gather,
            daemons: spec.backends(),
            topology: spec,
            traces_gathered,
            phases,
            packet_bytes,
            max_daemon_packet_bytes,
            mean_daemon_packet_bytes,
            dictionary_bytes,
        })
    }

    /// Merge already-gathered daemon contributions (one per topology leaf, in
    /// backend order) without re-sampling.
    ///
    /// This is the path for degraded gathers: after overlay faults prune daemons,
    /// the survivors' contributions can be merged over a pinned replacement topology
    /// (see [`SessionBuilder::topology`]).
    ///
    /// `dict` must be the frame dictionary the contributions were encoded against —
    /// the session-global id space survives the re-merge unchanged.
    pub fn merge(
        &self,
        contributions: Vec<DaemonContribution>,
        total_tasks: u64,
        dict: &FrameDictionary,
    ) -> Result<GatherResult, StatError> {
        let spec = self.topology_for(total_tasks);
        let topology = Topology::build(spec);
        let (gather, _) = self.merge_through(&topology, contributions, total_tasks, dict)?;
        Ok(gather)
    }

    /// The single-pass reduce → remap → classify tail of the pipeline.  Shared
    /// with the streaming path, which reduces each wave's view through the same
    /// machinery over its (possibly pruned) current topology.
    pub(crate) fn merge_through(
        &self,
        topology: &Topology,
        contributions: Vec<DaemonContribution>,
        total_tasks: u64,
        dict: &FrameDictionary,
    ) -> Result<(GatherResult, PhaseTimings), StatError> {
        let strategy = self.representation.strategy();

        // Split the contributions into channel streams, moving the packets — the
        // daemons' serialised trees are never copied on their way into the overlay.
        let mut leaves_2d = Vec::with_capacity(contributions.len());
        let mut leaves_3d = Vec::with_capacity(contributions.len());
        let mut leaves_map = Vec::with_capacity(if strategy.needs_rank_map() {
            contributions.len()
        } else {
            0
        });
        for contribution in contributions {
            leaves_2d.push(contribution.tree_2d);
            leaves_3d.push(contribution.tree_3d);
            if strategy.needs_rank_map() {
                leaves_map.push(contribution.rank_map);
            }
        }

        let merge_filter = strategy.merge_filter();
        let rank_map_filter = RankMapFilter;
        // Mid-tree fault injection: wrap every filter so the designated interior
        // nodes corrupt their output on all channels they touch.  With no faults
        // configured the wrappers are bypassed entirely.
        let corrupting_merge = CorruptingFilter::new(merge_filter.as_ref(), &self.filter_faults);
        let corrupting_map = CorruptingFilter::new(&rank_map_filter, &self.filter_faults);
        let honest = self.filter_faults.is_empty();
        let merge_dyn: &dyn Filter = if honest {
            merge_filter.as_ref()
        } else {
            &corrupting_merge
        };
        let mut channels = vec![
            ChannelInput::new(MergeChannel::Tree2d.label(), leaves_2d),
            ChannelInput::new(MergeChannel::Tree3d.label(), leaves_3d),
        ];
        let mut filters: Vec<&dyn Filter> = vec![merge_dyn, merge_dyn];
        if strategy.needs_rank_map() {
            channels.push(ChannelInput::new(MergeChannel::RankMap.label(), leaves_map));
            filters.push(if honest {
                &rank_map_filter
            } else {
                &corrupting_map
            });
        }

        // The one bottom-up level walk that carries every channel.
        let net = InProcessTbon::new(topology.clone());
        let reduce_start = Instant::now();
        let outcomes = net.reduce_channels(channels, &filters)?;
        let reduce = reduce_start.elapsed();

        let mut metrics = MergeMetrics::default();
        metrics.absorb_walk(&outcomes, reduce);

        let merged = strategy.finish(
            &outcomes[0],
            &outcomes[1],
            outcomes.get(2),
            total_tasks,
            dict,
        )?;
        metrics.remap_wall = merged.remap_wall;

        let classify_start = Instant::now();
        let classes = equivalence_classes(&merged.tree_3d);
        let classify = classify_start.elapsed();

        let gather = GatherResult {
            tree_2d: merged.tree_2d,
            tree_3d: merged.tree_3d,
            frames: merged.frames,
            classes,
            metrics,
        };
        let phases = PhaseTimings {
            sample: Duration::ZERO,
            local_merge: Duration::ZERO,
            reduce,
            remap: merged.remap_wall,
            classify,
        };
        Ok((gather, phases))
    }
}

/// A merge-phase estimate for one configuration.
#[derive(Clone, Debug)]
pub struct MergeEstimate {
    /// Critical-path time of sending and merging both trees up to the front end.
    pub time: SimDuration,
    /// `Some(reason)` if the configuration could not complete at all (the 1-deep tree
    /// on BG/L past 256 daemons, in the paper).
    pub failed: Option<String>,
    /// Bytes arriving at the front end.
    pub frontend_bytes: u64,
    /// Largest byte volume into any single tree node.
    pub max_node_bytes: u64,
    /// Total bytes crossing overlay links.
    pub total_bytes: u64,
    /// Number of daemons in the configuration.
    pub daemons: u32,
}

/// Prices the paper's three phases at arbitrary scale using the environment models.
#[derive(Clone, Debug)]
pub struct PhaseEstimator {
    /// The machine being modelled.
    pub cluster: Cluster,
    /// The task-set representation in use.
    pub representation: Representation,
    /// Edges of a locally merged 2D tree (the ring hang produces ~2 dozen).
    pub tree_edges_2d: u64,
    /// Edges of a locally merged 3D tree (more, because sampling over time fans the
    /// polling frames out).
    pub tree_edges_3d: u64,
    /// Bytes of incremental dictionary records (frame names the negotiated
    /// dictionary did not cover) carried once per packet under wire format v2.
    pub frame_names_bytes: u64,
    /// Seconds per task of the front-end remap step (only paid by the hierarchical
    /// representation; 0.66 s / 208K tasks in the paper).
    pub remap_seconds_per_task: f64,
}

impl PhaseEstimator {
    /// An estimator with constants calibrated for the ring-hang workload.
    pub fn new(cluster: Cluster, representation: Representation) -> Self {
        PhaseEstimator {
            cluster,
            representation,
            tree_edges_2d: 24,
            tree_edges_3d: 60,
            frame_names_bytes: 420,
            remap_seconds_per_task: 3.1e-6,
        }
    }

    /// The placement-rule tree shape for this machine, job size and depth (1 =
    /// flat, 2/3 = the paper's families, deeper = the generalised budget-fitted
    /// rule).
    pub fn topology_for(&self, tasks: u64, depth: u32) -> TreeShape {
        let plan = PlacementPlan::for_job(&self.cluster, tasks);
        TreeShape::for_placement(&plan, depth)
    }

    /// Estimate the merge phase (Figures 4, 5 and 7) over the placement-rule shape
    /// of the given depth.
    pub fn merge_estimate(&self, tasks: u64, depth: u32) -> MergeEstimate {
        self.merge_estimate_shape(tasks, &self.topology_for(tasks, depth))
    }

    /// Estimate the merge phase over an explicit tree shape.
    pub fn merge_estimate_shape(&self, tasks: u64, spec: &TreeShape) -> MergeEstimate {
        let shape = self.cluster.job(tasks);
        let topology = Topology::build(spec.clone());
        let model = ReductionCostModel::standard(
            &topology,
            &self.cluster.interconnect,
            self.cluster.login_host_slowdown(),
            self.cluster.daemon_host_slowdown(),
        );

        let edges = self.tree_edges_2d + self.tree_edges_3d;
        let total_tasks = shape.tasks;
        let tasks_per_daemon = shape.tasks_per_daemon as u64;
        let representation = self.representation;
        let frame_bytes = self.frame_names_bytes;
        // Per-node packet bytes are priced with the same arithmetic the v2 wire
        // format actually produces (see `tbon::cost`): LEB128 words for dense bit
        // vectors, run-length tokens for subtree task lists, both plus the fixed
        // per-node header overhead.  Estimates and real encoded sizes therefore
        // cannot drift.
        let cost = model.reduce(&move |_id, subtree_backends| {
            let label_bytes = match representation {
                Representation::GlobalBitVector => {
                    tbon::cost::dense_node_bytes(total_tasks, total_tasks)
                }
                Representation::HierarchicalTaskList => {
                    let subtree_tasks =
                        (subtree_backends as u64 * tasks_per_daemon).min(total_tasks);
                    tbon::cost::subtree_node_bytes(subtree_tasks)
                }
            };
            edges * label_bytes + frame_bytes
        });

        // The paper's 1-deep tree on BG/L failed outright at 256 I/O-node daemons:
        // the front end cannot sustain that many direct connections each carrying
        // job-wide bit vectors.  The rule is shared with the planner's feasibility
        // check so the estimator and the planner cannot drift.
        let failed =
            if tbon::planner::flat_frontend_overloaded(spec, self.cluster.daemons_on_io_nodes()) {
                Some(format!(
                    "1-deep topology failed: the front end cannot absorb {} direct daemon \
                 connections (the paper observed this failure at {} I/O nodes)",
                    spec.backends(),
                    tbon::planner::FLAT_FRONTEND_LIMIT
                ))
            } else {
                None
            };

        MergeEstimate {
            time: cost.critical_path,
            failed,
            frontend_bytes: cost.frontend_bytes_in,
            max_node_bytes: cost.max_node_bytes_in,
            total_bytes: cost.total_link_bytes,
            daemons: spec.backends(),
        }
    }

    /// Estimate the front-end remap cost (the 0.66 s figure in Section V-C).
    pub fn remap_estimate(&self, tasks: u64) -> SimDuration {
        match self.representation {
            Representation::GlobalBitVector => SimDuration::ZERO,
            Representation::HierarchicalTaskList => {
                SimDuration::from_secs(tasks as f64 * self.remap_seconds_per_task)
            }
        }
    }

    /// Estimate the sampling phase (Figures 8, 9 and 10) by delegating to the
    /// stack-walking cost model.
    pub fn sampling_estimate(
        &self,
        tasks: u64,
        placement: BinaryPlacement,
        seed: u64,
    ) -> SamplingEstimate {
        SamplingCostModel::new(self.cluster.clone()).estimate(tasks, placement, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MergeChannel;
    use crate::taskset::TaskSetOps;
    use appsim::{FrameVocabulary, RingHangApp};
    use machine::cluster::BglMode;
    use tbon::network::TbonError;
    use tbon::packet::{Packet, PacketTag};

    fn small_session(representation: Representation, nodes: u32) -> Session {
        Session::builder(Cluster::test_cluster(nodes, 8))
            .representation(representation)
            .samples_per_task(3)
            .build()
    }

    #[test]
    fn real_session_end_to_end_on_atlas_shape() {
        let app = RingHangApp::new(256, FrameVocabulary::Linux);
        let session = Session::builder(Cluster::test_cluster(64, 8)).build();
        let report = session.attach(&app).unwrap();
        assert_eq!(report.daemons, 32); // 256 tasks / 8 per node
        assert_eq!(report.gather.classes.len(), 3);
        assert_eq!(report.traces_gathered, 256 * 10);
        let mut attach = report.gather.attach_set();
        attach.sort_unstable();
        assert_eq!(attach, vec![0, 1, 2]);
        // The pipeline phases are all visible.
        assert!(report.phases.total() >= report.phases.reduce);
        assert!(report.max_daemon_packet_bytes >= report.mean_daemon_packet_bytes);
        // The negotiated dictionary was broadcast once per overlay link.
        assert!(report.dictionary_bytes > 0);
    }

    #[test]
    fn both_representations_agree_end_to_end() {
        let app = RingHangApp::new(128, FrameVocabulary::BlueGeneL);
        let global = small_session(Representation::GlobalBitVector, 32)
            .attach(&app)
            .unwrap();
        let hier = small_session(Representation::HierarchicalTaskList, 32)
            .attach(&app)
            .unwrap();
        assert_eq!(global.gather.classes.len(), hier.gather.classes.len());
        for (g, h) in global.gather.classes.iter().zip(hier.gather.classes.iter()) {
            assert_eq!(g.tasks, h.tasks);
        }
        assert!(global.gather.metrics.total_link_bytes > hier.gather.metrics.total_link_bytes);
    }

    #[test]
    fn hierarchical_representation_moves_far_fewer_bytes() {
        // 2,048 tasks over 16 daemons: wide enough for the job-wide bit vectors to
        // visibly dominate the hierarchical lists.
        let app = RingHangApp::new(2_048, FrameVocabulary::BlueGeneL);
        let global = small_session(Representation::GlobalBitVector, 16)
            .attach(&app)
            .unwrap();
        let hier = small_session(Representation::HierarchicalTaskList, 16)
            .attach(&app)
            .unwrap();
        assert!(
            global.gather.metrics.total_link_bytes > 2 * hier.gather.metrics.total_link_bytes,
            "global {} vs hierarchical {}",
            global.gather.metrics.total_link_bytes,
            hier.gather.metrics.total_link_bytes
        );
        assert_eq!(global.gather.metrics.remap_wall, Duration::ZERO);
    }

    #[test]
    fn dot_output_of_the_final_result_names_the_culprit() {
        let app = RingHangApp::new(128, FrameVocabulary::BlueGeneL);
        let report = small_session(Representation::HierarchicalTaskList, 16)
            .attach(&app)
            .unwrap();
        let dot = report.gather.to_dot();
        assert!(dot.contains("do_SendOrStall"));
        assert!(dot.contains("1:[1]"));
    }

    #[test]
    fn single_pass_merge_accounts_every_channel_in_one_walk() {
        let app = RingHangApp::new(64, FrameVocabulary::BlueGeneL);
        let session = Session::builder(Cluster::test_cluster(8, 8))
            .representation(Representation::HierarchicalTaskList)
            .samples_per_task(3)
            .topology(TreeShape::two_deep(8, 4))
            .build();
        let report = session.attach(&app).unwrap();
        // 3 channels (2D, 3D, rank map) over a 2-deep tree with 4 comm processes:
        // (4 + 1) filter invocations each — but exactly ONE walk of the overlay.
        assert_eq!(report.gather.metrics.tree_walks, 1);
        assert_eq!(report.gather.metrics.filter_invocations, 3 * 5);
        assert!(report.gather.metrics.frontend_bytes_in > 0);
        assert!(report.gather.metrics.total_link_bytes >= report.gather.metrics.frontend_bytes_in);
    }

    #[test]
    fn leaf_count_mismatch_is_reported_with_channel_context() {
        let app = RingHangApp::new(64, FrameVocabulary::Linux);
        let session = Session::builder(Cluster::test_cluster(8, 8))
            .topology(TreeShape::two_deep(8, 4))
            .samples_per_task(1)
            .build();
        let report = session.attach(&app).unwrap();
        assert_eq!(report.daemons, 8);

        // Re-merge with one contribution missing: the overlay reports which channel
        // came up short instead of asserting.
        let dict = FrameDictionary::negotiate(app.frame_hints());
        let daemons = StatDaemon::partition(64, 8);
        let topology = Topology::build(TreeShape::two_deep(8, 4));
        let mut contributions: Vec<DaemonContribution> = daemons
            .iter()
            .zip(topology.backends())
            .map(|(d, &leaf)| {
                Representation::HierarchicalTaskList
                    .strategy()
                    .contribute(d, &app, 1, leaf, &dict)
            })
            .collect();
        contributions.pop();
        let err = session.merge(contributions, 64, &dict).unwrap_err();
        assert_eq!(
            err,
            StatError::Reduce(TbonError::LeafCountMismatch {
                channel: "2d-tree",
                expected: 8,
                actual: 7,
            })
        );
    }

    fn corrupted_contributions(
        app: &RingHangApp,
        corrupt: impl Fn(&mut DaemonContribution),
    ) -> (Session, Vec<DaemonContribution>, FrameDictionary) {
        let session = Session::builder(Cluster::test_cluster(8, 8))
            .topology(TreeShape::two_deep(8, 4))
            .samples_per_task(1)
            .build();
        let dict = FrameDictionary::negotiate(app.frame_hints());
        let daemons = StatDaemon::partition(app.num_tasks(), 8);
        let topology = Topology::build(TreeShape::two_deep(8, 4));
        let contributions = daemons
            .iter()
            .zip(topology.backends())
            .map(|(d, &leaf)| {
                let mut c = Representation::HierarchicalTaskList
                    .strategy()
                    .contribute(d, app, 1, leaf, &dict);
                corrupt(&mut c);
                c
            })
            .collect();
        (session, contributions, dict)
    }

    #[test]
    fn malformed_tree_channel_fails_with_decode_context() {
        let app = RingHangApp::new(64, FrameVocabulary::Linux);
        // Corrupt every daemon's 2D packet: the merge filter skips them all, so the
        // front end receives an empty control packet and reports the decode failure
        // with its channel.
        let (session, contributions, dict) = corrupted_contributions(&app, |c| {
            c.tree_2d = Packet::new(PacketTag::Merged2d, c.tree_2d.source, vec![9, 9, 9]);
        });
        let err = session.merge(contributions, 64, &dict).unwrap_err();
        match err {
            StatError::Decode { channel, .. } => assert_eq!(channel, MergeChannel::Tree2d),
            other => panic!("expected a 2d-tree decode error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_3d_channel_reports_its_own_channel() {
        let app = RingHangApp::new(64, FrameVocabulary::Linux);
        let (session, contributions, dict) = corrupted_contributions(&app, |c| {
            c.tree_3d = Packet::new(PacketTag::Merged3d, c.tree_3d.source, vec![0]);
        });
        let err = session.merge(contributions, 64, &dict).unwrap_err();
        match err {
            StatError::Decode { channel, .. } => assert_eq!(channel, MergeChannel::Tree3d),
            other => panic!("expected a 3d-tree decode error, got {other:?}"),
        }
    }

    #[test]
    fn short_rank_map_fails_the_remap_instead_of_panicking() {
        let app = RingHangApp::new(64, FrameVocabulary::Linux);
        // Corrupt every daemon's rank map (a lying count prefix with no entries
        // behind it): the rank-map filter skips them all, the concatenated map is
        // empty, and the remap refuses to invent ranks.
        let (session, contributions, dict) = corrupted_contributions(&app, |c| {
            c.rank_map = Packet::new(PacketTag::RankMap, c.rank_map.source, vec![9, 9, 9]);
        });
        let err = session.merge(contributions, 64, &dict).unwrap_err();
        assert_eq!(
            err,
            StatError::RankMapMismatch {
                positions: 64,
                mapped: 0,
            }
        );
    }

    #[test]
    fn out_of_range_rank_map_fails_the_remap_instead_of_panicking() {
        let app = RingHangApp::new(64, FrameVocabulary::Linux);
        // A bit-flipped rank map can still parse: varint deltas decode
        // permissively, so the corruption shows up as ranks the job does not
        // have.  The remap must refuse with a typed error, not index past the
        // dense width.
        let (session, contributions, dict) = corrupted_contributions(&app, |c| {
            let ranks: Vec<u64> = crate::serialize::decode_rank_map(&c.rank_map.payload)
                .unwrap()
                .into_iter()
                .map(|r| r + 1_000_000)
                .collect();
            c.rank_map = Packet::new(
                PacketTag::RankMap,
                c.rank_map.source,
                crate::serialize::encode_rank_map(&ranks),
            );
        });
        let err = session.merge(contributions, 64, &dict).unwrap_err();
        match err {
            StatError::Decode {
                channel,
                source: crate::serialize::DecodeError::RankOutOfRange { rank, tasks },
                ..
            } => {
                assert_eq!(channel, MergeChannel::RankMap);
                assert_eq!(tasks, 64);
                assert!(rank >= 1_000_000);
            }
            other => panic!("expected an out-of-range rank-map error, got {other:?}"),
        }
    }

    #[test]
    fn degraded_merge_over_a_pinned_topology() {
        // The fault-handling path: merge only 4 of 8 daemons' contributions over a
        // pruned replacement topology.
        let app = RingHangApp::new(64, FrameVocabulary::Linux);
        let dict = FrameDictionary::negotiate(app.frame_hints());
        let daemons = StatDaemon::partition(64, 8);
        let full_topology = Topology::build(TreeShape::two_deep(8, 4));
        let contributions: Vec<DaemonContribution> = daemons
            .iter()
            .zip(full_topology.backends())
            .take(4)
            .map(|(d, &leaf)| {
                Representation::HierarchicalTaskList
                    .strategy()
                    .contribute(d, &app, 2, leaf, &dict)
            })
            .collect();
        let session = Session::builder(Cluster::test_cluster(8, 8))
            .topology(TreeShape::two_deep(4, 2))
            .build();
        let gather = session.merge(contributions, 64, &dict).unwrap();
        assert_eq!(gather.tree_3d.tasks(gather.tree_3d.root()).count(), 32);
    }

    #[test]
    fn merge_estimate_reproduces_the_representation_gap() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let global = PhaseEstimator::new(bgl.clone(), Representation::GlobalBitVector);
        let hier = PhaseEstimator::new(bgl, Representation::HierarchicalTaskList);

        let growth = |est: &PhaseEstimator| {
            let small = est.merge_estimate(16_384, 2).time.as_secs();
            let large = est.merge_estimate(212_992, 2).time.as_secs();
            large / small
        };
        let g_growth = growth(&global);
        let h_growth = growth(&hier);
        assert!(
            g_growth > 6.0,
            "global bit vectors scale ~linearly: {g_growth}"
        );
        assert!(
            h_growth < g_growth / 2.0,
            "hierarchical lists scale much better: {h_growth} vs {g_growth}"
        );
    }

    #[test]
    fn one_deep_fails_on_bgl_at_256_daemons() {
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let est = PhaseEstimator::new(bgl, Representation::GlobalBitVector);
        // 16,384 compute nodes in CO mode = 256 I/O-node daemons.
        let flat = est.merge_estimate(16_384, 1);
        assert!(flat.failed.is_some());
        let smaller = est.merge_estimate(8_192, 1);
        assert!(smaller.failed.is_none());
        let two_deep = est.merge_estimate(16_384, 2);
        assert!(two_deep.failed.is_none());
    }

    #[test]
    fn remap_estimate_matches_the_paper_calibration() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let est = PhaseEstimator::new(bgl.clone(), Representation::HierarchicalTaskList);
        let remap = est.remap_estimate(208_000).as_secs();
        assert!((0.5..0.9).contains(&remap), "paper: 0.66 s, got {remap}");
        let global = PhaseEstimator::new(bgl, Representation::GlobalBitVector);
        assert_eq!(global.remap_estimate(208_000), SimDuration::ZERO);
    }

    #[test]
    fn estimator_uses_the_paper_topology_rules() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let est = PhaseEstimator::new(bgl, Representation::GlobalBitVector);
        let spec = est.topology_for(212_992, 2);
        assert_eq!(spec.level_widths, vec![1, 28, 1_664]);
    }

    #[test]
    fn planned_topology_runs_a_real_session() {
        let app = RingHangApp::new(512, FrameVocabulary::Linux);
        let session = Session::builder(Cluster::test_cluster(64, 8))
            .plan_topology()
            .samples_per_task(2)
            .build();
        // The planner resolves the shape from the job size at attach time; the
        // chosen shape is feasible for the machine and is reported back.
        let report = session.attach(&app).unwrap();
        assert_eq!(report.daemons, 64);
        assert_eq!(report.gather.classes.len(), 3);
        assert_eq!(report.topology, session.topology_for(512));
        let budget =
            machine::placement::CommProcessBudget::for_cluster(session.cluster()).max_processes;
        assert!(report.topology.comm_processes() <= budget);
    }

    #[test]
    fn pinned_deep_shapes_merge_identically_to_the_paper_shapes() {
        // A 4-deep tree — inexpressible under the old closed enum — must produce
        // byte-identical analysis results to the default 2-deep tree.
        let app = RingHangApp::new(256, FrameVocabulary::Linux);
        let deep = Session::builder(Cluster::test_cluster(32, 8))
            .topology(TreeShape::uniform_with_depth(32, 2, 4))
            .samples_per_task(3)
            .build()
            .attach(&app)
            .unwrap();
        assert_eq!(deep.topology.depth(), 4);
        let default = small_session(Representation::HierarchicalTaskList, 32)
            .attach(&app)
            .unwrap();
        assert_eq!(deep.gather.classes.len(), default.gather.classes.len());
        for (d, f) in deep
            .gather
            .classes
            .iter()
            .zip(default.gather.classes.iter())
        {
            assert_eq!(d.tasks, f.tasks);
        }
    }
}
