//! End-to-end STAT sessions.
//!
//! Two ways of "running STAT" coexist in the reproduction, mirroring the split the
//! rest of the code base makes between real algorithms and modelled environment:
//!
//! * [`run_session`] actually runs the tool: it partitions the job over daemons,
//!   gathers stack traces from the (simulated) application with the real walker,
//!   builds the real local trees, pushes the real serialised packets through the real
//!   in-process TBON with the real merge filter, and returns the merged trees,
//!   behaviour classes and byte-flow metrics.  The examples, integration tests and
//!   real-execution benchmarks use this path.
//!
//! * [`PhaseEstimator`] prices the three phases the paper measures — startup,
//!   sampling, merge — for configurations as large as the full 212,992-task BG/L,
//!   using the launcher, sampling and reduction cost models.  The figure generators
//!   use this path, with the real path cross-checking the small-scale points.

use appsim::Application;
use machine::cluster::Cluster;
use machine::placement::PlacementPlan;
use simkit::time::SimDuration;
use stackwalk::sampler::{BinaryPlacement, SamplingCostModel, SamplingEstimate};
use tbon::cost::ReductionCostModel;
use tbon::topology::{Topology, TopologyKind, TopologySpec};

use crate::daemon::{DaemonContribution, StatDaemon};
use crate::frontend::{GatherResult, Representation, StatFrontEnd};
use crate::taskset::{DenseBitVector, SubtreeTaskList};

/// Configuration of a real (in-process) session.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// The machine the session is modelled on (controls daemon fan-in and topology
    /// placement rules).
    pub cluster: Cluster,
    /// Which tree family to use.
    pub topology: TopologyKind,
    /// Which task-set representation to use.
    pub representation: Representation,
    /// Stack-trace samples gathered per task.
    pub samples_per_task: u32,
}

impl SessionConfig {
    /// A sensible default: 2-deep tree, hierarchical representation, 10 samples.
    pub fn new(cluster: Cluster) -> Self {
        SessionConfig {
            cluster,
            topology: TopologyKind::TwoDeep,
            representation: Representation::HierarchicalTaskList,
            samples_per_task: 10,
        }
    }
}

/// The result of a real session.
#[derive(Clone, Debug)]
pub struct SessionResult {
    /// The merged trees, classes and metrics.
    pub gather: GatherResult,
    /// Number of daemons that participated.
    pub daemons: u32,
    /// The topology that was used.
    pub topology: TopologySpec,
    /// Total traces gathered across all daemons.
    pub traces_gathered: u64,
}

/// Run a full STAT session against a (simulated) application, for real.
pub fn run_session(config: &SessionConfig, app: &dyn Application) -> SessionResult {
    let tasks = app.num_tasks();
    let plan = PlacementPlan::for_job(&config.cluster, tasks);
    let spec = TopologySpec::for_placement(config.topology, &plan);
    let topology = Topology::build(spec.clone());

    let daemons = StatDaemon::partition(tasks, spec.backends());
    let contributions: Vec<DaemonContribution> = daemons
        .iter()
        .zip(topology.backends())
        .map(|(daemon, &leaf)| match config.representation {
            Representation::GlobalBitVector => {
                daemon.contribute::<DenseBitVector>(app, config.samples_per_task, leaf)
            }
            Representation::HierarchicalTaskList => {
                daemon.contribute::<SubtreeTaskList>(app, config.samples_per_task, leaf)
            }
        })
        .collect();
    let traces_gathered = contributions.iter().map(|c| c.traces_gathered).sum();

    let frontend = StatFrontEnd::new(topology, config.representation);
    let gather = frontend.gather(&contributions, tasks);
    SessionResult {
        gather,
        daemons: spec.backends(),
        topology: spec,
        traces_gathered,
    }
}

/// A merge-phase estimate for one configuration.
#[derive(Clone, Debug)]
pub struct MergeEstimate {
    /// Critical-path time of sending and merging both trees up to the front end.
    pub time: SimDuration,
    /// `Some(reason)` if the configuration could not complete at all (the 1-deep tree
    /// on BG/L past 256 daemons, in the paper).
    pub failed: Option<String>,
    /// Bytes arriving at the front end.
    pub frontend_bytes: u64,
    /// Largest byte volume into any single tree node.
    pub max_node_bytes: u64,
    /// Total bytes crossing overlay links.
    pub total_bytes: u64,
    /// Number of daemons in the configuration.
    pub daemons: u32,
}

/// Prices the paper's three phases at arbitrary scale using the environment models.
#[derive(Clone, Debug)]
pub struct PhaseEstimator {
    /// The machine being modelled.
    pub cluster: Cluster,
    /// The task-set representation in use.
    pub representation: Representation,
    /// Edges of a locally merged 2D tree (the ring hang produces ~2 dozen).
    pub tree_edges_2d: u64,
    /// Edges of a locally merged 3D tree (more, because sampling over time fans the
    /// polling frames out).
    pub tree_edges_3d: u64,
    /// Bytes of frame names carried once per packet.
    pub frame_names_bytes: u64,
    /// Seconds per task of the front-end remap step (only paid by the hierarchical
    /// representation; 0.66 s / 208K tasks in the paper).
    pub remap_seconds_per_task: f64,
}

impl PhaseEstimator {
    /// An estimator with constants calibrated for the ring-hang workload.
    pub fn new(cluster: Cluster, representation: Representation) -> Self {
        PhaseEstimator {
            cluster,
            representation,
            tree_edges_2d: 24,
            tree_edges_3d: 60,
            frame_names_bytes: 420,
            remap_seconds_per_task: 3.1e-6,
        }
    }

    /// The topology spec the paper would use for this machine, job size and family.
    pub fn topology_for(&self, tasks: u64, kind: TopologyKind) -> TopologySpec {
        let plan = PlacementPlan::for_job(&self.cluster, tasks);
        TopologySpec::for_placement(kind, &plan)
    }

    /// Estimate the merge phase (Figures 4, 5 and 7).
    pub fn merge_estimate(&self, tasks: u64, kind: TopologyKind) -> MergeEstimate {
        let shape = self.cluster.job(tasks);
        let spec = self.topology_for(tasks, kind);
        let topology = Topology::build(spec.clone());
        let model = ReductionCostModel::standard(
            &topology,
            &self.cluster.interconnect,
            self.cluster.login_host_slowdown(),
            self.cluster.daemon_host_slowdown(),
        );

        let edges = self.tree_edges_2d + self.tree_edges_3d;
        let total_tasks = shape.tasks;
        let tasks_per_daemon = shape.tasks_per_daemon as u64;
        let representation = self.representation;
        let frame_bytes = self.frame_names_bytes;
        let cost = model.reduce(&move |_id, subtree_backends| {
            let label_bytes = match representation {
                Representation::GlobalBitVector => total_tasks.div_ceil(8) + 8,
                Representation::HierarchicalTaskList => {
                    let subtree_tasks =
                        (subtree_backends as u64 * tasks_per_daemon).min(total_tasks);
                    subtree_tasks.div_ceil(8) + 8
                }
            };
            edges * label_bytes + frame_bytes
        });

        // The paper's 1-deep tree on BG/L failed outright at 256 I/O-node daemons:
        // the front end cannot sustain that many direct connections each carrying
        // job-wide bit vectors.
        let failed = if kind == TopologyKind::Flat
            && self.cluster.daemons_on_io_nodes()
            && spec.backends() >= 256
        {
            Some(format!(
                "1-deep topology failed: the front end cannot absorb {} direct daemon \
                 connections (the paper observed this failure at 256 I/O nodes)",
                spec.backends()
            ))
        } else {
            None
        };

        MergeEstimate {
            time: cost.critical_path,
            failed,
            frontend_bytes: cost.frontend_bytes_in,
            max_node_bytes: cost.max_node_bytes_in,
            total_bytes: cost.total_link_bytes,
            daemons: spec.backends(),
        }
    }

    /// Estimate the front-end remap cost (the 0.66 s figure in Section V-C).
    pub fn remap_estimate(&self, tasks: u64) -> SimDuration {
        match self.representation {
            Representation::GlobalBitVector => SimDuration::ZERO,
            Representation::HierarchicalTaskList => {
                SimDuration::from_secs(tasks as f64 * self.remap_seconds_per_task)
            }
        }
    }

    /// Estimate the sampling phase (Figures 8, 9 and 10) by delegating to the
    /// stack-walking cost model.
    pub fn sampling_estimate(
        &self,
        tasks: u64,
        placement: BinaryPlacement,
        seed: u64,
    ) -> SamplingEstimate {
        SamplingCostModel::new(self.cluster.clone()).estimate(tasks, placement, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::{FrameVocabulary, RingHangApp};
    use machine::cluster::BglMode;

    #[test]
    fn real_session_end_to_end_on_atlas_shape() {
        let app = RingHangApp::new(256, FrameVocabulary::Linux);
        let config = SessionConfig::new(Cluster::test_cluster(64, 8));
        let result = run_session(&config, &app);
        assert_eq!(result.daemons, 32); // 256 tasks / 8 per node
        assert_eq!(result.gather.classes.len(), 3);
        assert_eq!(result.traces_gathered, 256 * 10);
        let mut attach = result.gather.attach_set();
        attach.sort_unstable();
        assert_eq!(attach, vec![0, 1, 2]);
    }

    #[test]
    fn both_representations_agree_end_to_end() {
        let app = RingHangApp::new(128, FrameVocabulary::BlueGeneL);
        let mut config = SessionConfig::new(Cluster::test_cluster(32, 8));
        config.samples_per_task = 3;
        config.representation = Representation::GlobalBitVector;
        let global = run_session(&config, &app);
        config.representation = Representation::HierarchicalTaskList;
        let hier = run_session(&config, &app);
        assert_eq!(global.gather.classes.len(), hier.gather.classes.len());
        for (g, h) in global.gather.classes.iter().zip(hier.gather.classes.iter()) {
            assert_eq!(g.tasks, h.tasks);
        }
        assert!(global.gather.metrics.total_link_bytes > hier.gather.metrics.total_link_bytes);
    }

    #[test]
    fn merge_estimate_reproduces_the_representation_gap() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let global = PhaseEstimator::new(bgl.clone(), Representation::GlobalBitVector);
        let hier = PhaseEstimator::new(bgl, Representation::HierarchicalTaskList);

        let growth = |est: &PhaseEstimator| {
            let small = est
                .merge_estimate(16_384, TopologyKind::TwoDeep)
                .time
                .as_secs();
            let large = est
                .merge_estimate(212_992, TopologyKind::TwoDeep)
                .time
                .as_secs();
            large / small
        };
        let g_growth = growth(&global);
        let h_growth = growth(&hier);
        assert!(
            g_growth > 6.0,
            "global bit vectors scale ~linearly: {g_growth}"
        );
        assert!(
            h_growth < g_growth / 2.0,
            "hierarchical lists scale much better: {h_growth} vs {g_growth}"
        );
    }

    #[test]
    fn one_deep_fails_on_bgl_at_256_daemons() {
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let est = PhaseEstimator::new(bgl, Representation::GlobalBitVector);
        // 16,384 compute nodes in CO mode = 256 I/O-node daemons.
        let flat = est.merge_estimate(16_384, TopologyKind::Flat);
        assert!(flat.failed.is_some());
        let smaller = est.merge_estimate(8_192, TopologyKind::Flat);
        assert!(smaller.failed.is_none());
        let two_deep = est.merge_estimate(16_384, TopologyKind::TwoDeep);
        assert!(two_deep.failed.is_none());
    }

    #[test]
    fn remap_estimate_matches_the_paper_calibration() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let est = PhaseEstimator::new(bgl.clone(), Representation::HierarchicalTaskList);
        let remap = est.remap_estimate(208_000).as_secs();
        assert!((0.5..0.9).contains(&remap), "paper: 0.66 s, got {remap}");
        let global = PhaseEstimator::new(bgl, Representation::GlobalBitVector);
        assert_eq!(global.remap_estimate(208_000), SimDuration::ZERO);
    }

    #[test]
    fn estimator_uses_the_paper_topology_rules() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let est = PhaseEstimator::new(bgl, Representation::GlobalBitVector);
        let spec = est.topology_for(212_992, TopologyKind::TwoDeep);
        assert_eq!(spec.level_widths, vec![1, 28, 1_664]);
    }
}
