//! Session-level errors.
//!
//! The original front end `expect()`ed its way through every decode: a malformed
//! merged packet aborted the whole tool.  The paper's scale argument cuts the other
//! way — with 208K endpoints feeding the tree, "one stream was malformed" must be a
//! reportable diagnosis (which channel, which endpoint produced the packet, at what
//! byte offset decoding failed), not a crash.  [`StatError`] carries exactly that
//! context up to the caller of [`crate::session::Session::attach`].

use std::fmt;

use tbon::network::TbonError;
use tbon::packet::EndpointId;

use crate::serialize::DecodeError;

/// The reduction channels a STAT session carries through the overlay in one walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MergeChannel {
    /// The 2D (trace/space) prefix-tree stream.
    Tree2d,
    /// The 3D (trace/space/time) prefix-tree stream.
    Tree3d,
    /// The daemon-order rank-map stream (hierarchical representation only).
    RankMap,
}

impl MergeChannel {
    /// Stable label used in channel tags and error messages.
    pub fn label(self) -> &'static str {
        match self {
            MergeChannel::Tree2d => "2d-tree",
            MergeChannel::Tree3d => "3d-tree",
            MergeChannel::RankMap => "rank-map",
        }
    }
}

impl fmt::Display for MergeChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything that can go wrong in a real session, with enough context to say which
/// stream from which endpoint failed and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatError {
    /// The overlay network rejected or failed the reduction.
    Reduce(TbonError),
    /// A merged packet arriving at the front end failed to decode.
    Decode {
        /// Which channel the malformed packet belonged to.
        channel: MergeChannel,
        /// The endpoint that produced the packet (for a merged packet, the tree node
        /// whose subtree the payload summarises).
        endpoint: EndpointId,
        /// The underlying wire-format error, including the byte offset.
        source: DecodeError,
    },
    /// The concatenated rank map does not cover every position of the merged tree,
    /// so the front-end remap would invent ranks.
    RankMapMismatch {
        /// Positions the merged tree's domain contains.
        positions: u64,
        /// Entries the concatenated rank map actually supplied.
        mapped: usize,
    },
    /// Overlay faults left no usable session: the front end died or every back-end
    /// daemon was lost, so not even a degraded gather can run.
    SessionNotViable {
        /// Back-end daemons lost to the faults.
        lost_backends: usize,
        /// Back-end daemons the topology originally had.
        total_backends: usize,
    },
    /// A scenario's injected fault addressed an endpoint the planned topology
    /// does not have — e.g. `BackendFromEnd(7)` against a 4-daemon tree.  The
    /// old behaviour silently clamped the index to the last endpoint, which made
    /// two distinct faults indistinguishable; an out-of-range fault is a bug in
    /// the scenario (or the campaign grid) and must surface as such.
    FaultOutOfRange {
        /// What kind of endpoint was addressed (`"backend"`, `"comm-process"`,
        /// `"mid-tree filter"`).
        kind: &'static str,
        /// The from-the-end index the fault asked for.
        index: usize,
        /// How many endpoints of that kind the topology actually has.
        width: usize,
    },
}

impl fmt::Display for StatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatError::Reduce(err) => write!(f, "overlay reduction failed: {err}"),
            StatError::Decode {
                channel,
                endpoint,
                source,
            } => write!(
                f,
                "front end could not decode the merged `{channel}` packet from {endpoint}: {source}"
            ),
            StatError::RankMapMismatch { positions, mapped } => write!(
                f,
                "rank map covers {mapped} positions but the merged tree has {positions}; \
                 the remap step cannot restore MPI rank order"
            ),
            StatError::SessionNotViable {
                lost_backends,
                total_backends,
            } => write!(
                f,
                "overlay faults lost {lost_backends} of {total_backends} daemons (or the \
                 front end itself); no degraded session can be formed"
            ),
            StatError::FaultOutOfRange { kind, index, width } => write!(
                f,
                "injected {kind} fault addresses index {index} from the end, but the \
                 topology only has {width} such endpoints"
            ),
        }
    }
}

impl std::error::Error for StatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StatError::Reduce(err) => Some(err),
            StatError::Decode { source, .. } => Some(source),
            StatError::RankMapMismatch { .. }
            | StatError::SessionNotViable { .. }
            | StatError::FaultOutOfRange { .. } => None,
        }
    }
}

impl From<TbonError> for StatError {
    fn from(err: TbonError) -> Self {
        StatError::Reduce(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_channel_endpoint_and_offset() {
        let err = StatError::Decode {
            channel: MergeChannel::Tree3d,
            endpoint: EndpointId(7),
            source: DecodeError::Truncated { offset: 42 },
        };
        let text = err.to_string();
        assert!(text.contains("3d-tree"));
        assert!(text.contains("ep7"));
        assert!(text.contains("42"));
    }

    #[test]
    fn fault_out_of_range_names_the_kind_and_widths() {
        let err = StatError::FaultOutOfRange {
            kind: "comm-process",
            index: 9,
            width: 4,
        };
        let text = err.to_string();
        assert!(text.contains("comm-process"));
        assert!(text.contains('9'));
        assert!(text.contains('4'));
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn tbon_errors_convert_with_context_preserved() {
        let err: StatError = TbonError::LeafCountMismatch {
            channel: "rank-map",
            expected: 16,
            actual: 15,
        }
        .into();
        assert!(err.to_string().contains("rank-map"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
