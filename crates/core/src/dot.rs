//! Graphviz (DOT) rendering of merged prefix trees.
//!
//! STAT presents its result as a call-graph prefix tree drawing: nodes are frames,
//! edges are labelled `count:[rank ranges]` — Figure 1 of the paper is exactly such a
//! drawing.  The reproduction emits standard DOT so the examples can be piped through
//! `dot -Tpdf` (or simply read as text, which is how EXPERIMENTS.md embeds the
//! Figure 1 reproduction).

use stackwalk::FrameTable;

use crate::graph::PrefixTree;
use crate::taskset::{format_rank_ranges, TaskSetOps};

/// Options controlling the rendering.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name.
    pub name: String,
    /// Maximum rank ranges to print per edge label before truncating with `...`.
    pub max_ranges: usize,
    /// Colour nodes by the size of their task set (mimics STAT's red/blue palette).
    pub color_by_population: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "stat_prefix_tree".to_string(),
            max_ranges: 6,
            color_by_population: true,
        }
    }
}

/// Render a tree to DOT.
pub fn to_dot<S: TaskSetOps>(
    tree: &PrefixTree<S>,
    table: &FrameTable,
    options: &DotOptions,
) -> String {
    let total = tree.tasks(tree.root()).count().max(1);
    let mut out = String::new();
    out.push_str(&format!("digraph {} {{\n", sanitize(&options.name)));
    out.push_str("  node [shape=box, fontname=\"Helvetica\"];\n");
    out.push_str(&format!(
        "  n0 [label=\"{}\", style=filled, fillcolor=lightgrey];\n",
        "/" // the synthetic root, drawn as "/" like STAT's GUI
    ));
    for (idx, frame, parent) in tree.iter_nodes() {
        let name = table.name(frame);
        let members = tree.tasks(idx).members();
        let label = format_rank_ranges(&members, options.max_ranges);
        let color = if options.color_by_population {
            population_color(members.len() as u64, total)
        } else {
            "white".to_string()
        };
        out.push_str(&format!(
            "  n{idx} [label=\"{}\", style=filled, fillcolor=\"{color}\"];\n",
            escape(name)
        ));
        out.push_str(&format!(
            "  n{parent} -> n{idx} [label=\"{}\"];\n",
            escape(&label)
        ));
    }
    out.push_str("}\n");
    out
}

fn population_color(count: u64, total: u64) -> String {
    // Full population = cool blue; singletons = warm red; in between = orange-ish.
    let frac = count as f64 / total as f64;
    if frac >= 0.999 {
        "#a0c4ff".to_string()
    } else if count <= 1 {
        "#ff6b6b".to_string()
    } else if frac < 0.1 {
        "#ffa94d".to_string()
    } else {
        "#ffe066".to_string()
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GlobalPrefixTree;
    use appsim::{gather_samples, Application, FrameVocabulary, RingHangApp};
    use stackwalk::FrameTable;

    fn figure_1_tree() -> (GlobalPrefixTree, FrameTable) {
        let app = RingHangApp::new(1_024, FrameVocabulary::BlueGeneL);
        let mut table = FrameTable::new();
        let samples = gather_samples(&app, 3, &mut table);
        let mut tree = GlobalPrefixTree::new_global(app.num_tasks());
        for s in &samples {
            tree.add_samples(s, s.rank);
        }
        (tree, table)
    }

    #[test]
    fn dot_output_contains_figure_1_landmarks() {
        let (tree, table) = figure_1_tree();
        let dot = to_dot(&tree, &table, &DotOptions::default());
        assert!(dot.starts_with("digraph stat_prefix_tree {"));
        assert!(dot.contains("_start_blrts"));
        assert!(dot.contains("PMPI_Barrier"));
        assert!(dot.contains("do_SendOrStall"));
        assert!(dot.contains("1022:[0,3-1023]"), "barrier edge label");
        assert!(dot.contains("1:[1]"), "hung rank edge label");
        assert!(dot.contains("1:[2]"), "victim rank edge label");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn every_non_root_node_has_exactly_one_incoming_edge() {
        let (tree, table) = figure_1_tree();
        let dot = to_dot(&tree, &table, &DotOptions::default());
        let edge_count = dot.matches(" -> ").count();
        assert_eq!(edge_count, tree.edge_count());
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(escape("operator\"new\""), "operator\\\"new\\\"");
        assert_eq!(sanitize("my graph!"), "my_graph_");
    }

    #[test]
    fn colors_distinguish_populations() {
        assert_ne!(population_color(1, 1_000), population_color(1_000, 1_000));
        assert_eq!(population_color(1_000, 1_000), "#a0c4ff");
        assert_eq!(population_color(1, 1_000), "#ff6b6b");
    }
}
