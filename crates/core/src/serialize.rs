//! Wire format for prefix trees.
//!
//! STAT's merge filter runs inside MRNet communication processes, which only see
//! packed byte buffers; the filter deserialises its children's trees, merges them and
//! re-serialises the result for its parent.  The reproduction does the same, so the
//! packet sizes flowing through the in-process TBON are the *real* serialised sizes —
//! including, for the dense representation, all the zero bits Section V complains
//! about.
//!
//! The format is deliberately simple and explicit (little-endian, no compression):
//!
//! ```text
//! magic   u32   0x53544154 ("STAT")
//! repr    u8    0 = dense/job-wide, 1 = subtree/hierarchical
//! width   u64   domain width of every task set in the tree
//! nframes u32   frame-name table length
//!   per frame:  u16 length + UTF-8 bytes
//! nnodes  u32   node count (including the synthetic root at index 0)
//!   per node:   parent u32 (MAX for root), frame u32 (MAX for root, else an index
//!               into the frame-name table), then ceil(width/64) u64 words of the
//!               task-set bitmap
//! ```
//!
//! Frame ids are *local to the packet*: the deserialiser re-interns every name into
//! the receiving process's frame table, so daemons do not need to agree on interning
//! order — just as MRNet processes do not share address spaces.

use stackwalk::{FrameId, FrameTable};

use crate::graph::PrefixTree;
use crate::taskset::{DenseBitVector, SubtreeTaskList, TaskSetOps};

/// Magic number identifying a serialised STAT prefix tree.
pub const MAGIC: u32 = 0x5354_4154;

/// Extension trait for task sets that can cross the wire.
pub trait WireTaskSet: TaskSetOps {
    /// Representation tag stored in the header.
    const TAG: u8;
    /// The packed bitmap words.
    fn wire_words(&self) -> &[u64];
    /// Rebuild from packed words.
    fn from_wire_words(width: u64, words: Vec<u64>) -> Self;
}

impl WireTaskSet for DenseBitVector {
    const TAG: u8 = 0;
    fn wire_words(&self) -> &[u64] {
        self.words()
    }
    fn from_wire_words(width: u64, words: Vec<u64>) -> Self {
        DenseBitVector::from_words(width, words)
    }
}

impl WireTaskSet for SubtreeTaskList {
    const TAG: u8 = 1;
    fn wire_words(&self) -> &[u64] {
        self.words()
    }
    fn from_wire_words(width: u64, words: Vec<u64>) -> Self {
        SubtreeTaskList::from_words(width, words)
    }
}

/// Errors that can occur while decoding a packet.
///
/// Every variant that corresponds to a malformed buffer carries the byte offset at
/// which decoding failed, so a front end looking at a bad packet from one of 208K
/// endpoints can report *where* the stream went wrong, not just that it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the structure it claims to contain.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: usize,
    },
    /// The magic number did not match.
    BadMagic,
    /// The representation tag did not match the expected task-set type.
    WrongRepresentation {
        /// Tag found in the buffer.
        found: u8,
        /// Tag the caller expected.
        expected: u8,
    },
    /// A frame name was not valid UTF-8.
    BadFrameName {
        /// Byte offset of the offending name.
        offset: usize,
    },
    /// A node referenced a parent or frame index outside the packet.
    BadIndex {
        /// Byte offset of the offending node record.
        offset: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { offset } => {
                write!(f, "buffer truncated at byte offset {offset}")
            }
            DecodeError::BadMagic => write!(f, "bad magic number (not a STAT packet)"),
            DecodeError::WrongRepresentation { found, expected } => write!(
                f,
                "representation tag {found} does not match the expected tag {expected}"
            ),
            DecodeError::BadFrameName { offset } => {
                write!(f, "frame name at byte offset {offset} is not valid UTF-8")
            }
            DecodeError::BadIndex { offset } => write!(
                f,
                "node record at byte offset {offset} references an out-of-range index"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let truncated = DecodeError::Truncated { offset: self.pos };
        let end = self.pos.checked_add(n).ok_or(truncated.clone())?;
        let s = self.buf.get(self.pos..end).ok_or(truncated)?;
        self.pos = end;
        Ok(s)
    }
    /// A fixed-size read; the length mismatch arm is unreachable (`take(N)`
    /// returns exactly `N` bytes) but decodes to `Truncated` rather than a panic.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let offset = self.pos;
        self.take(N)?
            .try_into()
            .map_err(|_| DecodeError::Truncated { offset })
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let [b] = self.array()?;
        Ok(b)
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
}

/// Serialise a tree (and the names of the frames it references) into a packet body.
pub fn encode_tree<S: WireTaskSet>(tree: &PrefixTree<S>, table: &FrameTable) -> Vec<u8> {
    // Collect the frames the tree actually references, assigning packet-local ids.
    let mut local_names: Vec<&str> = Vec::new();
    let mut local_of: std::collections::HashMap<FrameId, u32> = std::collections::HashMap::new();
    for (_, frame, _) in tree.iter_nodes() {
        local_of.entry(frame).or_insert_with(|| {
            local_names.push(table.name(frame));
            (local_names.len() - 1) as u32
        });
    }

    let mut out = Vec::with_capacity(64 + tree.node_count() * (16 + tree.width() as usize / 8));
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(S::TAG);
    out.extend_from_slice(&tree.width().to_le_bytes());
    out.extend_from_slice(&(local_names.len() as u32).to_le_bytes());
    for name in &local_names {
        let bytes = name.as_bytes();
        out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out.extend_from_slice(&(tree.node_count() as u32).to_le_bytes());
    // Root node first.
    let encode_set = |out: &mut Vec<u8>, set: &S| {
        for word in set.wire_words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
    };
    out.extend_from_slice(&u32::MAX.to_le_bytes()); // root parent
    out.extend_from_slice(&u32::MAX.to_le_bytes()); // root frame
    encode_set(&mut out, tree.tasks(tree.root()));
    for (idx, frame, parent) in tree.iter_nodes() {
        out.extend_from_slice(&(parent as u32).to_le_bytes());
        // stat-analyzer: allow(hot-path-panic) — every frame id this loop sees was inserted by the collection pass over the same iterator above
        out.extend_from_slice(&local_of[&frame].to_le_bytes());
        encode_set(&mut out, tree.tasks(idx));
    }
    out
}

/// Deserialise a packet body into a tree, re-interning frame names into `table`.
pub fn decode_tree<S: WireTaskSet>(
    buf: &[u8],
    table: &mut FrameTable,
) -> Result<PrefixTree<S>, DecodeError> {
    let mut r = Reader::new(buf);
    if r.u32()? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let tag = r.u8()?;
    if tag != S::TAG {
        return Err(DecodeError::WrongRepresentation {
            found: tag,
            expected: S::TAG,
        });
    }
    let width = r.u64()?;
    let nframes = r.u32()? as usize;
    // A corrupted length prefix must fail as `Truncated`, not drive a huge
    // allocation: each frame record needs at least its 2-byte length.
    if nframes.saturating_mul(2) > r.remaining() {
        return Err(DecodeError::Truncated { offset: r.pos });
    }
    let mut frames: Vec<FrameId> = Vec::with_capacity(nframes);
    for _ in 0..nframes {
        let len = r.u16()? as usize;
        let name_offset = r.pos;
        let bytes = r.take(len)?;
        let name = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadFrameName {
            offset: name_offset,
        })?;
        frames.push(table.intern(name));
    }
    let count_offset = r.pos;
    let nnodes = r.u32()? as usize;
    if nnodes == 0 {
        return Err(DecodeError::BadIndex {
            offset: count_offset,
        });
    }
    // Same guard for the claimed domain width: every node (there is at least
    // the root) carries `ceil(width / 64)` 8-byte words, so a width whose set
    // cannot fit in the rest of the buffer is a lie.
    if width.div_ceil(64).saturating_mul(8) > r.remaining() as u64 {
        return Err(DecodeError::Truncated { offset: r.pos });
    }
    let words_per_set = width.div_ceil(64) as usize;
    let read_set = |r: &mut Reader<'_>| -> Result<S, DecodeError> {
        let mut words = Vec::with_capacity(words_per_set);
        for _ in 0..words_per_set {
            words.push(r.u64()?);
        }
        Ok(S::from_wire_words(width, words))
    };

    let mut tree = PrefixTree::<S>::new(width, S::TAG == 1);
    // Root.
    let root_offset = r.pos;
    let root_parent = r.u32()?;
    let root_frame = r.u32()?;
    if root_parent != u32::MAX || root_frame != u32::MAX {
        return Err(DecodeError::BadIndex {
            offset: root_offset,
        });
    }
    let root_set = read_set(&mut r)?;
    tree.replace_tasks(0, root_set);
    // Children arrive in index order, so parents always precede their children.
    for idx in 1..nnodes {
        let node_offset = r.pos;
        let parent = r.u32()? as usize;
        let frame_local = r.u32()? as usize;
        if parent >= idx {
            return Err(DecodeError::BadIndex {
                offset: node_offset,
            });
        }
        let frame = frames
            .get(frame_local)
            .copied()
            .ok_or(DecodeError::BadIndex {
                offset: node_offset,
            })?;
        let set = read_set(&mut r)?;
        let node = tree.append_node(parent, frame);
        tree.replace_tasks(node, set);
    }
    Ok(tree)
}

/// The exact size in bytes [`encode_tree`] would produce, without building the
/// buffer.
///
/// The streaming path uses this to report, per wave, what a *full* tree packet
/// would have cost next to the delta actually shipped — pricing both sides of
/// the comparison with the same wire format.  O(nodes) plus one pass over the
/// referenced frame names.
pub fn encoded_tree_size<S: WireTaskSet>(tree: &PrefixTree<S>, table: &FrameTable) -> usize {
    let mut seen: std::collections::HashSet<FrameId> = std::collections::HashSet::new();
    let mut frame_bytes = 0usize;
    for (_, frame, _) in tree.iter_nodes() {
        if seen.insert(frame) {
            frame_bytes += 2 + table.name(frame).len();
        }
    }
    let words_per_set = tree.width().div_ceil(64) as usize;
    // magic + tag + width + nframes, the name records, nnodes, then per node:
    // parent u32 + frame u32 + the bitmap words.
    4 + 1 + 8 + 4 + frame_bytes + 4 + tree.node_count() * (8 + words_per_set * 8)
}

/// Encode a daemon-order rank map (the RankMap packets that let the front end remap).
pub fn encode_rank_map(ranks: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + ranks.len() * 8);
    out.extend_from_slice(&(ranks.len() as u64).to_le_bytes());
    for r in ranks {
        out.extend_from_slice(&r.to_le_bytes());
    }
    out
}

/// Decode a rank map.
pub fn decode_rank_map(buf: &[u8]) -> Result<Vec<u64>, DecodeError> {
    let mut r = Reader::new(buf);
    let n = r.u64()? as usize;
    if n.saturating_mul(8) > r.remaining() {
        return Err(DecodeError::Truncated { offset: r.pos });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GlobalPrefixTree, SubtreePrefixTree};
    use stackwalk::StackTrace;

    fn sample_global(table: &mut FrameTable) -> GlobalPrefixTree {
        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let stall = StackTrace::new(table.intern_path(&["_start", "main", "do_SendOrStall"]));
        let mut tree = GlobalPrefixTree::new_global(64);
        for rank in 0..32 {
            tree.add_trace(if rank == 1 { &stall } else { &barrier }, rank);
        }
        tree
    }

    #[test]
    fn global_tree_round_trips() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let bytes = encode_tree(&tree, &table);

        let mut other_table = FrameTable::new();
        let back: GlobalPrefixTree = decode_tree(&bytes, &mut other_table).unwrap();
        assert_eq!(back.node_count(), tree.node_count());
        assert_eq!(back.width(), tree.width());
        assert_eq!(
            back.tasks(back.root()).members(),
            tree.tasks(tree.root()).members()
        );
        // Frame names survive re-interning even into a fresh table.
        let names: Vec<&str> = back
            .leaves()
            .iter()
            .map(|&l| other_table.name(back.frame(l).unwrap()))
            .collect();
        assert!(names.contains(&"MPI_Barrier"));
        assert!(names.contains(&"do_SendOrStall"));
    }

    #[test]
    fn subtree_tree_round_trips() {
        let mut table = FrameTable::new();
        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let mut tree = SubtreePrefixTree::new_subtree(8);
        for pos in 0..8 {
            tree.add_trace(&barrier, pos);
        }
        let bytes = encode_tree(&tree, &table);
        let mut t2 = FrameTable::new();
        let back: SubtreePrefixTree = decode_tree(&bytes, &mut t2).unwrap();
        assert!(back.is_concatenating());
        assert_eq!(back.width(), 8);
        assert_eq!(back.tasks(back.root()).count(), 8);
    }

    #[test]
    fn representation_mismatch_is_detected() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let bytes = encode_tree(&tree, &table);
        let mut t2 = FrameTable::new();
        let err = decode_tree::<SubtreeTaskList>(&bytes, &mut t2).unwrap_err();
        assert_eq!(
            err,
            DecodeError::WrongRepresentation {
                found: 0,
                expected: 1
            }
        );
    }

    #[test]
    fn corrupt_buffers_are_rejected_not_panicked_on() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let bytes = encode_tree(&tree, &table);

        let mut t2 = FrameTable::new();
        // A 3-byte buffer cannot even hold the magic number; the failure offset is
        // where the reader stood when it ran out (the start of the magic field).
        assert_eq!(
            decode_tree::<DenseBitVector>(&bytes[..3], &mut t2).unwrap_err(),
            DecodeError::Truncated { offset: 0 }
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            decode_tree::<DenseBitVector>(&bad_magic, &mut t2).unwrap_err(),
            DecodeError::BadMagic
        );
        let truncated = &bytes[..bytes.len() - 5];
        let err = decode_tree::<DenseBitVector>(truncated, &mut t2).unwrap_err();
        match err {
            DecodeError::Truncated { offset } => assert!(offset > 0 && offset < bytes.len()),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn lying_length_prefixes_fail_cleanly_instead_of_allocating() {
        // A corrupted interior node can forward a structurally plausible packet
        // whose length prefixes are astronomical.  Decoding must report
        // `Truncated`, not attempt the allocation (capacity overflow / OOM).
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let bytes = encode_tree(&tree, &table);

        // nframes lives right after magic(4) + tag(1) + width(8).
        let mut huge_frames = bytes.clone();
        huge_frames[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut t2 = FrameTable::new();
        assert!(matches!(
            decode_tree::<DenseBitVector>(&huge_frames, &mut t2).unwrap_err(),
            DecodeError::Truncated { .. }
        ));

        // width is the u64 at offset 5: claim ~2^63 tasks per set.
        let mut huge_width = bytes.clone();
        huge_width[5..13].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            decode_tree::<DenseBitVector>(&huge_width, &mut t2).unwrap_err(),
            DecodeError::Truncated { .. }
        ));

        // Rank maps: a u64 count far beyond the buffer.
        let mut huge_map = encode_rank_map(&[1, 2, 3]);
        huge_map[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_rank_map(&huge_map).unwrap_err(),
            DecodeError::Truncated { .. }
        ));
    }

    #[test]
    fn encoded_size_reflects_the_representation() {
        let mut table = FrameTable::new();
        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        // A daemon responsible for 8 of a 8,192-task job.
        let mut dense = GlobalPrefixTree::new_global(8_192);
        let mut subtree = SubtreePrefixTree::new_subtree(8);
        for i in 0..8u64 {
            dense.add_trace(&barrier, i);
            subtree.add_trace(&barrier, i);
        }
        let dense_bytes = encode_tree(&dense, &table).len();
        let subtree_bytes = encode_tree(&subtree, &table).len();
        assert!(
            dense_bytes > 20 * subtree_bytes,
            "dense {dense_bytes} vs subtree {subtree_bytes}"
        );
    }

    #[test]
    fn encoded_size_helper_matches_the_encoder_exactly() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        assert_eq!(
            encoded_tree_size(&tree, &table),
            encode_tree(&tree, &table).len()
        );

        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let mut subtree = SubtreePrefixTree::new_subtree(200);
        for pos in 0..200 {
            subtree.add_trace(&barrier, pos);
        }
        assert_eq!(
            encoded_tree_size(&subtree, &table),
            encode_tree(&subtree, &table).len()
        );

        // Degenerate root-only tree (a quiescent wave's delta).
        let empty = GlobalPrefixTree::new_global(64);
        assert_eq!(
            encoded_tree_size(&empty, &table),
            encode_tree(&empty, &table).len()
        );
    }

    #[test]
    fn rank_map_round_trips() {
        let ranks = vec![0u64, 2, 1, 3, 1_000_000];
        let bytes = encode_rank_map(&ranks);
        assert_eq!(decode_rank_map(&bytes).unwrap(), ranks);
        assert_eq!(
            decode_rank_map(&bytes[..4]).unwrap_err(),
            DecodeError::Truncated { offset: 0 }
        );
    }
}
