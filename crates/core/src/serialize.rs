//! Wire format for prefix trees — version 2: interned frames, varint bodies.
//!
//! STAT's merge filter runs inside MRNet communication processes, which only see
//! packed byte buffers; the filter deserialises its children's trees, merges them and
//! re-serialises the result for its parent.  The reproduction does the same, so the
//! packet sizes flowing through the in-process TBON are the *real* serialised sizes —
//! including, for the dense representation, all the zero words Section V complains
//! about.
//!
//! Version 1 shipped every frame name as a length-prefixed string in every packet
//! and wrote that length as `bytes.len() as u16` — a silent truncation for any name
//! over 64 KiB.  Version 2 eliminates the whole bug class: frame names live in a
//! session-global [`FrameDictionary`] negotiated once at session setup, packets
//! carry u32 ids, and every length or count on the wire is an LEB128 varint, so no
//! fixed-width cast exists to truncate.
//!
//! ```text
//! magic    u32     0x53544154 ("STAT"), little-endian
//! version  u8      2 — anything else is rejected with DecodeError::Version
//! repr     u8      0 = dense/job-wide, 1 = subtree/hierarchical
//! width    varint  domain width of every task set in the tree
//! base     varint  negotiated dictionary length the encoder assumed
//! nrecords varint  incremental dictionary records (frames past the base)
//!   per record:    gid varint (>= base), name-length varint, UTF-8 bytes
//! nnodes   varint  node count including the implicit root at index 0
//!   root:          task-set bytes only (no parent / frame fields)
//!   per node:      parent-delta varint (index - parent, >= 1),
//!                  global frame id varint, task-set bytes
//! ```
//!
//! Task sets are encoded per representation.  Dense (job-wide) sets ship one
//! varint per 64-bit word — an empty word costs one byte instead of eight, but
//! the byte count still grows with the *job*, preserving the Section V scaling
//! behaviour the dense representation exists to demonstrate.  Subtree sets ship
//! a run-length token stream (`token = n << 2 | kind`): kind 0 is a run of `n`
//! zero words, kind 1 a run of `n` saturated words (every valid bit for that
//! word position set — the common "all local tasks in the barrier" case costs
//! one token), kind 2 announces `n` literal 8-byte words.
//!
//! The transitional v1 codec survives as [`encode_tree_v1`]/[`decode_tree_v1`]
//! for migration tests and the `BENCH_wire` baseline; its encoder now returns a
//! typed [`EncodeError::FrameNameTooLong`] instead of silently corrupting.

use std::collections::{BTreeMap, HashMap};

use stackwalk::{FrameDictionary, FrameId, FrameTable};

use crate::graph::PrefixTree;
use crate::taskset::{DenseBitVector, SubtreeTaskList, TaskSetOps};

/// Magic number identifying a serialised STAT prefix tree.
pub const MAGIC: u32 = 0x5354_4154;

/// Wire-format version this module encodes and the only one it decodes.
pub const VERSION: u8 = 2;

/// Widest task-set domain a packet may claim.  A corrupted varint can otherwise
/// announce a width whose zero-run reconstruction alone would exhaust memory;
/// 2^28 tasks is ~1,200× the largest job the paper measured.
pub const MAX_WIRE_WIDTH: u64 = 1 << 28;

/// Extension trait for task sets that can cross the wire.
pub trait WireTaskSet: TaskSetOps {
    /// Representation tag stored in the header.
    const TAG: u8;
    /// The packed bitmap words.
    fn wire_words(&self) -> &[u64];
    /// Rebuild from packed words.
    fn from_wire_words(width: u64, words: Vec<u64>) -> Self;
}

impl WireTaskSet for DenseBitVector {
    const TAG: u8 = 0;
    fn wire_words(&self) -> &[u64] {
        self.words()
    }
    fn from_wire_words(width: u64, words: Vec<u64>) -> Self {
        DenseBitVector::from_words(width, words)
    }
}

impl WireTaskSet for SubtreeTaskList {
    const TAG: u8 = 1;
    fn wire_words(&self) -> &[u64] {
        self.words()
    }
    fn from_wire_words(width: u64, words: Vec<u64>) -> Self {
        SubtreeTaskList::from_words(width, words)
    }
}

/// Errors that can occur while decoding a packet.
///
/// Every variant that corresponds to a malformed buffer carries the byte offset at
/// which decoding failed, so a front end looking at a bad packet from one of 208K
/// endpoints can report *where* the stream went wrong, not just that it did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the structure it claims to contain.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: usize,
    },
    /// The magic number did not match.
    BadMagic,
    /// The packet announces a wire-format version this decoder does not speak —
    /// including legacy v1 bodies, whose representation byte lands here.
    Version {
        /// Version byte found in the buffer.
        found: u8,
    },
    /// The representation tag did not match the expected task-set type.
    WrongRepresentation {
        /// Tag found in the buffer.
        found: u8,
        /// Tag the caller expected.
        expected: u8,
    },
    /// A frame name was not valid UTF-8.
    BadFrameName {
        /// Byte offset of the offending name.
        offset: usize,
    },
    /// A node referenced a parent, frame id or run length outside the packet.
    BadIndex {
        /// Byte offset of the offending record.
        offset: usize,
    },
    /// A varint ran past 64 bits.
    BadVarint {
        /// Byte offset at which the varint started.
        offset: usize,
    },
    /// Two packets that should share one session dictionary disagree about its
    /// negotiated base length — they cannot be merged by id.
    DictionaryMismatch {
        /// Base length of the packet already absorbed.
        expected: u32,
        /// Base length the offending packet claims.
        found: u32,
    },
    /// A decoded rank map names an MPI rank outside the job.  Varint deltas
    /// decode permissively, so a corrupted map can parse cleanly and only this
    /// semantic check separates it from a real one.
    RankOutOfRange {
        /// The offending decoded rank.
        rank: u64,
        /// Number of tasks in the job.
        tasks: u64,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { offset } => {
                write!(f, "buffer truncated at byte offset {offset}")
            }
            DecodeError::BadMagic => write!(f, "bad magic number (not a STAT packet)"),
            DecodeError::Version { found } => write!(
                f,
                "unsupported wire-format version {found} (this decoder speaks version {VERSION})"
            ),
            DecodeError::WrongRepresentation { found, expected } => write!(
                f,
                "representation tag {found} does not match the expected tag {expected}"
            ),
            DecodeError::BadFrameName { offset } => {
                write!(f, "frame name at byte offset {offset} is not valid UTF-8")
            }
            DecodeError::BadIndex { offset } => write!(
                f,
                "record at byte offset {offset} references an out-of-range index"
            ),
            DecodeError::BadVarint { offset } => {
                write!(f, "malformed varint at byte offset {offset}")
            }
            DecodeError::DictionaryMismatch { expected, found } => write!(
                f,
                "packet negotiated a dictionary base of {found} names, but this session's base is {expected}"
            ),
            DecodeError::RankOutOfRange { rank, tasks } => write!(
                f,
                "rank map names MPI rank {rank} in a {tasks}-task job"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Errors the transitional v1 encoder can hit.  The v2 encoder cannot fail:
/// varints have no fixed-width field to overflow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A frame name does not fit v1's 16-bit length prefix — the exact spot
    /// where the old `as u16` cast silently corrupted the packet.
    FrameNameTooLong {
        /// Length of the offending name in bytes.
        length: usize,
        /// Largest length the v1 format can express.
        limit: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::FrameNameTooLong { length, limit } => write!(
                f,
                "frame name of {length} bytes exceeds the v1 length-prefix limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

// ---------------------------------------------------------------------------
// Varints and the write sink
// ---------------------------------------------------------------------------

/// Byte sink the encoder writes into: a real buffer, or a counter that prices
/// the encoding without materialising it.  Sharing one write path is what lets
/// `encoded_tree_size` match `encode_tree` byte for byte by construction.
trait WireSink {
    fn put(&mut self, byte: u8);
    fn put_slice(&mut self, bytes: &[u8]);
}

impl WireSink for Vec<u8> {
    fn put(&mut self, byte: u8) {
        self.push(byte);
    }
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

struct ByteCount(usize);

impl WireSink for ByteCount {
    fn put(&mut self, _byte: u8) {
        self.0 += 1;
    }
    fn put_slice(&mut self, bytes: &[u8]) {
        self.0 += bytes.len();
    }
}

fn put_varint(sink: &mut impl WireSink, mut value: u64) {
    loop {
        // stat-analyzer: allow(truncating-cast) — masked to the low 7 bits first
        let low = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            sink.put(low);
            return;
        }
        sink.put(low | 0x80);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let truncated = DecodeError::Truncated { offset: self.pos };
        let end = self.pos.checked_add(n).ok_or(truncated.clone())?;
        let s = self.buf.get(self.pos..end).ok_or(truncated)?;
        self.pos = end;
        Ok(s)
    }
    /// A fixed-size read; the length mismatch arm is unreachable (`take(N)`
    /// returns exactly `N` bytes) but decodes to `Truncated` rather than a panic.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let offset = self.pos;
        self.take(N)?
            .try_into()
            .map_err(|_| DecodeError::Truncated { offset })
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let [b] = self.array()?;
        Ok(b)
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn varint(&mut self) -> Result<u64, DecodeError> {
        let start = self.pos;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            let low = u64::from(byte & 0x7f);
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(DecodeError::BadVarint { offset: start });
            }
            value |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
    /// A varint that must fit a `usize` count; a lying prefix fails as `Truncated`.
    fn varint_count(&mut self) -> Result<usize, DecodeError> {
        let offset = self.pos;
        usize::try_from(self.varint()?).map_err(|_| DecodeError::Truncated { offset })
    }
    /// A varint that must fit a u32 id.
    fn varint_u32(&mut self) -> Result<u32, DecodeError> {
        let offset = self.pos;
        u32::try_from(self.varint()?).map_err(|_| DecodeError::BadIndex { offset })
    }
}

// ---------------------------------------------------------------------------
// Incremental dictionary records
// ---------------------------------------------------------------------------

/// The incremental dictionary records travelling with (or merged from) v2
/// packets: names for frames interned past the negotiated base.
///
/// A merge filter unions these across its children (identical gids always carry
/// identical names — they came from one session dictionary) and re-emits the
/// union, so every packet stays self-contained without re-shipping the base.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireFrames {
    base_len: u32,
    records: BTreeMap<u32, String>,
}

impl WireFrames {
    /// An empty record set over a dictionary of `base_len` negotiated names.
    pub fn new(base_len: u32) -> Self {
        WireFrames {
            base_len,
            records: BTreeMap::new(),
        }
    }

    /// The negotiated base length the packet assumed.
    pub fn base_len(&self) -> u32 {
        self.base_len
    }

    /// Record an incremental name.
    pub fn insert(&mut self, gid: u32, name: impl Into<String>) {
        self.records.insert(gid, name.into());
    }

    /// The name of an incremental frame, if this packet carried it.
    pub fn name_of(&self, gid: u32) -> Option<&str> {
        self.records.get(&gid).map(String::as_str)
    }

    /// Incremental records in id order.
    pub fn records(&self) -> impl Iterator<Item = (u32, &str)> + '_ {
        self.records.iter().map(|(gid, name)| (*gid, name.as_str()))
    }

    /// Number of incremental records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Absorb another packet's records.  Both packets must have negotiated the
    /// same base — a mismatch means they belong to different sessions.
    pub fn merge(&mut self, other: &WireFrames) -> Result<(), DecodeError> {
        if self.base_len != other.base_len {
            return Err(DecodeError::DictionaryMismatch {
                expected: self.base_len,
                found: other.base_len,
            });
        }
        for (gid, name) in &other.records {
            self.records.entry(*gid).or_insert_with(|| name.clone());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// v2 encoding
// ---------------------------------------------------------------------------

/// Which global id each referenced frame maps to, plus the incremental records
/// the packet must carry to stay self-contained.
struct FramePlan<'a> {
    base_len: u32,
    gid_of: HashMap<FrameId, u32>,
    records: BTreeMap<u32, &'a str>,
}

fn plan_with_dictionary<'a, S: WireTaskSet>(
    tree: &PrefixTree<S>,
    table: &'a FrameTable,
    dict: &FrameDictionary,
) -> FramePlan<'a> {
    let base_len = dict.base_len();
    let mut gid_of = HashMap::new();
    let mut records = BTreeMap::new();
    for (_, frame, _) in tree.iter_nodes() {
        gid_of.entry(frame).or_insert_with(|| {
            let name = table.name(frame);
            let gid = dict.intern(name);
            if gid >= base_len {
                records.insert(gid, name);
            }
            gid
        });
    }
    FramePlan {
        base_len,
        gid_of,
        records,
    }
}

fn plan_from_wire<'a, S: WireTaskSet>(
    tree: &PrefixTree<S>,
    frames: &'a WireFrames,
) -> FramePlan<'a> {
    let base_len = frames.base_len();
    let mut gid_of = HashMap::new();
    let mut records = BTreeMap::new();
    for (_, frame, _) in tree.iter_nodes() {
        gid_of.entry(frame).or_insert_with(|| {
            let gid = frame.0;
            if gid >= base_len {
                // A merged tree only references frames its decoded inputs
                // carried, so the record is always present; ship an empty name
                // rather than panic mid-filter if that invariant ever breaks.
                records.insert(gid, frames.name_of(gid).unwrap_or(""));
            }
            gid
        });
    }
    FramePlan {
        base_len,
        gid_of,
        records,
    }
}

/// Bits of the last (possibly partial) word that are valid for a domain of
/// `width` tasks: the value a fully saturated word at `index` holds.
fn full_word_mask(width: u64, index: usize) -> u64 {
    let hi = (index as u64 + 1).saturating_mul(64);
    if hi <= width {
        u64::MAX
    } else {
        // The word exists, so width > index * 64 and the shift is in 1..=63.
        u64::MAX >> (hi - width)
    }
}

const RUN_ZERO: u64 = 0;
const RUN_FULL: u64 = 1;
const RUN_LITERAL: u64 = 2;

fn run_kind(word: u64, full: u64) -> u64 {
    if word == 0 {
        RUN_ZERO
    } else if word == full {
        RUN_FULL
    } else {
        RUN_LITERAL
    }
}

fn write_task_set<S: WireTaskSet>(sink: &mut impl WireSink, set: &S, width: u64) {
    let words = set.wire_words();
    if S::TAG == DenseBitVector::TAG {
        // Dense sets stay proportional to the job: one varint per word, so the
        // empty words Section V complains about cost one byte each instead of
        // eight — smaller, but still linear in total tasks by design.
        for &word in words {
            put_varint(sink, word);
        }
        return;
    }
    // Subtree sets run-length encode: zero and saturated runs are one token,
    // mixed words ship literally after a kind-2 token.
    let mut iter = words.iter().enumerate().peekable();
    while let Some(&(start, &first)) = iter.peek() {
        let kind = run_kind(first, full_word_mask(width, start));
        let run = iter
            .clone()
            .take_while(|&(k, &w)| run_kind(w, full_word_mask(width, k)) == kind)
            .count() as u64;
        put_varint(sink, (run << 2) | kind);
        for _ in 0..run {
            if let Some((_, &word)) = iter.next() {
                if kind == RUN_LITERAL {
                    sink.put_slice(&word.to_le_bytes());
                }
            }
        }
    }
}

fn write_tree<S: WireTaskSet>(
    sink: &mut impl WireSink,
    tree: &PrefixTree<S>,
    plan: &FramePlan<'_>,
) {
    sink.put_slice(&MAGIC.to_le_bytes());
    sink.put(VERSION);
    sink.put(S::TAG);
    put_varint(sink, tree.width());
    put_varint(sink, u64::from(plan.base_len));
    put_varint(sink, plan.records.len() as u64);
    for (gid, name) in &plan.records {
        put_varint(sink, u64::from(*gid));
        put_varint(sink, name.len() as u64);
        sink.put_slice(name.as_bytes());
    }
    put_varint(sink, tree.node_count() as u64);
    write_task_set::<S>(sink, tree.tasks(tree.root()), tree.width());
    for (idx, frame, parent) in tree.iter_nodes() {
        // Parents precede children in index order, so the delta is always >= 1
        // and usually tiny — one varint byte for the common case.
        put_varint(sink, (idx - parent) as u64);
        // stat-analyzer: allow(hot-path-panic) — every frame id this loop sees was inserted by the planning pass over the same iterator
        put_varint(sink, u64::from(plan.gid_of[&frame]));
        write_task_set::<S>(sink, tree.tasks(idx), tree.width());
    }
}

/// Serialise a tree into a v2 packet body, interning its frames into the
/// session dictionary.  Frames past the negotiated base travel as incremental
/// dictionary records, once per packet.
pub fn encode_tree<S: WireTaskSet>(
    tree: &PrefixTree<S>,
    table: &FrameTable,
    dict: &FrameDictionary,
) -> Vec<u8> {
    let plan = plan_with_dictionary(tree, table, dict);
    let mut out = Vec::with_capacity(32 + tree.node_count() * 8);
    write_tree(&mut out, tree, &plan);
    out
}

/// The exact size in bytes [`encode_tree`] would produce, without building the
/// buffer.  Shares the encoder's write path, so the two cannot drift.
pub fn encoded_tree_size<S: WireTaskSet>(
    tree: &PrefixTree<S>,
    table: &FrameTable,
    dict: &FrameDictionary,
) -> usize {
    let plan = plan_with_dictionary(tree, table, dict);
    let mut count = ByteCount(0);
    write_tree(&mut count, tree, &plan);
    count.0
}

/// Re-serialise a merged tree whose frame ids are already session-global —
/// the filter path.  No dictionary handle needed: the incremental records the
/// inputs carried (unioned into `frames`) keep the packet self-contained.
pub fn encode_merged_tree<S: WireTaskSet>(tree: &PrefixTree<S>, frames: &WireFrames) -> Vec<u8> {
    let plan = plan_from_wire(tree, frames);
    let mut out = Vec::with_capacity(32 + tree.node_count() * 8);
    write_tree(&mut out, tree, &plan);
    out
}

/// The exact size [`encode_merged_tree`] would produce.
pub fn encoded_merged_tree_size<S: WireTaskSet>(
    tree: &PrefixTree<S>,
    frames: &WireFrames,
) -> usize {
    let plan = plan_from_wire(tree, frames);
    let mut count = ByteCount(0);
    write_tree(&mut count, tree, &plan);
    count.0
}

// ---------------------------------------------------------------------------
// v2 decoding
// ---------------------------------------------------------------------------

fn read_dense_words(r: &mut Reader<'_>, words_per_set: usize) -> Result<Vec<u64>, DecodeError> {
    let mut words = Vec::with_capacity(words_per_set);
    for _ in 0..words_per_set {
        words.push(r.varint()?);
    }
    Ok(words)
}

fn read_rle_words(
    r: &mut Reader<'_>,
    words_per_set: usize,
    width: u64,
) -> Result<Vec<u64>, DecodeError> {
    // Pre-size modestly: a lying width must not drive a huge allocation before
    // the token stream has actually produced the words.
    let mut words = Vec::with_capacity(words_per_set.min(1_024));
    while words.len() < words_per_set {
        let token_offset = r.pos;
        let token = r.varint()?;
        let kind = token & 3;
        let n = usize::try_from(token >> 2).map_err(|_| DecodeError::BadIndex {
            offset: token_offset,
        })?;
        if n == 0 || n > words_per_set - words.len() {
            return Err(DecodeError::BadIndex {
                offset: token_offset,
            });
        }
        match kind {
            RUN_ZERO => words.extend(std::iter::repeat_n(0u64, n)),
            RUN_FULL => {
                for _ in 0..n {
                    let index = words.len();
                    words.push(full_word_mask(width, index));
                }
            }
            RUN_LITERAL => {
                for _ in 0..n {
                    words.push(r.u64()?);
                }
            }
            _ => {
                return Err(DecodeError::BadIndex {
                    offset: token_offset,
                })
            }
        }
    }
    Ok(words)
}

/// Deserialise a v2 packet body into a tree carrying session-global frame ids,
/// plus the incremental dictionary records the packet shipped.
///
/// No frame table is needed (or touched): resolve ids against the session
/// dictionary's snapshot, or forward them — merges compare ids directly.
pub fn decode_tree<S: WireTaskSet>(buf: &[u8]) -> Result<(PrefixTree<S>, WireFrames), DecodeError> {
    let mut r = Reader::new(buf);
    if r.u32()? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(DecodeError::Version { found: version });
    }
    let tag = r.u8()?;
    if tag != S::TAG {
        return Err(DecodeError::WrongRepresentation {
            found: tag,
            expected: S::TAG,
        });
    }
    let width_offset = r.pos;
    let width = r.varint()?;
    if width > MAX_WIRE_WIDTH {
        return Err(DecodeError::Truncated {
            offset: width_offset,
        });
    }
    let base_len = r.varint_u32()?;
    let nrecords_offset = r.pos;
    let nrecords = r.varint_count()?;
    // A corrupted count must fail as `Truncated`, not drive a huge allocation:
    // each record needs at least its two varint bytes.
    if nrecords.saturating_mul(2) > r.remaining() {
        return Err(DecodeError::Truncated {
            offset: nrecords_offset,
        });
    }
    let mut frames = WireFrames::new(base_len);
    for _ in 0..nrecords {
        let gid_offset = r.pos;
        let gid = r.varint_u32()?;
        if gid < base_len {
            return Err(DecodeError::BadIndex { offset: gid_offset });
        }
        let len = r.varint_count()?;
        let name_offset = r.pos;
        let bytes = r.take(len)?;
        let name = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadFrameName {
            offset: name_offset,
        })?;
        frames.insert(gid, name);
    }
    let count_offset = r.pos;
    let nnodes = r.varint_count()?;
    if nnodes == 0 {
        return Err(DecodeError::BadIndex {
            offset: count_offset,
        });
    }
    // Every non-root node carries at least a parent-delta byte and a frame-id
    // byte; a node count the buffer cannot possibly hold is a lie.
    if nnodes.saturating_mul(2).saturating_sub(2) > r.remaining() {
        return Err(DecodeError::Truncated {
            offset: count_offset,
        });
    }
    let words_per_set =
        usize::try_from(width.div_ceil(64)).map_err(|_| DecodeError::Truncated {
            offset: width_offset,
        })?;
    // Dense sets carry at least one byte per word; reject widths the remaining
    // buffer cannot hold before allocating for them.
    if S::TAG == DenseBitVector::TAG && words_per_set > r.remaining() {
        return Err(DecodeError::Truncated {
            offset: width_offset,
        });
    }
    let read_set = |r: &mut Reader<'_>| -> Result<S, DecodeError> {
        let words = if S::TAG == DenseBitVector::TAG {
            read_dense_words(r, words_per_set)?
        } else {
            read_rle_words(r, words_per_set, width)?
        };
        Ok(S::from_wire_words(width, words))
    };

    let mut tree = PrefixTree::<S>::new(width, S::TAG == SubtreeTaskList::TAG);
    let root_set = read_set(&mut r)?;
    tree.replace_tasks(0, root_set);
    for idx in 1..nnodes {
        let node_offset = r.pos;
        let delta = r.varint_count()?;
        if delta == 0 || delta > idx {
            return Err(DecodeError::BadIndex {
                offset: node_offset,
            });
        }
        let parent = idx - delta;
        let gid = r.varint_u32()?;
        if gid >= base_len && frames.name_of(gid).is_none() {
            return Err(DecodeError::BadIndex {
                offset: node_offset,
            });
        }
        let set = read_set(&mut r)?;
        let node = tree.append_node(parent, FrameId(gid));
        tree.replace_tasks(node, set);
    }
    Ok((tree, frames))
}

// ---------------------------------------------------------------------------
// Rank maps and the dictionary broadcast payload
// ---------------------------------------------------------------------------

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode a daemon-order rank map (the RankMap packets that let the front end
/// remap).  Ranks are zigzag-delta varint encoded: contiguous daemon blocks
/// cost about one byte per rank instead of eight.
pub fn encode_rank_map(ranks: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + ranks.len());
    put_varint(&mut out, ranks.len() as u64);
    let mut prev = 0u64;
    for &rank in ranks {
        let delta = rank.wrapping_sub(prev) as i64;
        put_varint(&mut out, zigzag(delta));
        prev = rank;
    }
    out
}

/// Decode a rank map.
pub fn decode_rank_map(buf: &[u8]) -> Result<Vec<u64>, DecodeError> {
    let mut r = Reader::new(buf);
    let count_offset = r.pos;
    let n = r.varint_count()?;
    // Each entry is at least one varint byte.
    if n > r.remaining() {
        return Err(DecodeError::Truncated {
            offset: count_offset,
        });
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        let delta = unzigzag(r.varint()?);
        prev = prev.wrapping_add(delta as u64);
        out.push(prev);
    }
    Ok(out)
}

/// Encode the negotiated base table for the one-time dictionary broadcast down
/// the overlay (ids are implicit: position order).
pub fn encode_dictionary(names: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, names.len() as u64);
    for name in names {
        put_varint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }
    out
}

/// Decode a dictionary broadcast payload.
pub fn decode_dictionary(buf: &[u8]) -> Result<Vec<String>, DecodeError> {
    let mut r = Reader::new(buf);
    let count_offset = r.pos;
    let n = r.varint_count()?;
    if n > r.remaining() {
        return Err(DecodeError::Truncated {
            offset: count_offset,
        });
    }
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.varint_count()?;
        let name_offset = r.pos;
        let bytes = r.take(len)?;
        let name = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadFrameName {
            offset: name_offset,
        })?;
        names.push(name.to_string());
    }
    Ok(names)
}

// ---------------------------------------------------------------------------
// Transitional v1 codec (string format)
// ---------------------------------------------------------------------------

/// Serialise a tree in the legacy v1 string format: packet-local frame ids,
/// length-prefixed names in every packet, raw 8-byte task-set words.
///
/// Kept for migration tests and as the `BENCH_wire` baseline.  Where the old
/// encoder wrote `bytes.len() as u16` — silently truncating any name over
/// 64 KiB into a corrupt packet — this one returns
/// [`EncodeError::FrameNameTooLong`].
pub fn encode_tree_v1<S: WireTaskSet>(
    tree: &PrefixTree<S>,
    table: &FrameTable,
) -> Result<Vec<u8>, EncodeError> {
    let mut local_names: Vec<&str> = Vec::new();
    let mut local_of: HashMap<FrameId, u32> = HashMap::new();
    for (_, frame, _) in tree.iter_nodes() {
        local_of.entry(frame).or_insert_with(|| {
            local_names.push(table.name(frame));
            // stat-analyzer: allow(truncating-cast) — a tree references far fewer than 2^32 distinct frames
            (local_names.len() - 1) as u32
        });
    }

    let words_hint = usize::try_from(tree.width().div_ceil(64)).unwrap_or(0);
    let mut out = Vec::with_capacity(64 + tree.node_count() * (16 + words_hint * 8));
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(S::TAG);
    out.extend_from_slice(&tree.width().to_le_bytes());
    // stat-analyzer: allow(truncating-cast) — bounded by the distinct-frame count above
    out.extend_from_slice(&(local_names.len() as u32).to_le_bytes());
    for name in &local_names {
        let bytes = name.as_bytes();
        let len = u16::try_from(bytes.len()).map_err(|_| EncodeError::FrameNameTooLong {
            length: bytes.len(),
            limit: usize::from(u16::MAX),
        })?;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(bytes);
    }
    // stat-analyzer: allow(truncating-cast) — node counts are far below u32::MAX for any encodable tree
    out.extend_from_slice(&(tree.node_count() as u32).to_le_bytes());
    let encode_set = |out: &mut Vec<u8>, set: &S| {
        for word in set.wire_words() {
            out.extend_from_slice(&word.to_le_bytes());
        }
    };
    out.extend_from_slice(&u32::MAX.to_le_bytes()); // root parent
    out.extend_from_slice(&u32::MAX.to_le_bytes()); // root frame
    encode_set(&mut out, tree.tasks(tree.root()));
    for (idx, frame, parent) in tree.iter_nodes() {
        // stat-analyzer: allow(truncating-cast) — parents precede children, so the index fits u32 whenever the node count does
        out.extend_from_slice(&(parent as u32).to_le_bytes());
        // stat-analyzer: allow(hot-path-panic) — every frame id this loop sees was inserted by the collection pass over the same iterator above
        out.extend_from_slice(&local_of[&frame].to_le_bytes());
        encode_set(&mut out, tree.tasks(idx));
    }
    Ok(out)
}

/// Deserialise a legacy v1 packet body, re-interning frame names into `table`.
pub fn decode_tree_v1<S: WireTaskSet>(
    buf: &[u8],
    table: &mut FrameTable,
) -> Result<PrefixTree<S>, DecodeError> {
    let mut r = Reader::new(buf);
    if r.u32()? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let tag = r.u8()?;
    if tag != S::TAG {
        return Err(DecodeError::WrongRepresentation {
            found: tag,
            expected: S::TAG,
        });
    }
    let width = r.u64()?;
    let nframes_offset = r.pos;
    let nframes = usize::try_from(r.u32()?).map_err(|_| DecodeError::Truncated {
        offset: nframes_offset,
    })?;
    if nframes.saturating_mul(2) > r.remaining() {
        return Err(DecodeError::Truncated { offset: r.pos });
    }
    let mut frames: Vec<FrameId> = Vec::with_capacity(nframes);
    for _ in 0..nframes {
        let len = usize::from(r.u16()?);
        let name_offset = r.pos;
        let bytes = r.take(len)?;
        let name = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadFrameName {
            offset: name_offset,
        })?;
        frames.push(table.intern(name));
    }
    let count_offset = r.pos;
    let nnodes = usize::try_from(r.u32()?).map_err(|_| DecodeError::Truncated {
        offset: count_offset,
    })?;
    if nnodes == 0 {
        return Err(DecodeError::BadIndex {
            offset: count_offset,
        });
    }
    if width.div_ceil(64).saturating_mul(8) > r.remaining() as u64 {
        return Err(DecodeError::Truncated { offset: r.pos });
    }
    let words_per_set =
        usize::try_from(width.div_ceil(64)).map_err(|_| DecodeError::Truncated {
            offset: count_offset,
        })?;
    let read_set = |r: &mut Reader<'_>| -> Result<S, DecodeError> {
        let mut words = Vec::with_capacity(words_per_set);
        for _ in 0..words_per_set {
            words.push(r.u64()?);
        }
        Ok(S::from_wire_words(width, words))
    };

    let mut tree = PrefixTree::<S>::new(width, S::TAG == 1);
    let root_offset = r.pos;
    let root_parent = r.u32()?;
    let root_frame = r.u32()?;
    if root_parent != u32::MAX || root_frame != u32::MAX {
        return Err(DecodeError::BadIndex {
            offset: root_offset,
        });
    }
    let root_set = read_set(&mut r)?;
    tree.replace_tasks(0, root_set);
    for idx in 1..nnodes {
        let node_offset = r.pos;
        let parent = usize::try_from(r.u32()?).map_err(|_| DecodeError::BadIndex {
            offset: node_offset,
        })?;
        let frame_local = usize::try_from(r.u32()?).map_err(|_| DecodeError::BadIndex {
            offset: node_offset,
        })?;
        if parent >= idx {
            return Err(DecodeError::BadIndex {
                offset: node_offset,
            });
        }
        let frame = frames
            .get(frame_local)
            .copied()
            .ok_or(DecodeError::BadIndex {
                offset: node_offset,
            })?;
        let set = read_set(&mut r)?;
        let node = tree.append_node(parent, frame);
        tree.replace_tasks(node, set);
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GlobalPrefixTree, SubtreePrefixTree};
    use stackwalk::StackTrace;

    fn ring_dictionary() -> FrameDictionary {
        FrameDictionary::negotiate(["_start", "main", "MPI_Barrier", "do_SendOrStall"])
    }

    fn sample_global(table: &mut FrameTable) -> GlobalPrefixTree {
        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let stall = StackTrace::new(table.intern_path(&["_start", "main", "do_SendOrStall"]));
        let mut tree = GlobalPrefixTree::new_global(64);
        for rank in 0..32 {
            tree.add_trace(if rank == 1 { &stall } else { &barrier }, rank);
        }
        tree
    }

    #[test]
    fn global_tree_round_trips() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let dict = ring_dictionary();
        let bytes = encode_tree(&tree, &table, &dict);

        let (back, frames): (GlobalPrefixTree, WireFrames) = decode_tree(&bytes).unwrap();
        assert_eq!(back.node_count(), tree.node_count());
        assert_eq!(back.width(), tree.width());
        assert_eq!(
            back.tasks(back.root()).members(),
            tree.tasks(tree.root()).members()
        );
        // Every frame was negotiated, so nothing ships incrementally...
        assert_eq!(frames.record_count(), 0);
        // ...and ids resolve against the session dictionary's snapshot.
        let snapshot = dict.snapshot();
        let names: Vec<&str> = back
            .leaves()
            .iter()
            .map(|&l| snapshot.name(back.frame(l).unwrap()))
            .collect();
        assert!(names.contains(&"MPI_Barrier"));
        assert!(names.contains(&"do_SendOrStall"));
    }

    #[test]
    fn subtree_tree_round_trips() {
        let mut table = FrameTable::new();
        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let mut tree = SubtreePrefixTree::new_subtree(8);
        for pos in 0..8 {
            tree.add_trace(&barrier, pos);
        }
        let dict = ring_dictionary();
        let bytes = encode_tree(&tree, &table, &dict);
        let (back, _frames): (SubtreePrefixTree, WireFrames) = decode_tree(&bytes).unwrap();
        assert!(back.is_concatenating());
        assert_eq!(back.width(), 8);
        assert_eq!(back.tasks(back.root()).count(), 8);
    }

    #[test]
    fn unnegotiated_frames_ship_as_incremental_records() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        // "do_SendOrStall" was not anticipated at negotiation time.
        let dict = FrameDictionary::negotiate(["_start", "main", "MPI_Barrier"]);
        let bytes = encode_tree(&tree, &table, &dict);
        let (back, frames): (GlobalPrefixTree, WireFrames) = decode_tree(&bytes).unwrap();
        assert_eq!(frames.base_len(), 3);
        assert_eq!(frames.record_count(), 1);
        let (gid, name) = frames.records().next().unwrap();
        assert!(gid >= frames.base_len());
        assert_eq!(name, "do_SendOrStall");
        assert_eq!(back.node_count(), tree.node_count());
    }

    #[test]
    fn representation_mismatch_is_detected() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let bytes = encode_tree(&tree, &table, &ring_dictionary());
        let err = decode_tree::<SubtreeTaskList>(&bytes).unwrap_err();
        assert_eq!(
            err,
            DecodeError::WrongRepresentation {
                found: 0,
                expected: 1
            }
        );
    }

    #[test]
    fn legacy_and_foreign_versions_are_typed_errors() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        // A v1 body puts its representation byte where v2 expects the version.
        let v1 = encode_tree_v1(&tree, &table).unwrap();
        assert_eq!(
            decode_tree::<DenseBitVector>(&v1).unwrap_err(),
            DecodeError::Version { found: 0 }
        );
        // A future version must be rejected, not misparsed.
        let mut v9 = encode_tree(&tree, &table, &ring_dictionary());
        v9[4] = 9;
        assert_eq!(
            decode_tree::<DenseBitVector>(&v9).unwrap_err(),
            DecodeError::Version { found: 9 }
        );
    }

    #[test]
    fn frame_name_over_64k_round_trips_in_v2_and_is_a_typed_error_in_v1() {
        // The original bug: v1 wrote name lengths as `bytes.len() as u16`, so a
        // >64 KiB name silently truncated into a corrupt packet.
        let huge_name = "x".repeat(70_000);
        let mut table = FrameTable::new();
        let trace = StackTrace::new(table.intern_path(&["main", &huge_name]));
        let mut tree = GlobalPrefixTree::new_global(8);
        tree.add_trace(&trace, 3);

        // v2: varint lengths carry it exactly.
        let dict = FrameDictionary::negotiate(["main"]);
        let bytes = encode_tree(&tree, &table, &dict);
        let (back, frames): (GlobalPrefixTree, WireFrames) = decode_tree(&bytes).unwrap();
        assert_eq!(back.node_count(), tree.node_count());
        let (gid, name) = frames.records().next().unwrap();
        assert_eq!(name.len(), 70_000);
        assert_eq!(dict.name(gid).as_deref(), Some(huge_name.as_str()));

        // v1: a typed error instead of silent corruption.
        assert_eq!(
            encode_tree_v1(&tree, &table).unwrap_err(),
            EncodeError::FrameNameTooLong {
                length: 70_000,
                limit: usize::from(u16::MAX),
            }
        );
    }

    #[test]
    fn legacy_v1_round_trips_for_migration() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let bytes = encode_tree_v1(&tree, &table).unwrap();
        let mut other_table = FrameTable::new();
        let back: GlobalPrefixTree = decode_tree_v1(&bytes, &mut other_table).unwrap();
        assert_eq!(back.node_count(), tree.node_count());
        assert_eq!(
            back.tasks(back.root()).members(),
            tree.tasks(tree.root()).members()
        );
    }

    #[test]
    fn corrupt_buffers_are_rejected_not_panicked_on() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let bytes = encode_tree(&tree, &table, &ring_dictionary());

        // A 3-byte buffer cannot even hold the magic number; the failure offset is
        // where the reader stood when it ran out (the start of the magic field).
        assert_eq!(
            decode_tree::<DenseBitVector>(&bytes[..3]).unwrap_err(),
            DecodeError::Truncated { offset: 0 }
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            decode_tree::<DenseBitVector>(&bad_magic).unwrap_err(),
            DecodeError::BadMagic
        );
        // Any tail truncation must decode to an error, never a partial tree.
        for cut in 1..bytes.len().min(64) {
            let truncated = &bytes[..bytes.len() - cut];
            assert!(
                decode_tree::<DenseBitVector>(truncated).is_err(),
                "cut of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn lying_length_prefixes_fail_cleanly_instead_of_allocating() {
        // A corrupted interior node can forward a structurally plausible packet
        // whose counts are astronomical.  Decoding must report a typed error,
        // not attempt the allocation (capacity overflow / OOM).
        let header = |width: u64, base: u64, nrecords: u64| {
            let mut out = Vec::new();
            out.extend_from_slice(&MAGIC.to_le_bytes());
            out.push(VERSION);
            out.push(DenseBitVector::TAG);
            put_varint(&mut out, width);
            put_varint(&mut out, base);
            put_varint(&mut out, nrecords);
            out
        };

        // A record count far beyond the buffer.
        let huge_records = header(64, 0, u64::from(u32::MAX));
        assert!(matches!(
            decode_tree::<DenseBitVector>(&huge_records).unwrap_err(),
            DecodeError::Truncated { .. }
        ));

        // A width no packet could legitimately claim.
        let huge_width = header(u64::MAX / 2, 0, 0);
        assert!(matches!(
            decode_tree::<DenseBitVector>(&huge_width).unwrap_err(),
            DecodeError::Truncated { .. }
        ));

        // A plausible width whose dense words cannot fit the remaining buffer.
        let mut wide = header(1 << 20, 0, 0);
        put_varint(&mut wide, 1); // nnodes
        assert!(matches!(
            decode_tree::<DenseBitVector>(&wide).unwrap_err(),
            DecodeError::Truncated { .. }
        ));

        // A node count the buffer cannot possibly hold.
        let mut many_nodes = header(64, 0, 0);
        put_varint(&mut many_nodes, u64::from(u32::MAX)); // nnodes
        assert!(matches!(
            decode_tree::<DenseBitVector>(&many_nodes).unwrap_err(),
            DecodeError::Truncated { .. }
        ));

        // A subtree run token that overruns the set's word count.
        let mut bad_run = Vec::new();
        bad_run.extend_from_slice(&MAGIC.to_le_bytes());
        bad_run.push(VERSION);
        bad_run.push(SubtreeTaskList::TAG);
        put_varint(&mut bad_run, 64); // width: one word
        put_varint(&mut bad_run, 0); // base
        put_varint(&mut bad_run, 0); // nrecords
        put_varint(&mut bad_run, 1); // nnodes
        put_varint(&mut bad_run, (1_000 << 2) | RUN_ZERO); // run of 1,000 words into a 1-word set
        assert!(matches!(
            decode_tree::<SubtreeTaskList>(&bad_run).unwrap_err(),
            DecodeError::BadIndex { .. }
        ));

        // An overlong varint (runs past 64 bits).
        let mut overlong = header(64, 0, 0);
        overlong.extend_from_slice(&[0x80; 10]);
        overlong.push(0x01);
        assert!(matches!(
            decode_tree::<DenseBitVector>(&overlong).unwrap_err(),
            DecodeError::BadVarint { .. }
        ));

        // Rank maps: a count far beyond the buffer.
        let mut huge_map = Vec::new();
        put_varint(&mut huge_map, u64::MAX / 2);
        huge_map.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            decode_rank_map(&huge_map).unwrap_err(),
            DecodeError::Truncated { .. }
        ));
    }

    #[test]
    fn encoded_size_reflects_the_representation() {
        let mut table = FrameTable::new();
        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        // A daemon responsible for 8 of a 65,536-task job.
        let mut dense = GlobalPrefixTree::new_global(65_536);
        let mut subtree = SubtreePrefixTree::new_subtree(8);
        for i in 0..8u64 {
            dense.add_trace(&barrier, i);
            subtree.add_trace(&barrier, i);
        }
        let dict = ring_dictionary();
        let dense_bytes = encode_tree(&dense, &table, &dict).len();
        let subtree_bytes = encode_tree(&subtree, &table, &dict).len();
        // Even with varint words, the dense set pays for every word of the job.
        assert!(
            dense_bytes > 20 * subtree_bytes,
            "dense {dense_bytes} vs subtree {subtree_bytes}"
        );
    }

    #[test]
    fn encoded_size_helpers_match_the_encoders_exactly() {
        let mut table = FrameTable::new();
        let tree = sample_global(&mut table);
        let dict = FrameDictionary::negotiate(["_start", "main"]);
        assert_eq!(
            encoded_tree_size(&tree, &table, &dict),
            encode_tree(&tree, &table, &dict).len()
        );

        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let mut subtree = SubtreePrefixTree::new_subtree(200);
        for pos in 0..200 {
            subtree.add_trace(&barrier, pos);
        }
        assert_eq!(
            encoded_tree_size(&subtree, &table, &dict),
            encode_tree(&subtree, &table, &dict).len()
        );

        // Degenerate root-only tree (a quiescent wave's delta).
        let empty = GlobalPrefixTree::new_global(64);
        assert_eq!(
            encoded_tree_size(&empty, &table, &dict),
            encode_tree(&empty, &table, &dict).len()
        );

        // The filter path: re-encoding a decoded tree through its wire records.
        let bytes = encode_tree(&tree, &table, &dict);
        let (decoded, frames): (GlobalPrefixTree, WireFrames) = decode_tree(&bytes).unwrap();
        let merged_bytes = encode_merged_tree(&decoded, &frames);
        assert_eq!(
            encoded_merged_tree_size(&decoded, &frames),
            merged_bytes.len()
        );
        // Identical ids and records: the re-encoding is byte-identical.
        assert_eq!(merged_bytes, bytes);
    }

    #[test]
    fn merged_trees_re_encode_through_wire_frames() {
        // Two daemons, one session dictionary, one frame ("poll_step") that the
        // negotiation missed — the filter merges by id and keeps the record.
        let dict = FrameDictionary::negotiate(["_start", "main", "MPI_Barrier"]);
        let mut packets = Vec::new();
        for daemon in 0..2u64 {
            let mut table = FrameTable::new();
            let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
            let poll = StackTrace::new(table.intern_path(&["_start", "main", "poll_step"]));
            let mut tree = GlobalPrefixTree::new_global(16);
            for rank in daemon * 8..daemon * 8 + 8 {
                tree.add_trace(if rank % 8 == 1 { &poll } else { &barrier }, rank);
            }
            packets.push(encode_tree(&tree, &table, &dict));
        }

        let (mut acc, mut frames): (GlobalPrefixTree, WireFrames) =
            decode_tree(&packets[0]).unwrap();
        let (other, other_frames): (GlobalPrefixTree, WireFrames) =
            decode_tree(&packets[1]).unwrap();
        frames.merge(&other_frames).unwrap();
        acc.merge(other);

        let merged = encode_merged_tree(&acc, &frames);
        let (back, back_frames): (GlobalPrefixTree, WireFrames) = decode_tree(&merged).unwrap();
        assert_eq!(back.node_count(), acc.node_count());
        assert_eq!(back.tasks(back.root()).count(), 16);
        assert_eq!(back_frames.name_of(3), Some("poll_step"));
        // Merging identical ids produced one shared "poll_step" leaf.
        let snapshot = dict.snapshot();
        let poll_leaves = back
            .leaves()
            .iter()
            .filter(|&&l| snapshot.name(back.frame(l).unwrap()) == "poll_step")
            .count();
        assert_eq!(poll_leaves, 1);
    }

    #[test]
    fn wire_frames_merge_rejects_a_foreign_session() {
        let mut a = WireFrames::new(4);
        let b = WireFrames::new(7);
        assert_eq!(
            a.merge(&b).unwrap_err(),
            DecodeError::DictionaryMismatch {
                expected: 4,
                found: 7
            }
        );
    }

    #[test]
    fn rank_map_round_trips() {
        let ranks = vec![0u64, 2, 1, 3, 1_000_000];
        let bytes = encode_rank_map(&ranks);
        assert_eq!(decode_rank_map(&bytes).unwrap(), ranks);
        assert!(matches!(
            decode_rank_map(&bytes[..2]).unwrap_err(),
            DecodeError::Truncated { .. }
        ));
        // Contiguous daemon blocks — the common case — cost ~1 byte per rank.
        let block: Vec<u64> = (1_000..1_128).collect();
        let compact = encode_rank_map(&block);
        assert!(compact.len() < 128 + 8, "got {} bytes", compact.len());
        assert_eq!(decode_rank_map(&compact).unwrap(), block);
    }

    #[test]
    fn dictionary_broadcast_payload_round_trips() {
        let dict = FrameDictionary::negotiate(["_start", "main", "MPI_Barrier"]);
        let payload = encode_dictionary(&dict.negotiated_names());
        assert_eq!(
            decode_dictionary(&payload).unwrap(),
            vec!["_start", "main", "MPI_Barrier"]
        );
        let mut lying = Vec::new();
        put_varint(&mut lying, u64::MAX / 2);
        assert!(matches!(
            decode_dictionary(&lying).unwrap_err(),
            DecodeError::Truncated { .. }
        ));
    }

    #[test]
    fn cost_model_arithmetic_upper_bounds_real_v2_sizes() {
        // The planner / estimator closures price packets with
        // `tbon::cost::{dense_node_bytes, subtree_node_bytes}`; pin that
        // arithmetic to the real encoder so the byte terms stay honest.
        let mut table = FrameTable::new();
        let dict = ring_dictionary();
        let total_tasks = 8_192u64;
        let members = 128u64;

        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let mut dense = GlobalPrefixTree::new_global(total_tasks);
        let mut subtree = SubtreePrefixTree::new_subtree(members);
        for rank in 0..members {
            dense.add_trace(&barrier, rank);
            subtree.add_trace(&barrier, rank);
        }

        let dense_real = encode_tree(&dense, &table, &dict).len() as u64;
        let dense_nodes = dense.node_count() as u64;
        let dense_predicted: u64 = dense_nodes * tbon::cost::dense_node_bytes(total_tasks, members);
        assert!(
            dense_real <= dense_predicted + 32,
            "real {dense_real} vs predicted {dense_predicted} (+header slack)"
        );
        assert!(
            dense_predicted <= dense_real + 32,
            "the dense model must track the encoder closely, not just bound it"
        );

        let subtree_real = encode_tree(&subtree, &table, &dict).len() as u64;
        let subtree_nodes = subtree.node_count() as u64;
        let subtree_predicted: u64 = subtree_nodes * tbon::cost::subtree_node_bytes(members);
        // Saturated sets run-length collapse far below the worst case the
        // estimator conservatively prices, but never above it.
        assert!(
            subtree_real <= subtree_predicted + 32,
            "real {subtree_real} vs predicted {subtree_predicted}"
        );
    }
}
