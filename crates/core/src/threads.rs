//! The Section VII projection: what threading does to the tool.
//!
//! The paper's closing technical section looks ahead to multithreaded applications:
//! STAT will collect one call stack per *thread* instead of per process, keep
//! associating stacks with processes, and expects a constant per-thread slowdown in
//! sampling (it happens in parallel across nodes) plus only a logarithmic slowdown in
//! merging (the TBON absorbs the extra volume).  Threads are, however, "a potentially
//! unbounded multiplier on the amount of data being collected": 10,000 nodes × 8
//! threads looks like 80,000 nodes to the tool.
//!
//! This module measures that multiplier for real — by gathering from the multithreaded
//! workload and counting the traces and bytes the daemons actually produce — and
//! projects sampling and merge times for thread counts via the cost models, which is
//! what the `ablation_threads` bench reports.

use appsim::{Application, FrameVocabulary, ThreadedApp};
use machine::cluster::Cluster;
use simkit::time::SimDuration;
use stackwalk::sampler::{BinaryPlacement, SamplingConfig, SamplingCostModel};

use crate::daemon::StatDaemon;
use crate::frontend::Representation;
use crate::session::PhaseEstimator;
use crate::taskset::SubtreeTaskList;

/// Measured consequences of a thread count, from real tree construction.
#[derive(Clone, Debug)]
pub struct ThreadMeasurement {
    /// Threads per task (including the MPI thread).
    pub threads_per_task: u32,
    /// Traces one daemon gathered.
    pub traces_gathered: u64,
    /// Serialised bytes of that daemon's 3D tree packet.
    pub tree_bytes: u64,
    /// Nodes in that daemon's 3D tree.
    pub tree_nodes: usize,
}

/// Gather from a multithreaded job at several thread counts and measure the data
/// volume one daemon produces.  Uses the hierarchical representation (the one a
/// petascale deployment would use).
pub fn measure_thread_scaling(
    tasks_per_daemon: u64,
    worker_threads: &[u32],
    samples: u32,
) -> Vec<ThreadMeasurement> {
    worker_threads
        .iter()
        .map(|&workers| {
            let app = ThreadedApp::new(tasks_per_daemon, workers, FrameVocabulary::Linux);
            let dict = stackwalk::FrameDictionary::negotiate(app.frame_hints());
            let daemon = StatDaemon::new(0, (0..tasks_per_daemon).collect(), tasks_per_daemon);
            let contribution = daemon.contribute::<SubtreeTaskList>(
                &app,
                samples,
                tbon::packet::EndpointId(1),
                &dict,
            );
            let (tree, _frames): (crate::graph::SubtreePrefixTree, _) =
                crate::serialize::decode_tree(&contribution.tree_3d.payload)
                    .expect("round trip of our own packet");
            ThreadMeasurement {
                threads_per_task: app.threads_per_task(),
                traces_gathered: contribution.traces_gathered,
                tree_bytes: contribution.tree_3d.size_bytes() as u64,
                tree_nodes: tree.node_count(),
            }
        })
        .collect()
}

/// Projected tool-phase costs for a thread count, from the environment models.
#[derive(Clone, Debug)]
pub struct ThreadProjection {
    /// Threads per task (including the MPI thread).
    pub threads_per_task: u32,
    /// Projected sampling time.
    pub sampling: SimDuration,
    /// Projected merge time.
    pub merge: SimDuration,
}

/// Project sampling and merge times for several thread counts at a given job size.
///
/// Sampling multiplies the traces gathered per task (a constant per-thread slowdown,
/// matching the paper's expectation); merging multiplies the per-edge data volume and
/// the tree width, which the TBON turns into a roughly logarithmic slowdown.
pub fn project_thread_counts(
    cluster: &Cluster,
    tasks: u64,
    thread_counts: &[u32],
    seed: u64,
) -> Vec<ThreadProjection> {
    thread_counts
        .iter()
        .map(|&threads| {
            let threads = threads.max(1);
            let mut sampling_cfg = SamplingConfig::default();
            sampling_cfg.samples_per_task *= threads;
            let sampling = SamplingCostModel::new(cluster.clone())
                .with_config(sampling_cfg)
                .estimate(tasks, BinaryPlacement::RelocatedRamDisk, seed)
                .total;

            let mut estimator =
                PhaseEstimator::new(cluster.clone(), Representation::HierarchicalTaskList);
            // Each thread contributes its own leaf fan to the local trees, so the
            // merged data volume grows with the thread count.
            estimator.tree_edges_2d *= threads as u64;
            estimator.tree_edges_3d *= threads as u64;
            let merge = estimator.merge_estimate(tasks, 2).time;
            ThreadProjection {
                threads_per_task: threads,
                sampling,
                merge,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::BglMode;

    #[test]
    fn threads_multiply_gathered_traces_linearly() {
        let measurements = measure_thread_scaling(8, &[0, 1, 3, 7], 2);
        assert_eq!(measurements.len(), 4);
        assert_eq!(measurements[0].threads_per_task, 1);
        assert_eq!(measurements[3].threads_per_task, 8);
        // 8 threads gather 8x the traces of 1 thread.
        assert_eq!(
            measurements[3].traces_gathered,
            8 * measurements[0].traces_gathered
        );
        // Data volume grows with threads, though sublinearly (shared prefixes merge).
        assert!(measurements[3].tree_bytes > measurements[0].tree_bytes);
        assert!(measurements[3].tree_nodes > measurements[0].tree_nodes);
    }

    #[test]
    fn projected_sampling_slowdown_is_roughly_constant_per_thread() {
        let cluster = Cluster::bluegene_l(BglMode::CoProcessor);
        let projections = project_thread_counts(&cluster, 65_536, &[1, 8], 3);
        let per_thread = projections[1].sampling.as_secs() / projections[0].sampling.as_secs();
        // 8 threads cost more than 1 but far less than something super-linear; the
        // paper expects "only a constant slowdown per thread".
        assert!(per_thread > 1.5 && per_thread < 16.0, "got {per_thread}");
    }

    #[test]
    fn projected_merge_slowdown_is_modest() {
        let cluster = Cluster::bluegene_l(BglMode::CoProcessor);
        let projections = project_thread_counts(&cluster, 65_536, &[1, 8], 3);
        let merge_ratio = projections[1].merge.as_secs() / projections[0].merge.as_secs();
        // The data volume grew 8x; the hierarchical merge should absorb most of it.
        assert!(merge_ratio < 10.0, "got {merge_ratio}");
        assert!(merge_ratio > 1.0);
    }
}
