//! The single dispatch point for task-set representations.
//!
//! Before this module existed, every layer that cared about the representation —
//! the daemon, the front end, the session runner and STATBench's emulator — carried
//! its own `match Representation { ... }`, and the four copies drifted apart as soon
//! as anyone touched one of them.  [`RepresentationStrategy`] folds that duplication
//! into one sealed trait: the daemon-side contribution, the in-network merge filter,
//! whether a rank-map channel rides along, and the front-end decode/remap step are
//! all defined once per representation.  Adding a new wire representation is one
//! `impl` here; nothing else in the pipeline changes.
//!
//! The trait is *sealed* (its supertrait lives in a private module) because the
//! session pipeline's correctness depends on the contribution, filter and finish
//! steps agreeing about the wire format — an external implementation could not keep
//! that bargain without access to crate internals.

use std::time::{Duration, Instant};

use appsim::Application;
use stackwalk::{FrameDictionary, FrameTable};
use tbon::filter::Filter;
use tbon::network::ReductionOutcome;
use tbon::packet::EndpointId;

use crate::daemon::{DaemonContribution, StatDaemon};
use crate::error::{MergeChannel, StatError};
use crate::filter::StatMergeFilter;
use crate::frontend::Representation;
use crate::graph::{GlobalPrefixTree, SubtreePrefixTree};
use crate::serialize::{decode_rank_map, decode_tree, DecodeError};
use crate::taskset::{DenseBitVector, SubtreeTaskList};

mod sealed {
    /// Seals [`super::RepresentationStrategy`]: only this crate can implement it.
    pub trait Sealed {}
}

/// The job-wide trees a finished merge hands back, plus the cost of getting them
/// into MPI rank order.
#[derive(Clone, Debug)]
pub struct MergedTrees {
    /// The job-wide 2D (trace/space) tree, in MPI rank order.
    pub tree_2d: GlobalPrefixTree,
    /// The job-wide 3D (trace/space/time) tree, in MPI rank order.
    pub tree_3d: GlobalPrefixTree,
    /// Frame names referenced by the trees.
    pub frames: FrameTable,
    /// Wall-clock time of the front-end remap (zero for representations that arrive
    /// already in rank order).
    pub remap_wall: Duration,
}

/// Everything that varies with the task-set representation, defined in one place.
///
/// Obtain an instance through [`Representation::strategy`]; the trait is sealed.
pub trait RepresentationStrategy: sealed::Sealed + Send + Sync {
    /// The enum tag this strategy implements.
    fn representation(&self) -> Representation;

    /// Run one daemon's gather → local merge → serialise cycle against the
    /// session's negotiated frame dictionary.
    fn contribute(
        &self,
        daemon: &StatDaemon,
        app: &dyn Application,
        samples_per_task: u32,
        leaf_endpoint: EndpointId,
        dict: &FrameDictionary,
    ) -> DaemonContribution;

    /// The in-network merge filter for the two tree channels.
    fn merge_filter(&self) -> Box<dyn Filter>;

    /// Whether this representation ships a rank-map channel for a front-end remap.
    fn needs_rank_map(&self) -> bool;

    /// Decode the reduced channel outcomes into job-wide, rank-ordered trees.
    ///
    /// `rank_map` is `Some` exactly when [`Self::needs_rank_map`] is true.
    /// The decoded trees carry session-global frame ids, which resolve against
    /// `dict`'s snapshot — the same table every daemon encoded against.
    fn finish(
        &self,
        out_2d: &ReductionOutcome,
        out_3d: &ReductionOutcome,
        rank_map: Option<&ReductionOutcome>,
        total_tasks: u64,
        dict: &FrameDictionary,
    ) -> Result<MergedTrees, StatError>;
}

impl Representation {
    /// The strategy implementing this representation — the one dispatch point the
    /// daemon, session and STATBench emulation all share.
    pub fn strategy(self) -> &'static dyn RepresentationStrategy {
        match self {
            Representation::GlobalBitVector => &GlobalBitVectorStrategy,
            Representation::HierarchicalTaskList => &HierarchicalTaskListStrategy,
        }
    }
}

fn decode_channel<S: crate::serialize::WireTaskSet>(
    channel: MergeChannel,
    outcome: &ReductionOutcome,
) -> Result<crate::graph::PrefixTree<S>, StatError> {
    decode_tree(&outcome.result.payload)
        .map(|(tree, _frames)| tree)
        .map_err(|source| StatError::Decode {
            channel,
            endpoint: outcome.result.source,
            source,
        })
}

/// The frame table a finished merge resolves ids against: the negotiated base
/// plus every incremental frame interned during the session.
fn session_frames(dict: &FrameDictionary) -> FrameTable {
    dict.snapshot()
}

/// The original representation: job-wide bit vectors, no remap needed.
struct GlobalBitVectorStrategy;

impl sealed::Sealed for GlobalBitVectorStrategy {}

impl RepresentationStrategy for GlobalBitVectorStrategy {
    fn representation(&self) -> Representation {
        Representation::GlobalBitVector
    }

    fn contribute(
        &self,
        daemon: &StatDaemon,
        app: &dyn Application,
        samples_per_task: u32,
        leaf_endpoint: EndpointId,
        dict: &FrameDictionary,
    ) -> DaemonContribution {
        daemon.contribute::<DenseBitVector>(app, samples_per_task, leaf_endpoint, dict)
    }

    fn merge_filter(&self) -> Box<dyn Filter> {
        Box::new(StatMergeFilter::<DenseBitVector>::new())
    }

    fn needs_rank_map(&self) -> bool {
        false
    }

    fn finish(
        &self,
        out_2d: &ReductionOutcome,
        out_3d: &ReductionOutcome,
        _rank_map: Option<&ReductionOutcome>,
        _total_tasks: u64,
        dict: &FrameDictionary,
    ) -> Result<MergedTrees, StatError> {
        let tree_2d: GlobalPrefixTree = decode_channel(MergeChannel::Tree2d, out_2d)?;
        let tree_3d: GlobalPrefixTree = decode_channel(MergeChannel::Tree3d, out_3d)?;
        Ok(MergedTrees {
            tree_2d,
            tree_3d,
            frames: session_frames(dict),
            remap_wall: Duration::ZERO,
        })
    }
}

/// The optimised representation: subtree task lists plus a front-end remap.
struct HierarchicalTaskListStrategy;

impl sealed::Sealed for HierarchicalTaskListStrategy {}

impl RepresentationStrategy for HierarchicalTaskListStrategy {
    fn representation(&self) -> Representation {
        Representation::HierarchicalTaskList
    }

    fn contribute(
        &self,
        daemon: &StatDaemon,
        app: &dyn Application,
        samples_per_task: u32,
        leaf_endpoint: EndpointId,
        dict: &FrameDictionary,
    ) -> DaemonContribution {
        daemon.contribute::<SubtreeTaskList>(app, samples_per_task, leaf_endpoint, dict)
    }

    fn merge_filter(&self) -> Box<dyn Filter> {
        Box::new(StatMergeFilter::<SubtreeTaskList>::new())
    }

    fn needs_rank_map(&self) -> bool {
        true
    }

    fn finish(
        &self,
        out_2d: &ReductionOutcome,
        out_3d: &ReductionOutcome,
        rank_map: Option<&ReductionOutcome>,
        total_tasks: u64,
        dict: &FrameDictionary,
    ) -> Result<MergedTrees, StatError> {
        let map_out = rank_map.expect("hierarchical sessions always carry a rank-map channel");
        let sub_2d: SubtreePrefixTree = decode_channel(MergeChannel::Tree2d, out_2d)?;
        let sub_3d: SubtreePrefixTree = decode_channel(MergeChannel::Tree3d, out_3d)?;
        let position_to_rank =
            decode_rank_map(&map_out.result.payload).map_err(|source| StatError::Decode {
                channel: MergeChannel::RankMap,
                endpoint: map_out.result.source,
                source,
            })?;
        let positions = sub_2d.width().max(sub_3d.width());
        if (position_to_rank.len() as u64) < positions {
            return Err(StatError::RankMapMismatch {
                positions,
                mapped: position_to_rank.len(),
            });
        }
        // Varint-delta maps decode permissively, so a corrupted payload can
        // parse into ranks the job does not have; refuse before the remap
        // would index past the dense width.
        if let Some(&rank) = position_to_rank.iter().find(|&&r| r >= total_tasks) {
            return Err(StatError::Decode {
                channel: MergeChannel::RankMap,
                endpoint: map_out.result.source,
                source: DecodeError::RankOutOfRange {
                    rank,
                    tasks: total_tasks,
                },
            });
        }
        // The remap step the paper prices at 0.66 s for 208K tasks.
        let start = Instant::now();
        let tree_2d = sub_2d.remap(&position_to_rank, total_tasks);
        let tree_3d = sub_3d.remap(&position_to_rank, total_tasks);
        Ok(MergedTrees {
            tree_2d,
            tree_3d,
            frames: session_frames(dict),
            remap_wall: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbon::packet::{Packet, PacketTag};

    fn outcome_with_payload(payload: Vec<u8>) -> ReductionOutcome {
        ReductionOutcome {
            channel: "test",
            result: Packet::new(PacketTag::Merged2d, EndpointId(0), payload),
            filter_time: Duration::ZERO,
            filter_invocations: 0,
            frontend_bytes_in: 0,
            max_node_bytes_in: 0,
            total_link_bytes: 0,
        }
    }

    #[test]
    fn both_representations_resolve_to_their_own_strategy() {
        for representation in [
            Representation::GlobalBitVector,
            Representation::HierarchicalTaskList,
        ] {
            assert_eq!(representation.strategy().representation(), representation);
        }
        assert!(!Representation::GlobalBitVector.strategy().needs_rank_map());
        assert!(Representation::HierarchicalTaskList
            .strategy()
            .needs_rank_map());
    }

    #[test]
    fn finish_reports_decode_failures_with_channel_context() {
        let garbage = outcome_with_payload(vec![1, 2, 3]);
        let err = Representation::GlobalBitVector
            .strategy()
            .finish(&garbage, &garbage, None, 16, &FrameDictionary::default())
            .unwrap_err();
        match err {
            StatError::Decode { channel, .. } => assert_eq!(channel, MergeChannel::Tree2d),
            other => panic!("expected a decode error, got {other:?}"),
        }
    }
}
