//! # stat-core — the Stack Trace Analysis Tool, reproduced in Rust
//!
//! This crate is the paper's primary contribution: STAT itself.  It gathers stack
//! traces from every task of a parallel job, merges them — inside a tree-based
//! overlay network — into 2D (trace/space) and 3D (trace/space/time) call-graph
//! prefix trees, and reports the job's *process equivalence classes* so a heavyweight
//! debugger can be pointed at one representative of each behaviour instead of at
//! hundreds of thousands of processes.
//!
//! The crate also contains the three scalability lessons the paper teaches:
//!
//! 1. **Scalable startup** is delegated to the `launch` crate (LaunchMON vs. rsh vs.
//!    the BG/L system software); [`session::PhaseEstimator`] exposes it as a phase.
//! 2. **Hierarchical data structures**: [`taskset`] implements both the original
//!    job-wide bit vectors and the optimised subtree task lists, [`graph`] implements
//!    the prefix tree generically over them, and [`strategy`] folds everything that
//!    varies with the representation into one sealed dispatch point.
//! 3. **Scalable access to static data** is delegated to the `sbrs` crate; the
//!    sampling phase of [`session::PhaseEstimator`] prices its effect.
//!
//! The tool is driven through one front door: [`session::Session`], a builder-style
//! API whose [`session::Session::attach`] runs sampling → local merge → single-pass
//! multi-channel TBON reduction → remap → classification as one pipeline and reports
//! per-phase metrics.
//!
//! ## Quick start
//!
//! ```
//! use appsim::{FrameVocabulary, RingHangApp};
//! use machine::Cluster;
//! use stat_core::prelude::*;
//!
//! // A 256-task MPI ring test in which rank 1 hangs before its send.
//! let app = RingHangApp::new(256, FrameVocabulary::Linux);
//! let session = Session::builder(Cluster::test_cluster(32, 8)).build();
//! let report = session.attach(&app).expect("the session merges cleanly");
//!
//! // The 256 tasks collapse into three behaviour classes...
//! assert_eq!(report.gather.classes.len(), 3);
//! // ...so a heavyweight debugger only needs to attach to three ranks.
//! assert_eq!(report.gather.attach_set().len(), 3);
//! ```

#![warn(rust_2018_idioms)]

pub mod daemon;
pub mod dot;
pub mod equivalence;
pub mod error;
pub mod filter;
pub mod frontend;
pub mod graph;
pub mod report;
pub mod scenario;
pub mod serialize;
pub mod session;
pub mod strategy;
pub mod streaming;
pub mod taskset;
pub mod threads;

/// The most commonly used types, re-exported.
pub mod prelude {
    pub use crate::daemon::{DaemonContribution, StatDaemon};
    pub use crate::dot::{to_dot, DotOptions};
    pub use crate::equivalence::{
        debugger_attach_set, equivalence_classes, ClassSummary, EquivalenceClass,
    };
    pub use crate::error::{MergeChannel, StatError};
    pub use crate::filter::{RankMapFilter, StatMergeFilter};
    pub use crate::frontend::{GatherResult, MergeMetrics, Representation};
    pub use crate::graph::{GlobalPrefixTree, PrefixTree, SubtreePrefixTree};
    pub use crate::report::{
        classes_above, focus_on_path, prune_by_population, render_text_tree, session_summary,
    };
    pub use crate::scenario::{
        diagnose, run_scenario, run_scenario_in, run_scenario_with, ScenarioRun,
    };
    pub use crate::serialize::{
        decode_tree, encode_merged_tree, encode_tree, DecodeError, EncodeError, WireFrames,
    };
    pub use crate::session::{
        MergeEstimate, PhaseEstimator, PhaseTimings, Session, SessionBuilder, SessionReport,
    };
    pub use crate::strategy::{MergedTrees, RepresentationStrategy};
    pub use crate::streaming::{CanonicalTree, StreamingBuilder, StreamingSession, WaveReport};
    pub use crate::taskset::{
        format_rank_ranges, DenseBitVector, MemberIter, SubtreeTaskList, TaskSetOps,
    };
    pub use crate::threads::{measure_thread_scaling, project_thread_counts};
    pub use stackwalk::FrameDictionary;
}

pub use prelude::*;
