//! Textual reports and interactive-style tree operations.
//!
//! STAT's GUI lets the user *work* the merged tree: read it as an indented outline,
//! hide the uninteresting bulk (nodes covering nearly every task), zoom into one
//! branch, and export a summary for the bug report.  This module provides those
//! operations for the reproduction's command-line examples: an ASCII rendering of the
//! prefix tree with Figure 1-style edge labels, population-threshold pruning, path
//! focusing, and a one-page session summary.

use stackwalk::FrameTable;

use crate::equivalence::equivalence_classes;
use crate::frontend::GatherResult;
use crate::graph::{NodeIdx, PrefixTree};
use crate::taskset::{format_rank_ranges, TaskSetOps};

/// Render a prefix tree as an indented outline, one node per line, with the same
/// `count:[ranges]` labels the DOT output uses.
pub fn render_text_tree<S: TaskSetOps>(tree: &PrefixTree<S>, table: &FrameTable) -> String {
    let mut out = String::new();
    render_node(tree, table, tree.root(), 0, &mut out);
    out
}

fn render_node<S: TaskSetOps>(
    tree: &PrefixTree<S>,
    table: &FrameTable,
    node: NodeIdx,
    depth: usize,
    out: &mut String,
) {
    if node == tree.root() {
        out.push_str(&format!("/ ({} tasks)\n", tree.tasks(node).count()));
    } else {
        let name = tree.frame(node).map(|f| table.name(f)).unwrap_or("<root>");
        let label = format_rank_ranges(&tree.tasks(node).members(), 4);
        out.push_str(&format!("{}{name}  {label}\n", "  ".repeat(depth)));
    }
    for &child in tree.children(node) {
        render_node(tree, table, child, depth + 1, out);
    }
}

/// Return a copy of the tree containing only nodes whose task population is at least
/// `min_tasks`.  This is how a user hides the "everyone is in the barrier" bulk and
/// looks at the outliers — or, with a high threshold, does the opposite.
pub fn prune_by_population<S: TaskSetOps>(tree: &PrefixTree<S>, min_tasks: u64) -> PrefixTree<S> {
    let mut out = PrefixTree::<S>::new(tree.width(), tree.is_concatenating());
    out.replace_tasks(0, tree.tasks(tree.root()).clone());
    copy_filtered(
        tree,
        tree.root(),
        &mut out,
        0,
        &mut |t: &PrefixTree<S>, n| t.tasks(n).count() >= min_tasks,
    );
    out
}

/// Return a copy of the tree containing only the subtree(s) whose paths start with
/// the given frame prefix (by name).  An empty prefix copies the whole tree.
pub fn focus_on_path<S: TaskSetOps>(
    tree: &PrefixTree<S>,
    table: &FrameTable,
    prefix: &[&str],
) -> PrefixTree<S> {
    let mut out = PrefixTree::<S>::new(tree.width(), tree.is_concatenating());
    out.replace_tasks(0, tree.tasks(tree.root()).clone());
    let prefix: Vec<String> = prefix.iter().map(|s| s.to_string()).collect();
    copy_filtered(
        tree,
        tree.root(),
        &mut out,
        0,
        &mut |t: &PrefixTree<S>, n| {
            // Keep a node if its path is a prefix of the filter, or the filter is a
            // prefix of its path (i.e. it lies on or below the focused branch).
            let path: Vec<&str> = t.path_to(n).iter().map(|&f| table.name(f)).collect();
            let shared = path
                .iter()
                .zip(prefix.iter())
                .take_while(|(a, b)| **a == b.as_str())
                .count();
            shared == path.len().min(prefix.len())
        },
    );
    out
}

fn copy_filtered<S: TaskSetOps>(
    src: &PrefixTree<S>,
    src_node: NodeIdx,
    dst: &mut PrefixTree<S>,
    dst_node: NodeIdx,
    keep: &mut dyn FnMut(&PrefixTree<S>, NodeIdx) -> bool,
) {
    for &child in src.children(src_node) {
        if !keep(src, child) {
            continue;
        }
        let frame = src.frame(child).expect("non-root nodes have frames");
        let new_child = dst.append_node(dst_node, frame);
        dst.replace_tasks(new_child, src.tasks(child).clone());
        copy_filtered(src, child, dst, new_child, keep);
    }
}

/// A one-page textual summary of a gather, suitable for a terminal or a bug report.
pub fn session_summary(result: &GatherResult, total_tasks: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "STAT gather over {total_tasks} tasks: {} behaviour classes\n",
        result.classes.len()
    ));
    for class in &result.classes {
        out.push_str(&format!(
            "  {:>20}  {}\n",
            class.tasks_string(),
            class.path_string(&result.frames)
        ));
    }
    out.push_str(&format!(
        "\nattach set (one representative per class): {:?}\n",
        result.attach_set()
    ));
    out.push_str(&format!(
        "merge: {:?} wall, {} bytes into the front end, {} bytes across the overlay\n",
        result.metrics.merge_wall,
        result.metrics.frontend_bytes_in,
        result.metrics.total_link_bytes
    ));
    if !result.metrics.remap_wall.is_zero() {
        out.push_str(&format!("remap: {:?}\n", result.metrics.remap_wall));
    }
    out.push_str(&format!(
        "2D tree: {} nodes; 3D tree: {} nodes\n",
        result.tree_2d.node_count(),
        result.tree_3d.node_count()
    ));
    out
}

/// The number of classes a pruned view would show — a quick way for examples and
/// tests to ask "how much does the threshold hide?".
pub fn classes_above<S: TaskSetOps>(tree: &PrefixTree<S>, min_tasks: u64) -> usize {
    equivalence_classes(&prune_by_population(tree, min_tasks)).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GlobalPrefixTree;
    use appsim::{gather_samples, Application, FrameVocabulary, RingHangApp};

    fn ring_tree(tasks: u64) -> (GlobalPrefixTree, FrameTable) {
        let app = RingHangApp::new(tasks, FrameVocabulary::BlueGeneL);
        let mut table = FrameTable::new();
        let samples = gather_samples(&app, 3, &mut table);
        let mut tree = GlobalPrefixTree::new_global(app.num_tasks());
        for s in &samples {
            tree.add_samples(s, s.rank);
        }
        (tree, table)
    }

    #[test]
    fn text_rendering_contains_every_frame_once_per_node() {
        let (tree, table) = ring_tree(64);
        let text = render_text_tree(&tree, &table);
        assert!(text.starts_with("/ (64 tasks)"));
        assert!(text.contains("do_SendOrStall"));
        assert!(text.contains("PMPI_Waitall"));
        // One line per node.
        assert_eq!(text.lines().count(), tree.node_count());
    }

    #[test]
    fn pruning_hides_small_populations() {
        let (tree, _) = ring_tree(256);
        // Keep only nodes covering at least 10 tasks: the two singleton branches
        // (ranks 1 and 2) disappear, and those ranks now terminate at `main`.
        let pruned = prune_by_population(&tree, 10);
        assert!(pruned.node_count() < tree.node_count());
        let classes = equivalence_classes(&pruned);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].size(), 254);
        assert_eq!(classes[1].tasks, vec![1, 2]);
        // A threshold of 1 keeps everything.
        assert_eq!(
            prune_by_population(&tree, 1).node_count(),
            tree.node_count()
        );
    }

    #[test]
    fn focusing_isolates_one_branch() {
        let (tree, table) = ring_tree(128);
        let focused = focus_on_path(&tree, &table, &["_start_blrts", "main", "do_SendOrStall"]);
        let classes = equivalence_classes(&focused);
        // The focused branch keeps the hung rank's path; every other rank now
        // terminates at `main` (their branches were cut away).
        assert_eq!(classes.len(), 2);
        let singleton = classes.iter().find(|c| c.size() == 1).unwrap();
        assert_eq!(singleton.tasks, vec![1]);
        // Focusing on the empty prefix copies everything.
        let all = focus_on_path(&tree, &table, &[]);
        assert_eq!(all.node_count(), tree.node_count());
    }

    #[test]
    fn classes_above_summarises_the_threshold_effect() {
        let (tree, _) = ring_tree(512);
        assert_eq!(classes_above(&tree, 1), 3);
        // Above a threshold of 2, the two outlier ranks fold back into the spine,
        // leaving the barrier class plus a residual {1, 2} class at `main`.
        assert_eq!(classes_above(&tree, 2), 2);
        assert_eq!(classes_above(&tree, 10_000), 0);
    }

    #[test]
    fn session_summary_names_the_culprit() {
        let app = RingHangApp::new(128, FrameVocabulary::BlueGeneL);
        let session =
            crate::session::Session::builder(machine::Cluster::test_cluster(16, 8)).build();
        let result = session.attach(&app).unwrap();
        let summary = session_summary(&result.gather, 128);
        assert!(summary.contains("3 behaviour classes"));
        assert!(summary.contains("do_SendOrStall"));
        assert!(summary.contains("attach set"));
    }
}
