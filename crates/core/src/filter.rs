//! STAT's TBON filters.
//!
//! The tool's scalability comes from doing the merge *inside* the overlay network:
//! every communication process runs [`StatMergeFilter`] over the serialised prefix
//! trees arriving from its children and forwards one merged tree to its parent, so
//! the front end's work is independent of the daemon count.  A companion
//! [`RankMapFilter`] concatenates the daemons' local rank lists in exactly the same
//! child order, which is what makes the front end's remap step possible for the
//! hierarchical representation.
//!
//! Under wire format v2 the filter never touches a frame name: every packet in a
//! session carries ids from one negotiated [`stackwalk::FrameDictionary`], so
//! comparing two frames during the merge is integer equality on ids.  The filter
//! only has to union the incremental dictionary records its children shipped and
//! forward them with the merged tree, which keeps each packet self-contained.

use std::marker::PhantomData;

use tbon::filter::Filter;
use tbon::packet::{EndpointId, Packet, PacketTag};

use crate::graph::PrefixTree;
use crate::serialize::{
    decode_rank_map, decode_tree, encode_merged_tree, encode_rank_map, WireFrames, WireTaskSet,
};

/// The prefix-tree merge filter, generic over the task-set representation.
///
/// The filter is stateless: each invocation decodes the child packets into trees
/// carrying session-global frame ids, merges them left to right by id, and
/// re-encodes the result.  Malformed child payloads — including packets whose
/// dictionary negotiation does not match the sibling packets' — are skipped rather
/// than poisoning the whole reduction: a daemon that produced garbage should not
/// take down the session.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatMergeFilter<S> {
    _repr: PhantomData<S>,
}

impl<S> StatMergeFilter<S> {
    /// A new filter instance.
    pub fn new() -> Self {
        StatMergeFilter { _repr: PhantomData }
    }
}

impl<S: WireTaskSet + Send + Sync> Filter for StatMergeFilter<S> {
    fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet {
        let tag = inputs.first().map(|p| p.tag).unwrap_or(PacketTag::Merged2d);
        let mut merged: Option<(PrefixTree<S>, WireFrames)> = None;
        for packet in inputs {
            let (tree, frames) = match decode_tree::<S>(&packet.payload) {
                Ok(decoded) => decoded,
                Err(_) => continue,
            };
            merged = Some(match merged.take() {
                None => (tree, frames),
                Some((mut acc, mut acc_frames)) => {
                    if acc_frames.merge(&frames).is_err() {
                        // A foreign-session packet cannot be merged by id; skip
                        // it like any other malformed child.
                        (acc, acc_frames)
                    } else {
                        // By-value merge: the decoded child tree's task sets move
                        // into the accumulator, nothing is cloned on the hot path.
                        acc.merge(tree);
                        (acc, acc_frames)
                    }
                }
            });
        }
        match merged {
            Some((tree, frames)) => Packet::new(tag, node, encode_merged_tree(&tree, &frames)),
            None => Packet::control(tag, node),
        }
    }

    fn name(&self) -> &'static str {
        "stat-merge"
    }
}

/// Concatenates the daemons' rank maps in child order — the setup-phase companion of
/// the hierarchical merge.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankMapFilter;

impl Filter for RankMapFilter {
    fn reduce(&self, node: EndpointId, inputs: &[Packet]) -> Packet {
        let mut ranks = Vec::new();
        for packet in inputs {
            if let Ok(mut chunk) = decode_rank_map(&packet.payload) {
                ranks.append(&mut chunk);
            }
        }
        Packet::new(PacketTag::RankMap, node, encode_rank_map(&ranks))
    }

    fn name(&self) -> &'static str {
        "stat-rankmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GlobalPrefixTree, SubtreePrefixTree};
    use crate::serialize::encode_tree;
    use crate::taskset::{DenseBitVector, SubtreeTaskList, TaskSetOps};
    use stackwalk::{FrameDictionary, FrameTable, StackTrace};

    fn session_dictionary() -> FrameDictionary {
        FrameDictionary::negotiate(["_start", "main", "MPI_Barrier", "do_SendOrStall"])
    }

    fn daemon_packet_global(
        dict: &FrameDictionary,
        source: u32,
        ranks: std::ops::Range<u64>,
        total: u64,
        stall_rank: Option<u64>,
    ) -> Packet {
        let mut table = FrameTable::new();
        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let stall = StackTrace::new(table.intern_path(&["_start", "main", "do_SendOrStall"]));
        let mut tree = GlobalPrefixTree::new_global(total);
        for rank in ranks {
            let t = if Some(rank) == stall_rank {
                &stall
            } else {
                &barrier
            };
            tree.add_trace(t, rank);
        }
        Packet::new(
            PacketTag::Merged2d,
            EndpointId(source),
            encode_tree(&tree, &table, dict),
        )
    }

    #[test]
    fn global_filter_merges_children() {
        let dict = session_dictionary();
        let filter = StatMergeFilter::<DenseBitVector>::new();
        let inputs = vec![
            daemon_packet_global(&dict, 1, 0..8, 24, Some(1)),
            daemon_packet_global(&dict, 2, 8..16, 24, None),
            daemon_packet_global(&dict, 3, 16..24, 24, None),
        ];
        let out = filter.reduce(EndpointId(0), &inputs);
        let (tree, _frames): (GlobalPrefixTree, WireFrames) = decode_tree(&out.payload).unwrap();
        assert_eq!(tree.tasks(tree.root()).count(), 24);
        let leaves = tree.leaves();
        assert_eq!(leaves.len(), 2);
        let stall_leaf = leaves
            .iter()
            .copied()
            .find(|&l| tree.tasks(l).count() == 1)
            .unwrap();
        assert_eq!(tree.tasks(stall_leaf).members(), vec![1]);
    }

    #[test]
    fn subtree_filter_concatenates_domains_in_child_order() {
        let dict = session_dictionary();
        let mut table = FrameTable::new();
        let barrier = StackTrace::new(table.intern_path(&["_start", "main", "MPI_Barrier"]));
        let make = |local_tasks: u64| {
            let mut tree = SubtreePrefixTree::new_subtree(local_tasks);
            for p in 0..local_tasks {
                tree.add_trace(&barrier, p);
            }
            Packet::new(
                PacketTag::Merged2d,
                EndpointId(9),
                encode_tree(&tree, &table, &dict),
            )
        };
        let filter = StatMergeFilter::<SubtreeTaskList>::new();
        let out = filter.reduce(EndpointId(0), &[make(4), make(8), make(2)]);
        let (tree, _frames): (SubtreePrefixTree, WireFrames) = decode_tree(&out.payload).unwrap();
        assert_eq!(tree.width(), 14);
        assert_eq!(tree.tasks(tree.root()).count(), 14);
    }

    #[test]
    fn malformed_children_are_skipped() {
        let dict = session_dictionary();
        let filter = StatMergeFilter::<DenseBitVector>::new();
        let good = daemon_packet_global(&dict, 1, 0..4, 8, None);
        let bad = Packet::new(PacketTag::Merged2d, EndpointId(2), vec![1, 2, 3]);
        let out = filter.reduce(EndpointId(0), &[bad, good]);
        let (tree, _frames): (GlobalPrefixTree, WireFrames) = decode_tree(&out.payload).unwrap();
        assert_eq!(tree.tasks(tree.root()).count(), 4);
    }

    #[test]
    fn foreign_session_children_are_skipped_like_corruption() {
        // Two packets negotiated against *different* dictionaries cannot be
        // merged by id; the filter keeps the first and skips the imposter.
        let dict = session_dictionary();
        let other = FrameDictionary::negotiate(["_start"]);
        let filter = StatMergeFilter::<DenseBitVector>::new();
        let ours = daemon_packet_global(&dict, 1, 0..4, 8, None);
        let theirs = daemon_packet_global(&other, 2, 4..8, 8, None);
        let out = filter.reduce(EndpointId(0), &[ours, theirs]);
        let (tree, frames): (GlobalPrefixTree, WireFrames) = decode_tree(&out.payload).unwrap();
        assert_eq!(tree.tasks(tree.root()).count(), 4);
        assert_eq!(frames.base_len(), dict.base_len());
    }

    #[test]
    fn empty_wave_produces_a_control_packet() {
        let filter = StatMergeFilter::<DenseBitVector>::new();
        let out = filter.reduce(EndpointId(0), &[]);
        assert_eq!(out.size_bytes(), 0);
    }

    #[test]
    fn rank_map_filter_concatenates_in_order() {
        let filter = RankMapFilter;
        let a = Packet::new(PacketTag::RankMap, EndpointId(1), encode_rank_map(&[0, 2]));
        let b = Packet::new(PacketTag::RankMap, EndpointId(2), encode_rank_map(&[1, 3]));
        let out = filter.reduce(EndpointId(0), &[a, b]);
        assert_eq!(decode_rank_map(&out.payload).unwrap(), vec![0, 2, 1, 3]);
    }
}
