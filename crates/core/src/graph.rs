//! The call-graph prefix tree — STAT's central data structure.
//!
//! Every stack trace is a path from the process entry point down to a leaf frame.
//! Merging the traces of many tasks (and, for the 3D analysis, many samples per task)
//! into a single *prefix tree* groups tasks that behave alike: each tree node is a
//! frame reached by some set of tasks, and the edge into it is labelled with exactly
//! that task set.  Figure 1 of the paper is one of these trees for the 1,024-task
//! ring hang.
//!
//! The tree is generic over the task-set representation ([`TaskSetOps`]), because the
//! whole point of Section V is that the *same* merge algorithm behaves completely
//! differently at scale depending on whether edge labels are job-wide bit vectors or
//! subtree-local task lists.  The [`PrefixTree::merge`] operation does whichever the
//! representation requires: a plain union for the global representation, or the
//! offset-and-concatenate ("hierarchical") merge for subtree task lists.
//!
//! ## The merge hot path (ISSUE 4)
//!
//! [`PrefixTree::merge`] consumes the other tree **by value**: matched nodes are
//! combined with a word-level shifted union ([`TaskSetOps::union_shifted`]) and
//! unmatched subtrees *move* their task sets across — the hierarchical path never
//! clones a tree, and the accumulated tree widens in place, so peak memory stays
//! proportional to one input wave.  Callers that must keep the source use
//! [`PrefixTree::merge_ref`].  Child lookup is a tree-wide `(parent, frame)` hash
//! (an O(1) probe, not a sibling scan — `add_trace`, `merge` and packet decode all
//! go through it), and every
//! traversal — merge, [`PrefixTree::depth`], [`SubtreePrefixTree::remap`] — runs an
//! explicit worklist, so a pathologically deep trace cannot overflow the stack.
//! Before/after numbers live in `results/BENCH_merge.md`.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use stackwalk::{FrameId, StackTrace, TaskSamples};

use crate::taskset::{DenseBitVector, SubtreeTaskList, TaskSetOps};

/// Index of a node within one tree.
pub type NodeIdx = usize;

/// A minimal FxHash-style hasher for the `(parent, frame)` child index: the keys are
/// small integers, so a multiply-xor mix beats the DoS-resistant default by a wide
/// margin on the merge hot path (and we vendor no external fast-hash crate).
#[derive(Clone, Copy, Debug, Default)]
struct ChildKeyHasher {
    hash: u64,
}

impl ChildKeyHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    fn mix(&mut self, value: u64) {
        self.hash = (self.hash.rotate_left(5) ^ value).wrapping_mul(Self::SEED);
    }
}

impl Hasher for ChildKeyHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.mix(value as u64);
    }

    fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    fn write_usize(&mut self, value: usize) {
        self.mix(value as u64);
    }
}

type ChildIndex = HashMap<(NodeIdx, FrameId), NodeIdx, BuildHasherDefault<ChildKeyHasher>>;

#[derive(Clone, Debug)]
struct TreeEntry<S> {
    frame: Option<FrameId>,
    parent: Option<NodeIdx>,
    children: Vec<NodeIdx>,
    tasks: S,
}

/// A call-graph prefix tree with task-set edge labels.
#[derive(Clone, Debug)]
pub struct PrefixTree<S: TaskSetOps> {
    width: u64,
    concatenating: bool,
    nodes: Vec<TreeEntry<S>>,
    /// O(1) frame→child lookup: `(parent, frame) → child`.  Maintained by
    /// `add_child`, used by `add_trace`, `merge` and packet decode in place of the
    /// old linear sibling scan.
    child_index: ChildIndex,
}

impl<S: TaskSetOps> PrefixTree<S> {
    /// An empty tree over a domain of `width` task positions.
    ///
    /// `concatenating` selects the merge semantics: `false` for the global (dense)
    /// representation where every tree shares the job-wide domain, `true` for the
    /// hierarchical representation where merging concatenates the children's domains.
    /// Use [`PrefixTree::new_global`] / [`PrefixTree::new_subtree`] from the type
    /// aliases below rather than guessing.
    pub fn new(width: u64, concatenating: bool) -> Self {
        PrefixTree {
            width,
            concatenating,
            nodes: vec![TreeEntry {
                frame: None,
                parent: None,
                children: Vec::new(),
                tasks: S::empty(width),
            }],
            child_index: ChildIndex::default(),
        }
    }

    /// The domain width (total tasks for global trees, subtree tasks for subtree
    /// trees).
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Whether this tree merges by concatenation (hierarchical representation).
    pub fn is_concatenating(&self) -> bool {
        self.concatenating
    }

    /// Number of nodes, including the synthetic root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of labelled edges (every node except the root has one incoming edge).
    pub fn edge_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The root node index.
    pub fn root(&self) -> NodeIdx {
        0
    }

    /// The arena accessor every traversal goes through.  `NodeIdx` values are
    /// minted by `add_child_with_tasks` against this same arena and nodes are
    /// never removed, so a stored index (parent link, child list, child-index
    /// probe, worklist entry) is always in range — the one place that invariant
    /// is relied on for indexing is here, not scattered across the file.
    fn entry(&self, node: NodeIdx) -> &TreeEntry<S> {
        // stat-analyzer: allow(hot-path-panic) — arena indices are minted by this tree and nodes are never removed
        &self.nodes[node]
    }

    /// Mutable twin of [`Self::entry`]; same invariant.
    fn entry_mut(&mut self, node: NodeIdx) -> &mut TreeEntry<S> {
        // stat-analyzer: allow(hot-path-panic) — arena indices are minted by this tree and nodes are never removed
        &mut self.nodes[node]
    }

    /// The frame of a node (`None` for the root).
    pub fn frame(&self, node: NodeIdx) -> Option<FrameId> {
        self.entry(node).frame
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, node: NodeIdx) -> Option<NodeIdx> {
        self.entry(node).parent
    }

    /// The children of a node.
    pub fn children(&self, node: NodeIdx) -> &[NodeIdx] {
        &self.entry(node).children
    }

    /// The task set labelling the edge into a node (for the root: every task seen).
    pub fn tasks(&self, node: NodeIdx) -> &S {
        &self.entry(node).tasks
    }

    /// Maximum depth (frames) of any path in the tree.
    ///
    /// Iterative (a worklist, not recursion), so a pathologically deep trace — tens
    /// of thousands of frames — cannot overflow the stack.
    pub fn depth(&self) -> usize {
        let mut deepest = 0;
        let mut work: Vec<(NodeIdx, usize)> = vec![(self.root(), 0)];
        while let Some((node, depth)) = work.pop() {
            deepest = deepest.max(depth);
            work.extend(self.children(node).iter().map(|&c| (c, depth + 1)));
        }
        deepest
    }

    /// Leaf node indices, in a stable order.
    pub fn leaves(&self) -> Vec<NodeIdx> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, node)| node.children.is_empty() && *i != 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// The path of frames from the root to a node (outermost first).
    pub fn path_to(&self, node: NodeIdx) -> Vec<FrameId> {
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(idx) = cur {
            if let Some(frame) = self.entry(idx).frame {
                path.push(frame);
            }
            cur = self.entry(idx).parent;
        }
        path.reverse();
        path
    }

    fn child_with_frame(&self, node: NodeIdx, frame: FrameId) -> Option<NodeIdx> {
        self.child_index.get(&(node, frame)).copied()
    }

    fn add_child(&mut self, parent: NodeIdx, frame: FrameId) -> NodeIdx {
        let tasks = S::empty(self.width);
        self.add_child_with_tasks(parent, frame, tasks)
    }

    fn add_child_with_tasks(&mut self, parent: NodeIdx, frame: FrameId, tasks: S) -> NodeIdx {
        let idx = self.nodes.len();
        self.nodes.push(TreeEntry {
            frame: Some(frame),
            parent: Some(parent),
            children: Vec::new(),
            tasks,
        });
        self.entry_mut(parent).children.push(idx);
        self.child_index.insert((parent, frame), idx);
        idx
    }

    /// Add one stack trace observed from task position `index` (a global rank for
    /// global trees, a subtree-local position for subtree trees).
    pub fn add_trace(&mut self, trace: &StackTrace, index: u64) {
        let root = self.root();
        self.entry_mut(root).tasks.insert(index);
        let mut cur = root;
        for &frame in trace.frames() {
            let next = match self.child_with_frame(cur, frame) {
                Some(c) => c,
                None => self.add_child(cur, frame),
            };
            self.entry_mut(next).tasks.insert(index);
            cur = next;
        }
    }

    /// Add every trace of a task's sample series (the 3D trace/space/time analysis).
    pub fn add_samples(&mut self, samples: &TaskSamples, index: u64) {
        for trace in &samples.traces {
            self.add_trace(trace, index);
        }
    }

    /// Add only the first trace of a task's series (the 2D trace/space analysis).
    pub fn add_first_sample(&mut self, samples: &TaskSamples, index: u64) {
        if let Some(trace) = samples.traces.first() {
            self.add_trace(trace, index);
        }
    }

    /// Widen every task set in place to `new_width` (the accumulated tree's side of
    /// a hierarchical merge: no per-member work, just word-vector growth).
    fn widen_all(&mut self, new_width: u64) {
        for node in &mut self.nodes {
            node.tasks.rebase(0, new_width);
        }
        self.width = new_width;
    }

    /// Merge another tree into this one, consuming it.
    ///
    /// * Global (dense) representation: both trees already describe the job-wide
    ///   domain, so matched edge labels are unioned in place and unmatched subtrees
    ///   *move* their labels across without a copy.
    /// * Hierarchical representation: the domains are concatenated — this tree keeps
    ///   positions `0..w₁`, the other tree's positions become `w₁..w₁+w₂` — exactly
    ///   the "combine the task lists of all children by simple concatenation" step of
    ///   Section V-B.  This tree widens in place and the other tree's labels are
    ///   shifted-OR'd ([`TaskSetOps::union_shifted`]) or moved-and-rebased in, so
    ///   nothing is cloned: the merge is O(matched words + moved nodes).
    ///
    /// Callers that need to keep the source tree use [`PrefixTree::merge_ref`].
    ///
    /// The traversal is an explicit worklist: merging arbitrarily deep 3D traces
    /// cannot overflow the stack.
    pub fn merge(&mut self, mut other: PrefixTree<S>) {
        assert_eq!(
            self.concatenating, other.concatenating,
            "cannot merge trees with different representations"
        );
        let offset = if self.concatenating {
            let w1 = self.width;
            self.widen_all(w1 + other.width);
            w1
        } else {
            assert_eq!(
                self.width, other.width,
                "global trees must share the job-wide domain"
            );
            0
        };
        let new_width = self.width;

        // One worklist of (self node, other node, grafted) triples.  A node of
        // `other` whose frame is new under its matched parent moves across
        // wholesale: its task set is taken (not cloned) and rebased word-level.
        // Below a grafted node every descendant is new by construction, so the
        // child-index probe (and the union — a fresh node already carries the moved
        // set) is skipped.
        let mut work: Vec<(NodeIdx, NodeIdx, bool)> = vec![(self.root(), other.root(), false)];
        while let Some((sn, on, grafted)) = work.pop() {
            if !grafted {
                self.entry_mut(sn)
                    .tasks
                    .union_shifted(&other.entry(on).tasks, offset);
            }
            // `other` is consumed, so its child lists can be taken wholesale —
            // this also keeps the loop free of index arithmetic.
            let other_children = std::mem::take(&mut other.entry_mut(on).children);
            for oc in other_children {
                let frame = other
                    .entry(oc)
                    .frame
                    // stat-analyzer: allow(hot-path-panic) — oc came off a parent's child list, and only the root (never anyone's child) lacks a frame
                    .expect("non-root nodes always carry a frame");
                let matched = if grafted {
                    None
                } else {
                    self.child_with_frame(sn, frame)
                };
                match matched {
                    Some(sc) => work.push((sc, oc, false)),
                    None => {
                        let mut tasks =
                            std::mem::replace(&mut other.entry_mut(oc).tasks, S::empty(0));
                        tasks.rebase(offset, new_width);
                        let sc = self.add_child_with_tasks(sn, frame, tasks);
                        work.push((sc, oc, true));
                    }
                }
            }
        }
    }

    /// Merge another tree into this one while keeping the source intact.
    ///
    /// This is the shim for the few callers (tests, benchmarks, repeated degraded
    /// gathers) that genuinely need to retain `other`; the hot path is the by-value
    /// [`PrefixTree::merge`], which never clones a tree.
    pub fn merge_ref(&mut self, other: &PrefixTree<S>) {
        self.merge(other.clone());
    }

    /// Union another tree into this one **over the same domain** — no domain
    /// concatenation for either representation.  Matched edge labels union at
    /// offset zero and unmatched subtrees move their task sets across.
    ///
    /// This is the fold step of the streaming delta path: a wave tree or a
    /// [`PrefixTree::delta_from`] delta describes the *same* task positions as the
    /// accumulated tree it folds into (a daemon's own local domain, or one tree
    /// node's already-concatenated subtree domain), so the hierarchical
    /// representation must not widen here the way [`PrefixTree::merge`] does.
    pub fn merge_aligned(&mut self, mut other: PrefixTree<S>) {
        assert_eq!(
            self.concatenating, other.concatenating,
            "cannot merge trees with different representations"
        );
        assert_eq!(
            self.width, other.width,
            "aligned merge requires one shared task domain"
        );
        let mut work: Vec<(NodeIdx, NodeIdx, bool)> = vec![(self.root(), other.root(), false)];
        while let Some((sn, on, grafted)) = work.pop() {
            if !grafted {
                self.entry_mut(sn)
                    .tasks
                    .union_shifted(&other.entry(on).tasks, 0);
            }
            let other_children = std::mem::take(&mut other.entry_mut(on).children);
            for oc in other_children {
                // Only the root (never anyone's child) lacks a frame; a frameless
                // child would be malformed input, and skipping it is the
                // panic-free response on this hot path.
                let Some(frame) = other.entry(oc).frame else {
                    continue;
                };
                let matched = if grafted {
                    None
                } else {
                    self.child_with_frame(sn, frame)
                };
                match matched {
                    Some(sc) => work.push((sc, oc, false)),
                    None => {
                        let tasks = std::mem::replace(&mut other.entry_mut(oc).tasks, S::empty(0));
                        let sc = self.add_child_with_tasks(sn, frame, tasks);
                        work.push((sc, oc, true));
                    }
                }
            }
        }
    }

    /// The tree of members `self` adds over `prev`: every node of `self` is
    /// matched against `prev` by path, and the delta keeps exactly the nodes
    /// whose task sets carry members absent from the matched node (plus nodes
    /// with no match at all, and the ancestors needed to reach them), labelled
    /// with only those **new** members.
    ///
    /// Applying the result to `prev` with [`PrefixTree::merge_aligned`]
    /// reconstructs `prev ∪ self` — the streaming invariant the daemons rely on
    /// when they ship one delta per wave instead of the whole accumulated tree.
    /// A fully quiescent wave (`self ⊆ prev`) deltas to a lone empty root.
    pub fn delta_from(&self, prev: &PrefixTree<S>) -> PrefixTree<S> {
        assert_eq!(
            self.concatenating, prev.concatenating,
            "cannot delta trees with different representations"
        );
        assert_eq!(
            self.width, prev.width,
            "delta requires one shared task domain"
        );
        let n = self.nodes.len();

        // Pass 1, index order (parents precede children by construction): match
        // each node of `self` to its path-equivalent in `prev` and compute the
        // members it adds.
        let mut matched: Vec<Option<NodeIdx>> = Vec::with_capacity(n);
        let mut new_bits: Vec<S> = Vec::with_capacity(n);
        for (i, node) in self.nodes.iter().enumerate() {
            let prev_node = if i == 0 {
                Some(prev.root())
            } else {
                node.parent
                    .and_then(|p| matched.get(p).copied().flatten())
                    .and_then(|pp| node.frame.and_then(|f| prev.child_with_frame(pp, f)))
            };
            let mut bits = node.tasks.clone();
            if let Some(pn) = prev_node {
                bits.subtract(prev.tasks(pn));
            }
            matched.push(prev_node);
            new_bits.push(bits);
        }

        // Pass 2, reverse index order (children before parents): a node is kept
        // when it adds members, has no match in `prev` (new structure), or must
        // stay as scaffold above a kept descendant.
        let mut include: Vec<bool> = new_bits
            .iter()
            .zip(matched.iter())
            .map(|(bits, m)| !bits.is_empty_set() || m.is_none())
            .collect();
        for i in (1..n).rev() {
            if include.get(i).copied().unwrap_or(false) {
                if let Some(parent) = self.nodes.get(i).and_then(|node| node.parent) {
                    if let Some(slot) = include.get_mut(parent) {
                        *slot = true;
                    }
                }
            }
        }

        // Pass 3, index order again: build the delta tree (parents first, so the
        // parent's delta index always exists before its children need it).
        let mut out = PrefixTree::new(self.width, self.concatenating);
        let mut out_idx: Vec<Option<NodeIdx>> = Vec::with_capacity(n);
        for (i, ((bits, &kept), node)) in new_bits
            .into_iter()
            .zip(include.iter())
            .zip(self.nodes.iter())
            .enumerate()
        {
            if i == 0 {
                let root = out.root();
                out.entry_mut(root).tasks = bits;
                out_idx.push(Some(root));
                continue;
            }
            if !kept {
                out_idx.push(None);
                continue;
            }
            let parent = node.parent.and_then(|p| out_idx.get(p).copied().flatten());
            let placed = match (parent, node.frame) {
                (Some(op), Some(frame)) => Some(out.add_child_with_tasks(op, frame, bits)),
                // Unreachable for a well-formed arena (ancestors of kept nodes
                // are kept); dropping the node is the panic-free fallback.
                _ => None,
            };
            out_idx.push(placed);
        }
        out
    }

    /// Total bytes of task-set labels a serialised copy of this tree carries — the
    /// quantity that differs so dramatically between the two representations.
    pub fn label_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.tasks.serialized_bytes()).sum()
    }

    /// Replace the task set of a node wholesale (used by packet deserialisation).
    pub(crate) fn replace_tasks(&mut self, node: NodeIdx, tasks: S) {
        self.entry_mut(node).tasks = tasks;
    }

    /// Append a node under `parent` with an empty task set (used by packet
    /// deserialisation, which sees parents before children).
    pub(crate) fn append_node(&mut self, parent: NodeIdx, frame: FrameId) -> NodeIdx {
        self.add_child(parent, frame)
    }

    /// Iterate `(node, frame, parent)` over non-root nodes in index order.
    // stat-analyzer: allow(hot-path-panic, fn) — index 0 (the only frameless, parentless node) is skipped; every non-root node is constructed with both
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeIdx, FrameId, NodeIdx)> + '_ {
        self.nodes.iter().enumerate().skip(1).map(|(i, node)| {
            (
                i,
                node.frame.expect("non-root node has a frame"),
                node.parent.expect("non-root node has a parent"),
            )
        })
    }
}

/// A tree using the original, job-wide dense bit vectors.
pub type GlobalPrefixTree = PrefixTree<DenseBitVector>;

/// A tree using the optimised, subtree-local task lists.
pub type SubtreePrefixTree = PrefixTree<SubtreeTaskList>;

impl GlobalPrefixTree {
    /// An empty global tree for a job of `total_tasks` tasks.
    pub fn new_global(total_tasks: u64) -> Self {
        PrefixTree::new(total_tasks, false)
    }
}

impl SubtreePrefixTree {
    /// An empty subtree tree covering `local_tasks` task positions.
    pub fn new_subtree(local_tasks: u64) -> Self {
        PrefixTree::new(local_tasks, true)
    }

    /// The front end's remap step: convert a fully merged subtree tree (whose
    /// positions are in daemon/TBON order) into a job-wide tree in MPI rank order,
    /// using the position→rank map gathered during setup.
    ///
    /// Each edge label is translated by [`SubtreeTaskList::remap_to_dense`] — which
    /// copies the contiguous runs a daemon-ordered rank map is made of word by word,
    /// and inserts ranks directly otherwise (never materialising a job-wide
    /// singleton per member) — and the structure copy is an explicit worklist, so
    /// depth is bounded by memory, not the call stack.
    pub fn remap(&self, position_to_rank: &[u64], total_tasks: u64) -> GlobalPrefixTree {
        assert!(
            position_to_rank.len() as u64 >= self.width,
            "rank map must cover every position in the merged tree"
        );
        let mut out = GlobalPrefixTree::new_global(total_tasks);
        let out_root = out.root();
        out.entry_mut(out_root).tasks = self
            .tasks(self.root())
            .remap_to_dense(position_to_rank, total_tasks);
        let mut work: Vec<(NodeIdx, NodeIdx)> = vec![(self.root(), out_root)];
        while let Some((src_node, dst_node)) = work.pop() {
            for &child in self.children(src_node) {
                let frame = self
                    .frame(child)
                    // stat-analyzer: allow(hot-path-panic) — `child` came off a child list; only the root lacks a frame
                    .expect("non-root has frame");
                let tasks = self
                    .tasks(child)
                    .remap_to_dense(position_to_rank, total_tasks);
                let new_child = out.add_child_with_tasks(dst_node, frame, tasks);
                work.push((child, new_child));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackwalk::FrameTable;

    fn trace(table: &mut FrameTable, path: &[&str]) -> StackTrace {
        StackTrace::new(table.intern_path(path))
    }

    fn ring_like_global(table: &mut FrameTable, tasks: u64) -> GlobalPrefixTree {
        let barrier = trace(table, &["_start", "main", "MPI_Barrier", "progress"]);
        let waitall = trace(table, &["_start", "main", "MPI_Waitall", "progress"]);
        let stall = trace(table, &["_start", "main", "do_SendOrStall"]);
        let mut tree = GlobalPrefixTree::new_global(tasks);
        for rank in 0..tasks {
            let t = if rank == 1 {
                &stall
            } else if rank == 2 {
                &waitall
            } else {
                &barrier
            };
            tree.add_trace(t, rank);
        }
        tree
    }

    #[test]
    fn single_trace_builds_a_chain() {
        let mut table = FrameTable::new();
        let t = trace(&mut table, &["_start", "main", "MPI_Barrier"]);
        let mut tree = GlobalPrefixTree::new_global(8);
        tree.add_trace(&t, 3);
        assert_eq!(tree.node_count(), 4); // root + 3 frames
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.leaves().len(), 1);
        let leaf = tree.leaves()[0];
        assert_eq!(tree.tasks(leaf).members(), vec![3]);
        assert_eq!(tree.path_to(leaf).len(), 3);
    }

    #[test]
    fn shared_prefixes_are_not_duplicated() {
        let mut table = FrameTable::new();
        let tree = ring_like_global(&mut table, 64);
        // _start and main are shared; three branches below main; progress appears
        // twice (under Barrier and under Waitall).
        assert_eq!(tree.depth(), 4);
        assert_eq!(tree.leaves().len(), 3);
        // root + _start + main + (Barrier + progress) + (Waitall + progress) + stall
        assert_eq!(tree.node_count(), 8);
        // Every task passes through main.
        let main_node = tree.children(tree.children(tree.root())[0])[0];
        assert_eq!(tree.tasks(main_node).count(), 64);
    }

    #[test]
    fn global_merge_unions_task_sets() {
        let mut table = FrameTable::new();
        let barrier = trace(&mut table, &["_start", "main", "MPI_Barrier"]);
        let stall = trace(&mut table, &["_start", "main", "do_SendOrStall"]);

        let mut left = GlobalPrefixTree::new_global(16);
        for rank in 0..8 {
            left.add_trace(if rank == 1 { &stall } else { &barrier }, rank);
        }
        let mut right = GlobalPrefixTree::new_global(16);
        for rank in 8..16 {
            right.add_trace(&barrier, rank);
        }
        left.merge(right);
        assert_eq!(left.tasks(left.root()).count(), 16);
        let leaves = left.leaves();
        assert_eq!(leaves.len(), 2);
        let barrier_leaf = leaves
            .iter()
            .copied()
            .find(|&l| left.tasks(l).count() == 15)
            .expect("barrier leaf holds 15 tasks");
        assert!(left.tasks(barrier_leaf).contains(0));
        assert!(left.tasks(barrier_leaf).contains(15));
        assert!(!left.tasks(barrier_leaf).contains(1));
    }

    #[test]
    fn global_merge_is_commutative_in_content() {
        let mut table = FrameTable::new();
        let a = ring_like_global(&mut table, 32);
        let mut b = GlobalPrefixTree::new_global(32);
        let compute = trace(&mut table, &["_start", "main", "compute_interior"]);
        for rank in 0..32 {
            b.add_trace(&compute, rank);
        }
        let mut ab = a.clone();
        ab.merge_ref(&b);
        let mut ba = b.clone();
        ba.merge_ref(&a);
        assert_eq!(ab.node_count(), ba.node_count());
        assert_eq!(ab.edge_count(), ba.edge_count());
        assert_eq!(ab.tasks(ab.root()).members(), ba.tasks(ba.root()).members());
        // Leaf task populations agree regardless of merge order.
        let mut ab_counts: Vec<u64> = ab.leaves().iter().map(|&l| ab.tasks(l).count()).collect();
        let mut ba_counts: Vec<u64> = ba.leaves().iter().map(|&l| ba.tasks(l).count()).collect();
        ab_counts.sort_unstable();
        ba_counts.sort_unstable();
        assert_eq!(ab_counts, ba_counts);
    }

    #[test]
    fn subtree_merge_concatenates_domains() {
        let mut table = FrameTable::new();
        let barrier = trace(&mut table, &["_start", "main", "MPI_Barrier"]);
        let stall = trace(&mut table, &["_start", "main", "do_SendOrStall"]);

        // Daemon 0 has 2 local tasks (positions 0, 1); daemon 1 likewise.
        let mut d0 = SubtreePrefixTree::new_subtree(2);
        d0.add_trace(&barrier, 0);
        d0.add_trace(&stall, 1);
        let mut d1 = SubtreePrefixTree::new_subtree(2);
        d1.add_trace(&barrier, 0);
        d1.add_trace(&barrier, 1);

        let mut merged = d0.clone();
        merged.merge(d1);
        assert_eq!(merged.width(), 4);
        assert_eq!(merged.tasks(merged.root()).count(), 4);
        let leaves = merged.leaves();
        assert_eq!(leaves.len(), 2);
        let barrier_leaf = leaves
            .iter()
            .copied()
            .find(|&l| merged.tasks(l).count() == 3)
            .unwrap();
        // positions: d0 task0 = 0, d1 tasks = 2, 3
        assert_eq!(merged.tasks(barrier_leaf).members(), vec![0, 2, 3]);
    }

    /// Canonical content view: every node's interned path plus its members,
    /// sorted, so trees built in different orders compare structurally.
    fn shape_of<S: TaskSetOps>(tree: &PrefixTree<S>) -> Vec<(Vec<FrameId>, Vec<u64>)> {
        let mut shape: Vec<(Vec<FrameId>, Vec<u64>)> = (0..tree.node_count())
            .map(|node| (tree.path_to(node), tree.tasks(node).members()))
            .collect();
        shape.sort();
        shape
    }

    #[test]
    fn aligned_merge_unions_without_widening() {
        let mut table = FrameTable::new();
        let barrier = trace(&mut table, &["_start", "main", "MPI_Barrier"]);
        let stall = trace(&mut table, &["_start", "main", "do_SendOrStall"]);

        // Dense: two wave views of the same 16-task job.
        let mut acc = GlobalPrefixTree::new_global(16);
        for rank in 0..8 {
            acc.add_trace(&barrier, rank);
        }
        let mut wave = GlobalPrefixTree::new_global(16);
        for rank in 6..16 {
            wave.add_trace(if rank == 9 { &stall } else { &barrier }, rank);
        }
        acc.merge_aligned(wave);
        assert_eq!(acc.width(), 16, "aligned merge must not widen the domain");
        assert_eq!(acc.tasks(acc.root()).count(), 16);
        assert_eq!(acc.leaves().len(), 2);

        // Hierarchical: same-domain union (a daemon folding wave trees locally).
        let mut sub_acc = SubtreePrefixTree::new_subtree(4);
        sub_acc.add_trace(&barrier, 0);
        let mut sub_wave = SubtreePrefixTree::new_subtree(4);
        sub_wave.add_trace(&barrier, 1);
        sub_wave.add_trace(&stall, 3);
        sub_acc.merge_aligned(sub_wave);
        assert_eq!(sub_acc.width(), 4);
        assert_eq!(sub_acc.tasks(sub_acc.root()).members(), vec![0, 1, 3]);
    }

    #[test]
    fn delta_applied_to_previous_reconstructs_the_union() {
        let mut table = FrameTable::new();
        let prev = ring_like_global(&mut table, 32);
        // The next wave keeps the old branches for some ranks and sends rank 7
        // somewhere new.
        let compute = trace(&mut table, &["_start", "main", "compute_interior"]);
        let mut wave = ring_like_global(&mut table, 32);
        wave.add_trace(&compute, 7);

        let delta = wave.delta_from(&prev);
        // Only the new chain (plus scaffold ancestors) rides the wire: the delta
        // is strictly smaller than the wave tree it summarises.
        assert!(delta.node_count() < wave.node_count());
        assert_eq!(delta.width(), 32);

        let mut expected = prev.clone();
        expected.merge_ref(&wave);
        let mut folded = prev.clone();
        folded.merge_aligned(delta);
        assert_eq!(shape_of(&folded), shape_of(&expected));
    }

    #[test]
    fn quiescent_wave_deltas_to_a_lone_empty_root() {
        let mut table = FrameTable::new();
        let prev = ring_like_global(&mut table, 64);
        let delta = prev.delta_from(&prev);
        assert_eq!(delta.node_count(), 1);
        assert!(delta.tasks(delta.root()).is_empty_set());

        let mut folded = prev.clone();
        folded.merge_aligned(delta);
        assert_eq!(shape_of(&folded), shape_of(&prev));
    }

    #[test]
    fn subtree_delta_round_trips_over_a_fixed_domain() {
        let mut table = FrameTable::new();
        let barrier = trace(&mut table, &["_start", "main", "MPI_Barrier"]);
        let stall = trace(&mut table, &["_start", "main", "do_SendOrStall"]);

        let mut prev = SubtreePrefixTree::new_subtree(8);
        for pos in 0..6 {
            prev.add_trace(&barrier, pos);
        }
        let mut wave = SubtreePrefixTree::new_subtree(8);
        for pos in 0..8 {
            wave.add_trace(if pos == 2 { &stall } else { &barrier }, pos);
        }

        let delta = wave.delta_from(&prev);
        let mut expected = prev.clone();
        expected.merge_aligned(wave);
        let mut folded = prev;
        folded.merge_aligned(delta);
        assert_eq!(shape_of(&folded), shape_of(&expected));
        assert_eq!(folded.width(), 8);
    }

    #[test]
    fn label_bytes_show_the_representation_gap() {
        let mut table = FrameTable::new();
        let total_tasks = 8_192u64;
        let local_tasks = 8u64;

        // One daemon's local tree under each representation.
        let barrier = trace(&mut table, &["_start", "main", "MPI_Barrier", "progress"]);
        let mut global = GlobalPrefixTree::new_global(total_tasks);
        let mut subtree = SubtreePrefixTree::new_subtree(local_tasks);
        for local in 0..local_tasks {
            global.add_trace(&barrier, local); // ranks 0..8 of the full job
            subtree.add_trace(&barrier, local);
        }
        assert_eq!(global.node_count(), subtree.node_count());
        // The dense labels are sized for all 8,192 tasks on every edge; the subtree
        // labels only cover 8 tasks.
        assert!(global.label_bytes() > 100 * subtree.label_bytes());
    }

    #[test]
    fn remap_restores_rank_order_at_the_front_end() {
        let mut table = FrameTable::new();
        let barrier = trace(&mut table, &["_start", "main", "MPI_Barrier"]);
        let stall = trace(&mut table, &["_start", "main", "do_SendOrStall"]);

        // Figure 6: daemon 0 debugs ranks {0, 2}; daemon 1 debugs ranks {1, 3}.
        let mut d0 = SubtreePrefixTree::new_subtree(2);
        d0.add_trace(&barrier, 0); // rank 0
        d0.add_trace(&stall, 1); // rank 2
        let mut d1 = SubtreePrefixTree::new_subtree(2);
        d1.add_trace(&barrier, 0); // rank 1
        d1.add_trace(&barrier, 1); // rank 3

        let mut merged = d0.clone();
        merged.merge(d1);
        let position_to_rank = vec![0u64, 2, 1, 3];
        let global = merged.remap(&position_to_rank, 4);

        let leaves = global.leaves();
        let stall_leaf = leaves
            .iter()
            .copied()
            .find(|&l| global.tasks(l).count() == 1)
            .unwrap();
        assert_eq!(global.tasks(stall_leaf).members(), vec![2]);
        let barrier_leaf = leaves
            .iter()
            .copied()
            .find(|&l| global.tasks(l).count() == 3)
            .unwrap();
        assert_eq!(global.tasks(barrier_leaf).members(), vec![0, 1, 3]);
    }

    #[test]
    fn three_d_analysis_accumulates_all_samples() {
        let mut table = FrameTable::new();
        let shallow = trace(&mut table, &["_start", "main", "MPI_Barrier", "poll"]);
        let deep = trace(
            &mut table,
            &["_start", "main", "MPI_Barrier", "poll", "poll_inner"],
        );
        let samples = TaskSamples::new(5, vec![shallow.clone(), deep.clone(), shallow.clone()]);

        let mut tree_3d = GlobalPrefixTree::new_global(16);
        tree_3d.add_samples(&samples, 5);
        // Both the shallow and deep variants appear.
        assert_eq!(tree_3d.depth(), 5);

        let mut tree_2d = GlobalPrefixTree::new_global(16);
        tree_2d.add_first_sample(&samples, 5);
        assert_eq!(tree_2d.depth(), 4);
    }

    #[test]
    fn merge_ref_keeps_the_source_tree_usable() {
        let mut table = FrameTable::new();
        let barrier = trace(&mut table, &["_start", "main", "MPI_Barrier"]);
        let mut a = SubtreePrefixTree::new_subtree(2);
        a.add_trace(&barrier, 0);
        a.add_trace(&barrier, 1);
        let mut b = SubtreePrefixTree::new_subtree(3);
        b.add_trace(&barrier, 2);

        let mut merged = SubtreePrefixTree::new_subtree(0);
        merged.merge_ref(&a);
        merged.merge_ref(&b);
        // The sources are untouched and reusable.
        assert_eq!(a.width(), 2);
        assert_eq!(b.tasks(b.root()).members(), vec![2]);
        assert_eq!(merged.width(), 5);
        assert_eq!(merged.tasks(merged.root()).members(), vec![0, 1, 4]);
    }

    #[test]
    fn hierarchical_merge_is_word_level_across_unaligned_widths() {
        // Widths that are not multiples of 64 force the shifted-word path with a
        // carry; the result must match per-member expectations exactly.
        let mut table = FrameTable::new();
        let barrier = trace(&mut table, &["_start", "main", "MPI_Barrier"]);
        let mut acc = SubtreePrefixTree::new_subtree(0);
        let mut expected: Vec<u64> = Vec::new();
        let mut offset = 0u64;
        for local in [3u64, 70, 64, 129, 1] {
            let mut d = SubtreePrefixTree::new_subtree(local);
            for p in 0..local {
                if p % 3 != 1 {
                    d.add_trace(&barrier, p);
                    expected.push(offset + p);
                }
            }
            acc.merge(d);
            offset += local;
        }
        assert_eq!(acc.width(), offset);
        let leaf = acc.leaves()[0];
        assert_eq!(acc.tasks(leaf).members(), expected);
    }

    #[test]
    fn pathologically_deep_traces_merge_and_remap_iteratively() {
        // 10,000 frames: the old recursive merge/depth/remap would overflow the
        // stack here (especially in debug builds); the worklist versions must not.
        let mut table = FrameTable::new();
        let names: Vec<String> = (0..10_000).map(|i| format!("f{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let deep = trace(&mut table, &name_refs);

        let mut d0 = SubtreePrefixTree::new_subtree(1);
        d0.add_trace(&deep, 0);
        assert_eq!(d0.depth(), 10_000);

        let mut d1 = SubtreePrefixTree::new_subtree(1);
        d1.add_trace(&deep, 0);
        d0.merge(d1);
        assert_eq!(d0.depth(), 10_000);
        assert_eq!(d0.node_count(), 10_001);
        assert_eq!(d0.width(), 2);

        let global = d0.remap(&[1, 0], 2);
        assert_eq!(global.depth(), 10_000);
        let leaf = global.leaves()[0];
        assert_eq!(global.tasks(leaf).members(), vec![0, 1]);
    }

    #[test]
    fn merge_moves_unmatched_subtrees_without_touching_matched_labels() {
        // A tree whose branches are disjoint from the accumulator's: after the
        // merge the grafted branch carries exactly the source's members, and the
        // shared spine carries the union.
        let mut table = FrameTable::new();
        let left = trace(&mut table, &["_start", "main", "left_branch", "leaf_a"]);
        let right = trace(&mut table, &["_start", "main", "right_branch", "leaf_b"]);
        let mut a = GlobalPrefixTree::new_global(16);
        for r in 0..8 {
            a.add_trace(&left, r);
        }
        let mut b = GlobalPrefixTree::new_global(16);
        for r in 8..16 {
            b.add_trace(&right, r);
        }
        a.merge(b);
        assert_eq!(a.tasks(a.root()).count(), 16);
        let leaves = a.leaves();
        assert_eq!(leaves.len(), 2);
        for &leaf in &leaves {
            let members = a.tasks(leaf).members();
            assert!(
                members == (0..8).collect::<Vec<_>>() || members == (8..16).collect::<Vec<_>>()
            );
        }
        // And subsequent inserts through the child index still find every node.
        let mut c = GlobalPrefixTree::new_global(16);
        c.add_trace(&left, 3);
        c.add_trace(&right, 4);
        a.merge(c);
        assert_eq!(a.node_count(), 7); // root, _start, main, 2×(branch, leaf)
    }

    #[test]
    #[should_panic(expected = "different representations")]
    fn mixing_representations_is_rejected() {
        let a = PrefixTree::<DenseBitVector>::new(8, false);
        let mut b = PrefixTree::<DenseBitVector>::new(8, true);
        b.merge(a);
    }
}
