//! The `open()` interposition table.
//!
//! After relocation, the tool daemons must transparently read the RAM-disk copies
//! even though the StackWalker layer still asks for the original paths.  The real
//! SBRS interposes `open()` via symbol wrapping; here the same behaviour is a lookup
//! table that the reproduction's stack-walking layer consults.  The table also counts
//! hits and misses so tests (and the EXPERIMENTS record) can confirm that, once
//! relocation has run, *no* accesses escape to the shared file system.

use std::collections::HashMap;

/// A redirect table from original paths to relocated paths.
#[derive(Clone, Debug, Default)]
pub struct OpenInterposition {
    redirects: HashMap<String, String>,
    hits: u64,
    misses: u64,
}

impl OpenInterposition {
    /// An empty table (no redirects installed).
    pub fn new() -> Self {
        OpenInterposition::default()
    }

    /// Install a redirect from `original` to `relocated`.
    pub fn install(&mut self, original: impl Into<String>, relocated: impl Into<String>) {
        self.redirects.insert(original.into(), relocated.into());
    }

    /// Resolve an `open()` of `path`: returns the relocated path if a redirect is
    /// installed, otherwise the original path unchanged.
    pub fn resolve(&mut self, path: &str) -> String {
        match self.redirects.get(path) {
            Some(target) => {
                self.hits += 1;
                target.clone()
            }
            None => {
                self.misses += 1;
                path.to_string()
            }
        }
    }

    /// Resolve without recording statistics (for read-only queries).
    pub fn peek(&self, path: &str) -> Option<&str> {
        self.redirects.get(path).map(String::as_str)
    }

    /// Number of installed redirects.
    pub fn len(&self) -> usize {
        self.redirects.len()
    }

    /// True if no redirects are installed.
    pub fn is_empty(&self) -> bool {
        self.redirects.is_empty()
    }

    /// Opens that were redirected.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Opens that passed through unchanged.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_redirects_installed_paths() {
        let mut t = OpenInterposition::new();
        t.install("/g/g0/user/ring_test", "/tmp/sbrs/ring_test");
        assert_eq!(t.resolve("/g/g0/user/ring_test"), "/tmp/sbrs/ring_test");
        assert_eq!(t.resolve("/usr/lib64/libc.so.6"), "/usr/lib64/libc.so.6");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn peek_does_not_touch_statistics() {
        let mut t = OpenInterposition::new();
        t.install("/a", "/tmp/a");
        assert_eq!(t.peek("/a"), Some("/tmp/a"));
        assert_eq!(t.peek("/b"), None);
        assert_eq!(t.hits(), 0);
        assert_eq!(t.misses(), 0);
    }

    #[test]
    fn reinstalling_overwrites_the_target() {
        let mut t = OpenInterposition::new();
        t.install("/a", "/tmp/a1");
        t.install("/a", "/tmp/a2");
        assert_eq!(t.len(), 1);
        assert_eq!(t.resolve("/a"), "/tmp/a2");
    }
}
