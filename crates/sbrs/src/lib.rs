//! # sbrs — the Scalable Binary Relocation Service
//!
//! Section VI-B of the paper: symbol-table parsing against shared file systems is
//! what makes STAT's "node-local" sampling phase scale badly, so the authors built a
//! Scalable Binary Relocation Service.  SBRS
//!
//! 1. consults the mounted-file-system table to decide whether a requested binary
//!    lives on a globally shared file system,
//! 2. if so, has one master daemon fetch the binary once and *broadcast* it to every
//!    other daemon over the tool's own communication fabric (LaunchMON's back-end
//!    communication API — the Infiniband fabric on Atlas), each daemon writing its
//!    copy to a node-local RAM disk, and
//! 3. interposes the daemons' `open()` calls so subsequent accesses transparently hit
//!    the relocated copy.
//!
//! The measured overhead in the paper is tiny — 0.088 s to relocate a 10 KB
//! executable and a 4 MB MPI library to 128 nodes — while the payoff is sampling time
//! that stays constant (~2 s) regardless of scale (Figure 10).
//!
//! [`interpose`] implements the redirect table for real; [`relocate`] implements the
//! planning and the broadcast/fetch cost model.

#![warn(rust_2018_idioms)]

pub mod interpose;
pub mod relocate;

pub use interpose::OpenInterposition;
pub use relocate::{RelocationOutcome, RelocationPlan, RelocationService};
