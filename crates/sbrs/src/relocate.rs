//! Relocation planning and the broadcast cost model.
//!
//! SBRS's job splits into a *decision* (which binaries actually need relocating —
//! only those on globally shared file systems) and a *mechanism* (one master daemon
//! fetches each such binary and broadcasts it to the other daemons over the tool's
//! communication fabric, each writing its copy to a node-local RAM disk).
//!
//! The decision and the resulting interposition table are computed for real from the
//! cluster's mount table.  The mechanism's cost is modelled: a fetch of the file from
//! the shared file system by the master daemon, then a binomial-tree broadcast among
//! the daemons over the machine's daemon-to-daemon fabric (LaunchMON's back-end
//! communication runs over Infiniband on Atlas), then a local RAM-disk write.  Before
//! any of that, SBRS stops the application processes (SIGSTOP) and waits a short
//! grace period so the broadcast does not compete with MPI spin-waiting for the
//! cores — that grace period is accounted separately, as the paper reports the
//! relocation cost (0.088 s) without it.

use machine::cluster::Cluster;
use machine::filesystem::{FileAccessKind, FileSystem};
use machine::network::LinkClass;
use simkit::time::SimDuration;
use stackwalk::symtab::BinaryImage;

use crate::interpose::OpenInterposition;

/// The decision of what to relocate.
#[derive(Clone, Debug)]
pub struct RelocationPlan {
    /// Binaries that will be broadcast (they live on shared file systems).
    pub relocate: Vec<BinaryImage>,
    /// Binaries left alone (already node-local).
    pub skip: Vec<BinaryImage>,
    /// RAM-disk directory the copies are written into.
    pub target_dir: String,
}

impl RelocationPlan {
    /// Decide what needs relocating for a working set on a cluster.
    pub fn for_working_set(cluster: &Cluster, working_set: &[BinaryImage]) -> Self {
        let mut relocate = Vec::new();
        let mut skip = Vec::new();
        for img in working_set {
            if cluster.mounts.is_shared(&img.path) {
                relocate.push(img.clone());
            } else {
                skip.push(img.clone());
            }
        }
        RelocationPlan {
            relocate,
            skip,
            target_dir: "/tmp/sbrs".to_string(),
        }
    }

    /// Total bytes that will be broadcast.
    pub fn bytes_to_relocate(&self) -> u64 {
        self.relocate.iter().map(|i| i.bytes).sum()
    }

    /// The relocated path of an original path (whether or not it is in the plan).
    pub fn relocated_path(&self, original: &str) -> String {
        let file = original.rsplit('/').next().unwrap_or(original);
        format!("{}/{}", self.target_dir, file)
    }

    /// Build the interposition table the daemons will install after the broadcast.
    pub fn interposition(&self) -> OpenInterposition {
        let mut table = OpenInterposition::new();
        for img in &self.relocate {
            table.install(img.path.clone(), self.relocated_path(&img.path));
        }
        table
    }
}

/// The modelled outcome of executing a relocation plan.
#[derive(Clone, Debug)]
pub struct RelocationOutcome {
    /// Time for the master daemon to fetch every relocated binary from the shared
    /// file system (one reader, so no server contention).
    pub fetch: SimDuration,
    /// Time for the binomial-tree broadcast to reach every daemon.
    pub broadcast: SimDuration,
    /// Time for each daemon to write its copies to the local RAM disk (parallel
    /// across daemons, so counted once).
    pub local_write: SimDuration,
    /// The SIGSTOP-and-settle grace period paid before relocation begins.
    pub grace_period: SimDuration,
    /// Number of daemons that received the binaries.
    pub daemons: u32,
    /// Bytes broadcast.
    pub bytes: u64,
}

impl RelocationOutcome {
    /// The relocation overhead as the paper reports it (fetch + broadcast + write,
    /// excluding the application-quiescing grace period).
    pub fn relocation_overhead(&self) -> SimDuration {
        self.fetch + self.broadcast + self.local_write
    }

    /// The full wall-clock cost including the grace period.
    pub fn total(&self) -> SimDuration {
        self.relocation_overhead() + self.grace_period
    }
}

/// The relocation service bound to a cluster.
#[derive(Clone, Debug)]
pub struct RelocationService {
    cluster: Cluster,
    /// Grace period given to SIGSTOPped application processes to settle.
    pub grace_period: SimDuration,
}

impl RelocationService {
    /// A service over a cluster with the default grace period.
    pub fn new(cluster: Cluster) -> Self {
        RelocationService {
            cluster,
            grace_period: SimDuration::from_millis(200.0),
        }
    }

    /// The cluster this service runs on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Model the execution of `plan` across `daemons` tool daemons.
    pub fn execute(&self, plan: &RelocationPlan, daemons: u32) -> RelocationOutcome {
        let daemons = daemons.max(1);
        let bytes = plan.bytes_to_relocate();

        // Master daemon fetches each binary once from wherever it lives.
        let mut fetch = SimDuration::ZERO;
        for img in &plan.relocate {
            let fs = FileSystem::of_kind(self.cluster.mounts.filesystem_of(&img.path));
            fetch += fs.server_service_time(FileAccessKind::BulkRead, img.bytes);
        }

        // Binomial-tree broadcast among the daemons over the daemon fabric: each of
        // the ceil(log2(n)) rounds forwards the full payload one hop.
        let rounds = (daemons as f64).log2().ceil().max(0.0) as u64;
        let link: LinkClass = self.cluster.interconnect.daemon_uplink();
        let per_round = self.cluster.interconnect.transfer(link, bytes);
        let broadcast = per_round * rounds;

        // Each daemon writes its copies to the node-local RAM disk in parallel.
        let ram = FileSystem::ramdisk();
        let local_write: SimDuration = plan
            .relocate
            .iter()
            .map(|img| ram.server_service_time(FileAccessKind::BulkRead, img.bytes))
            .sum();

        RelocationOutcome {
            fetch,
            broadcast,
            local_write,
            grace_period: self.grace_period,
            daemons,
            bytes,
        }
    }

    /// Convenience: plan and execute for the cluster's own binary working set.
    pub fn relocate_working_set(&self, daemons: u32) -> (RelocationPlan, RelocationOutcome) {
        let working_set = stackwalk::symtab::working_set_of(&self.cluster);
        let plan = RelocationPlan::for_working_set(&self.cluster, &working_set);
        let outcome = self.execute(&plan, daemons);
        (plan, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::BglMode;

    #[test]
    fn plan_only_relocates_shared_binaries() {
        let atlas = Cluster::atlas();
        let ws = stackwalk::symtab::working_set_of(&atlas);
        let plan = RelocationPlan::for_working_set(&atlas, &ws);
        assert!(!plan.relocate.is_empty());
        assert!(!plan.skip.is_empty(), "system libraries stay local");
        for img in &plan.relocate {
            assert!(atlas.mounts.is_shared(&img.path));
        }
        for img in &plan.skip {
            assert!(!atlas.mounts.is_shared(&img.path));
        }
    }

    #[test]
    fn interposition_covers_exactly_the_relocated_set() {
        let atlas = Cluster::atlas();
        let ws = stackwalk::symtab::working_set_of(&atlas);
        let plan = RelocationPlan::for_working_set(&atlas, &ws);
        let mut table = plan.interposition();
        assert_eq!(table.len(), plan.relocate.len());
        let original = &plan.relocate[0].path;
        let resolved = table.resolve(original).to_string();
        assert!(resolved.starts_with("/tmp/sbrs/"));
        assert!(
            !atlas.mounts.is_shared(&resolved),
            "redirect target is local"
        );
    }

    #[test]
    fn paper_calibration_point_088_seconds() {
        // "taking 0.088 seconds to relocate two main binary files, the base executable
        // (10KB) and the MPI library (4MB), to 128 nodes."
        let atlas = Cluster::atlas();
        let service = RelocationService::new(atlas.clone());
        let two_files = vec![
            BinaryImage::new("/g/g0/user/ring_test", 10 * 1024),
            BinaryImage::new("/g/g0/user/lib/libmpi.so", 4 * 1024 * 1024),
        ];
        let plan = RelocationPlan::for_working_set(&atlas, &two_files);
        let outcome = service.execute(&plan, 128);
        let secs = outcome.relocation_overhead().as_secs();
        assert!((0.03..0.3).contains(&secs), "expected ~0.088 s, got {secs}");
        assert_eq!(outcome.bytes, 10 * 1024 + 4 * 1024 * 1024);
    }

    #[test]
    fn broadcast_grows_logarithmically_with_daemons() {
        let atlas = Cluster::atlas();
        let service = RelocationService::new(atlas.clone());
        let ws = stackwalk::symtab::working_set_of(&atlas);
        let plan = RelocationPlan::for_working_set(&atlas, &ws);
        let d128 = service.execute(&plan, 128).broadcast.as_secs();
        let d1024 = service.execute(&plan, 1_024).broadcast.as_secs();
        let growth = d1024 / d128;
        assert!(growth < 2.0, "log growth expected, got {growth}");
    }

    #[test]
    fn relocation_is_much_cheaper_than_what_it_saves() {
        // The service only makes sense if its one-time cost is far below the per-run
        // NFS contention it removes; check the orders of magnitude line up.
        use stackwalk::sampler::{BinaryPlacement, SamplingCostModel};
        let atlas = Cluster::atlas();
        let service = RelocationService::new(atlas.clone());
        let (_, outcome) = service.relocate_working_set(512);
        let sampling = SamplingCostModel::new(atlas);
        let nfs = sampling.estimate(4_096, BinaryPlacement::NfsHome, 1);
        let relocated = sampling.estimate(4_096, BinaryPlacement::RelocatedRamDisk, 1);
        let saved = nfs.total.as_secs() - relocated.total.as_secs();
        assert!(outcome.total().as_secs() < saved / 5.0);
    }

    #[test]
    fn bgl_static_binary_is_the_whole_plan() {
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let ws = stackwalk::symtab::working_set_of(&bgl);
        let plan = RelocationPlan::for_working_set(&bgl, &ws);
        assert_eq!(plan.relocate.len(), 1);
        assert!(plan.skip.is_empty());
    }
}
