//! Node inventory.
//!
//! A [`Node`] is the unit of placement for daemons, communication processes and
//! application tasks.  We keep nodes as plain data — class, core count, clock — and
//! give them stable integer identities so that mappings (task → node, daemon → node)
//! are cheap dense vectors rather than hash maps, which matters when we instantiate
//! the full 106,496-node BG/L inventory.

use std::fmt;

/// Stable identity of a node within one [`crate::cluster::Cluster`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The role a node plays in the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Runs application (MPI) tasks.  On Atlas, tool daemons also run here.
    Compute,
    /// BG/L-style dedicated I/O node: runs CIOD and tool daemons, never app tasks.
    Io,
    /// Login/front-end node: the only place BG/L lets us put MRNet communication
    /// processes; also where the STAT front end itself runs.
    Login,
    /// A service node running the resource manager's central daemons.
    Service,
}

impl NodeClass {
    /// Whether application tasks may be scheduled on this node class.
    pub fn runs_app_tasks(self) -> bool {
        matches!(self, NodeClass::Compute)
    }

    /// Whether tool daemons may be scheduled on this node class for the given machine
    /// style.  On clusters the daemons share compute nodes with the application; on
    /// BG/L they are restricted to I/O nodes.
    pub fn runs_tool_daemons(self, daemons_on_io_nodes: bool) -> bool {
        if daemons_on_io_nodes {
            matches!(self, NodeClass::Io)
        } else {
            matches!(self, NodeClass::Compute)
        }
    }
}

impl fmt::Display for NodeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeClass::Compute => "compute",
            NodeClass::Io => "io",
            NodeClass::Login => "login",
            NodeClass::Service => "service",
        };
        f.write_str(s)
    }
}

/// One node of the machine.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Stable identity.
    pub id: NodeId,
    /// Role.
    pub class: NodeClass,
    /// Number of cores available for scheduling.
    pub cores: u16,
    /// Clock speed in GHz; used only for relative cost scaling between node classes
    /// (e.g. a 700 MHz PowerPC 440 I/O node vs. a 2.4 GHz Opteron).
    pub clock_ghz: f64,
    /// Memory per node in MiB; the BG/L compute nodes' 512 MiB is part of why the
    /// paper worries about fixed-size global bit vectors.
    pub memory_mib: u32,
}

impl Node {
    /// Construct a node.
    pub fn new(id: u32, class: NodeClass, cores: u16, clock_ghz: f64, memory_mib: u32) -> Self {
        Node {
            id: NodeId(id),
            class,
            cores,
            clock_ghz,
            memory_mib,
        }
    }

    /// Relative slowdown of this node compared to a 2.4 GHz reference core.
    /// Cost models expressed in "reference seconds" multiply by this factor.
    pub fn slowdown_factor(&self) -> f64 {
        if self.clock_ghz <= 0.0 {
            1.0
        } else {
            (2.4 / self.clock_ghz).max(0.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_class_placement_rules() {
        assert!(NodeClass::Compute.runs_app_tasks());
        assert!(!NodeClass::Io.runs_app_tasks());
        assert!(!NodeClass::Login.runs_app_tasks());

        // Cluster style: daemons co-located with app tasks on compute nodes.
        assert!(NodeClass::Compute.runs_tool_daemons(false));
        assert!(!NodeClass::Io.runs_tool_daemons(false));
        // BG/L style: daemons restricted to I/O nodes.
        assert!(NodeClass::Io.runs_tool_daemons(true));
        assert!(!NodeClass::Compute.runs_tool_daemons(true));
    }

    #[test]
    fn slowdown_factor_scales_with_clock() {
        let opteron = Node::new(0, NodeClass::Compute, 8, 2.4, 16_384);
        let ppc440 = Node::new(1, NodeClass::Io, 2, 0.7, 512);
        assert!((opteron.slowdown_factor() - 1.0).abs() < 1e-9);
        assert!(ppc440.slowdown_factor() > 3.0);
        let degenerate = Node::new(2, NodeClass::Compute, 1, 0.0, 1);
        assert_eq!(degenerate.slowdown_factor(), 1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(17)), "node17");
        assert_eq!(format!("{}", NodeClass::Login), "login");
    }
}
