//! # machine — platform models for the STAT reproduction
//!
//! The paper evaluates STAT on two machines:
//!
//! * **Atlas** — an 1,152-node Linux cluster at LLNL.  Each node has four dual-core
//!   2.4 GHz Opterons (8 cores), nodes are connected with DDR Infiniband, and home
//!   directories live on NFS (with a Lustre scratch file system also available).
//!   One STAT daemon runs per compute node and debugs the 8 MPI tasks on that node.
//!   MRNet communication processes get their own allocation of compute nodes.
//!
//! * **BlueGene/L** — the 104-rack LLNL installation: 106,496 compute nodes (dual
//!   700 MHz PowerPC 440), one dedicated I/O node per 64 compute nodes (1,664 I/O
//!   nodes total), and 14 login nodes (2× 1.6 GHz Power5 each).  Tool daemons must run
//!   on the I/O nodes; in *co-processor* mode a daemon serves 64 MPI tasks, in
//!   *virtual node* mode 128.  Communication processes can only be placed on the login
//!   nodes, which caps usable TBON fan-in.
//!
//! This crate models both machines as data — node inventories, placement rules,
//! network links and shared-file-system queueing servers — so that the launcher,
//! sampler and TBON models in the other crates can be written once and parameterised
//! by a [`cluster::Cluster`] value.  Nothing here executes "for real": the real
//! algorithmic work (prefix trees, task sets, filters) lives in `stat-core`.

#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod filesystem;
pub mod network;
pub mod node;
pub mod placement;

pub use cluster::{BglMode, Cluster, ClusterKind};
pub use filesystem::{FileAccessKind, FileSystem, FileSystemKind, MountTable};
pub use network::{Interconnect, LinkClass};
pub use node::{Node, NodeClass, NodeId};
pub use placement::{CommProcessBudget, PlacementPlan};
