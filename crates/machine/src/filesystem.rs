//! File-system models.
//!
//! Section VI of the paper traces STAT's poor stack-sampling scalability to an
//! environment interaction: every daemon independently parses the symbol tables of the
//! application binary and its shared libraries, and those files live on a *shared*
//! file system (NFS home directories, or Lustre scratch).  With no coordination, all
//! daemons hit the file server at once, so the nominally node-local sampling step
//! serializes behind the server.
//!
//! We model a file system as a queueing server (a [`simkit::resource::Resource`] with
//! a small number of slots) plus per-access service-time formulas.  The crucial
//! distinction the paper exploits — and that SBRS removes — is between *shared* file
//! systems, where every daemon's accesses meet at the same server, and *node-local*
//! storage (RAM disk), where each daemon has its own private "server" and accesses are
//! embarrassingly parallel.

use simkit::prelude::*;

/// The flavours of file system that appear in the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FileSystemKind {
    /// An NFS-exported home directory: a single server, modest bandwidth, expensive
    /// metadata operations.  The default location users stage executables (the paper
    /// notes "following the common practice of our users").
    Nfs,
    /// A Lustre parallel file system: several object servers, better bandwidth, but
    /// metadata still funnels through one metadata server — which is why the paper
    /// found "LUSTRE offers little improvement over NFS" for symbol-table parsing at
    /// these scales.
    Lustre,
    /// Node-local RAM disk: the SBRS relocation target.  No shared server at all.
    RamDisk,
    /// Node-local disk (used for OS images and, after the OS update the paper
    /// mentions, some system shared libraries).
    LocalDisk,
}

impl FileSystemKind {
    /// Whether accesses from different nodes contend at a shared server.
    pub fn is_shared(self) -> bool {
        matches!(self, FileSystemKind::Nfs | FileSystemKind::Lustre)
    }

    /// Short label used in mount tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            FileSystemKind::Nfs => "nfs",
            FileSystemKind::Lustre => "lustre",
            FileSystemKind::RamDisk => "ramdisk",
            FileSystemKind::LocalDisk => "localdisk",
        }
    }
}

/// The kind of access a tool performs against a binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileAccessKind {
    /// `open()` + `stat()`-style metadata traffic.
    Metadata,
    /// Reading and parsing a symbol table of a given size.
    SymbolTableParse,
    /// Bulk sequential read (SBRS fetching the whole binary once).
    BulkRead,
}

/// A file system with calibrated service times.
#[derive(Clone, Debug)]
pub struct FileSystem {
    /// Which flavour this is.
    pub kind: FileSystemKind,
    /// Number of requests the server(s) can process concurrently.  NFS: 1–4 service
    /// threads effectively; Lustre: one per OST for data but 1 metadata server;
    /// node-local storage: effectively unlimited (modelled per-client).
    pub server_slots: usize,
    /// Service time for one metadata operation at the server.
    pub metadata_op: SimDuration,
    /// Sustained read bandwidth of one server slot, bytes/second.
    pub read_bytes_per_sec: f64,
    /// Effective bandwidth for the small, scattered reads symbol-table parsing
    /// performs.  Striped parallel file systems barely help here, which is why the
    /// paper found Lustre "offers little improvement over NFS" for sampling.
    pub scattered_read_bytes_per_sec: f64,
    /// Fixed per-file parse overhead on the *client* (CPU work, not server time).
    pub client_parse_overhead: SimDuration,
}

impl FileSystem {
    /// NFS home-directory model.  Calibrated so that ~500 daemons simultaneously
    /// parsing a multi-megabyte symbol-table working set produce the tens-of-seconds
    /// sampling times of Figure 8.
    pub fn nfs() -> Self {
        FileSystem {
            kind: FileSystemKind::Nfs,
            server_slots: 1,
            metadata_op: SimDuration::from_millis(1.2),
            read_bytes_per_sec: 90.0e6,
            scattered_read_bytes_per_sec: 90.0e6,
            client_parse_overhead: SimDuration::from_millis(40.0),
        }
    }

    /// Lustre scratch model: more data servers, but metadata operations still meet at
    /// a single metadata server, so symbol-table parsing (metadata- and small-read-
    /// heavy) barely improves — matching the paper's Figure 10 observation.
    pub fn lustre() -> Self {
        FileSystem {
            kind: FileSystemKind::Lustre,
            server_slots: 4,
            metadata_op: SimDuration::from_millis(2.3),
            read_bytes_per_sec: 350.0e6,
            scattered_read_bytes_per_sec: 110.0e6,
            client_parse_overhead: SimDuration::from_millis(40.0),
        }
    }

    /// Node-local RAM disk (the SBRS relocation target).
    pub fn ramdisk() -> Self {
        FileSystem {
            kind: FileSystemKind::RamDisk,
            server_slots: usize::MAX,
            metadata_op: SimDuration::from_micros(3.0),
            read_bytes_per_sec: 2.5e9,
            scattered_read_bytes_per_sec: 2.0e9,
            client_parse_overhead: SimDuration::from_millis(40.0),
        }
    }

    /// Node-local disk.
    pub fn local_disk() -> Self {
        FileSystem {
            kind: FileSystemKind::LocalDisk,
            server_slots: usize::MAX,
            metadata_op: SimDuration::from_micros(80.0),
            read_bytes_per_sec: 60.0e6,
            scattered_read_bytes_per_sec: 45.0e6,
            client_parse_overhead: SimDuration::from_millis(40.0),
        }
    }

    /// Construct the file system model for a kind.
    pub fn of_kind(kind: FileSystemKind) -> Self {
        match kind {
            FileSystemKind::Nfs => FileSystem::nfs(),
            FileSystemKind::Lustre => FileSystem::lustre(),
            FileSystemKind::RamDisk => FileSystem::ramdisk(),
            FileSystemKind::LocalDisk => FileSystem::local_disk(),
        }
    }

    /// Server-side service time of one access.  This is the amount of time the access
    /// occupies a server slot; queueing on top of it is the simulator's job.
    pub fn server_service_time(&self, access: FileAccessKind, bytes: u64) -> SimDuration {
        match access {
            FileAccessKind::Metadata => self.metadata_op,
            FileAccessKind::SymbolTableParse => {
                // Parsing a symbol table touches the string and symbol sections
                // scattered through the file; we charge the server for reading roughly
                // the whole file at the scattered-read rate plus a handful of metadata
                // round trips.
                let read = SimDuration::from_secs(bytes as f64 / self.scattered_read_bytes_per_sec);
                self.metadata_op * 4 + read
            }
            FileAccessKind::BulkRead => {
                let read = SimDuration::from_secs(bytes as f64 / self.read_bytes_per_sec);
                self.metadata_op + read
            }
        }
    }

    /// Client-side CPU time of one access (does not contend at the server).
    pub fn client_service_time(&self, access: FileAccessKind, bytes: u64) -> SimDuration {
        match access {
            FileAccessKind::Metadata => SimDuration::from_micros(5.0),
            FileAccessKind::SymbolTableParse => {
                // Building the in-memory symbol lookup structures scales with file
                // size but is pure local CPU work.
                self.client_parse_overhead + SimDuration::from_secs(bytes as f64 / 400.0e6)
            }
            FileAccessKind::BulkRead => SimDuration::from_secs(bytes as f64 / 2.0e9),
        }
    }

    /// Build the queueing resource representing this file system's server(s).
    /// For node-local storage the notion of a shared server does not apply; callers
    /// should check [`FileSystemKind::is_shared`] first, but we still return a very
    /// wide resource so that accidental use degrades gracefully.
    pub fn server_resource(&self) -> Resource {
        let slots = if self.kind.is_shared() {
            self.server_slots
        } else {
            1_000_000
        };
        Resource::fifo(self.kind.label(), slots)
    }
}

/// A mounted-file-system table: which file system a given path lives on.
///
/// SBRS consults exactly this (the real implementation reads `/etc/mtab`) to decide
/// whether a binary needs to be relocated: only files on *shared* file systems are
/// broadcast to RAM disks.
#[derive(Clone, Debug, Default)]
pub struct MountTable {
    mounts: Vec<(String, FileSystemKind)>,
}

impl MountTable {
    /// An empty table (everything defaults to node-local disk).
    pub fn new() -> Self {
        MountTable { mounts: Vec::new() }
    }

    /// The default LLNL-style layout used by both machines in the paper: NFS home
    /// directories, Lustre scratch, a tmpfs RAM disk and a local OS image.
    pub fn llnl_default() -> Self {
        let mut t = MountTable::new();
        t.add("/g/g0", FileSystemKind::Nfs); // home directories
        t.add("/nfs", FileSystemKind::Nfs);
        t.add("/p/lscratch", FileSystemKind::Lustre);
        t.add("/tmp", FileSystemKind::RamDisk);
        t.add("/dev/shm", FileSystemKind::RamDisk);
        t.add("/usr", FileSystemKind::LocalDisk);
        t.add("/lib", FileSystemKind::LocalDisk);
        t
    }

    /// Register a mount point.  Longest-prefix match wins on lookup.
    pub fn add(&mut self, prefix: impl Into<String>, kind: FileSystemKind) {
        self.mounts.push((prefix.into(), kind));
        // Keep longest prefixes first so lookup can take the first match.
        self.mounts
            .sort_by_key(|(prefix, _)| std::cmp::Reverse(prefix.len()));
    }

    /// The file system a path resides on (node-local disk if no mount matches).
    pub fn filesystem_of(&self, path: &str) -> FileSystemKind {
        for (prefix, kind) in &self.mounts {
            if path.starts_with(prefix.as_str()) {
                return *kind;
            }
        }
        FileSystemKind::LocalDisk
    }

    /// Whether the path lives on a globally shared file system (and therefore needs
    /// relocation before a massively parallel tool can touch it safely).
    pub fn is_shared(&self, path: &str) -> bool {
        self.filesystem_of(path).is_shared()
    }

    /// All registered mount points (longest prefix first).
    pub fn mounts(&self) -> &[(String, FileSystemKind)] {
        &self.mounts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_classification() {
        assert!(FileSystemKind::Nfs.is_shared());
        assert!(FileSystemKind::Lustre.is_shared());
        assert!(!FileSystemKind::RamDisk.is_shared());
        assert!(!FileSystemKind::LocalDisk.is_shared());
    }

    #[test]
    fn ramdisk_is_much_faster_than_nfs_for_parsing() {
        let nfs = FileSystem::nfs();
        let ram = FileSystem::ramdisk();
        let four_mb = 4 << 20;
        let nfs_t = nfs.server_service_time(FileAccessKind::SymbolTableParse, four_mb);
        let ram_t = ram.server_service_time(FileAccessKind::SymbolTableParse, four_mb);
        assert!(nfs_t.as_secs() > 10.0 * ram_t.as_secs());
    }

    #[test]
    fn lustre_is_better_for_bulk_reads_but_not_metadata() {
        let nfs = FileSystem::nfs();
        let lustre = FileSystem::lustre();
        let big = 512 << 20;
        assert!(
            lustre.server_service_time(FileAccessKind::BulkRead, big)
                < nfs.server_service_time(FileAccessKind::BulkRead, big)
        );
        // Metadata ops are comparable: within a factor of 2.
        let nfs_md = nfs
            .server_service_time(FileAccessKind::Metadata, 0)
            .as_secs();
        let lus_md = lustre
            .server_service_time(FileAccessKind::Metadata, 0)
            .as_secs();
        assert!(lus_md > nfs_md * 0.5 && lus_md < nfs_md * 2.0);
    }

    #[test]
    fn client_parse_time_is_independent_of_filesystem() {
        let nfs = FileSystem::nfs();
        let ram = FileSystem::ramdisk();
        let b = 1 << 20;
        assert_eq!(
            nfs.client_service_time(FileAccessKind::SymbolTableParse, b),
            ram.client_service_time(FileAccessKind::SymbolTableParse, b)
        );
    }

    #[test]
    fn mount_table_longest_prefix_wins() {
        let mut t = MountTable::new();
        t.add("/g", FileSystemKind::LocalDisk);
        t.add("/g/g0", FileSystemKind::Nfs);
        assert_eq!(t.filesystem_of("/g/g0/user/a.out"), FileSystemKind::Nfs);
        assert_eq!(t.filesystem_of("/g/other"), FileSystemKind::LocalDisk);
        assert_eq!(t.filesystem_of("/unmounted"), FileSystemKind::LocalDisk);
    }

    #[test]
    fn llnl_default_classifies_typical_paths() {
        let t = MountTable::llnl_default();
        assert!(t.is_shared("/g/g0/lee218/ring_test"));
        assert!(t.is_shared("/p/lscratchb/run/app"));
        assert!(!t.is_shared("/tmp/stat/relocated/ring_test"));
        assert!(!t.is_shared("/usr/lib64/libmpi.so"));
    }

    #[test]
    fn server_resource_width_matches_sharing() {
        let nfs = FileSystem::nfs().server_resource();
        assert_eq!(nfs.slots, 1);
        let ram = FileSystem::ramdisk().server_resource();
        assert!(ram.slots > 1000);
    }
}
