//! Interconnect models.
//!
//! The TBON cost model and the SBRS broadcast need per-message transfer times.  We
//! model each machine's interconnect as a small set of link classes with a latency
//! and a bandwidth each; a transfer of `b` bytes over a link costs
//! `latency + b / bandwidth`.  The constants are order-of-magnitude values for the
//! 2008-era hardware the paper used (DDR Infiniband on Atlas; the BG/L collective
//! tree and the gigabit functional network to the I/O and login nodes).

use simkit::model::BandwidthCost;
use simkit::time::SimDuration;

/// The kinds of links a message can traverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Atlas compute-to-compute DDR Infiniband (≈1.5 µs, ≈1.5 GB/s effective).
    InfinibandDdr,
    /// BG/L compute-node collective/tree network (low latency, moderate bandwidth).
    BglCollective,
    /// BG/L functional gigabit Ethernet between I/O nodes and the outside world.
    BglFunctional,
    /// Login-node to front-end / site Ethernet.
    Ethernet1G,
    /// Loopback within a node (daemon talking to co-located tasks).
    Local,
}

/// The interconnect of a machine: a transfer-cost model per link class.
#[derive(Clone, Debug)]
pub struct Interconnect {
    name: &'static str,
    infiniband: BandwidthCost,
    bgl_collective: BandwidthCost,
    bgl_functional: BandwidthCost,
    ethernet: BandwidthCost,
    local: BandwidthCost,
}

impl Interconnect {
    /// The Atlas interconnect: DDR Infiniband everywhere, Ethernet to the front end.
    pub fn atlas() -> Self {
        Interconnect {
            name: "atlas",
            infiniband: BandwidthCost {
                latency: SimDuration::from_micros(1.5),
                bytes_per_sec: 1.5e9,
            },
            // Atlas has no BG/L networks; route those classes over Infiniband too so a
            // mis-specified link class degrades gracefully instead of panicking.
            bgl_collective: BandwidthCost {
                latency: SimDuration::from_micros(1.5),
                bytes_per_sec: 1.5e9,
            },
            bgl_functional: BandwidthCost {
                latency: SimDuration::from_micros(1.5),
                bytes_per_sec: 1.5e9,
            },
            ethernet: BandwidthCost {
                latency: SimDuration::from_micros(50.0),
                bytes_per_sec: 110.0e6,
            },
            local: BandwidthCost {
                latency: SimDuration::from_micros(0.3),
                bytes_per_sec: 4.0e9,
            },
        }
    }

    /// The BG/L interconnect: collective tree between compute nodes, gigabit
    /// functional network from I/O nodes to login nodes, Ethernet beyond.
    pub fn bluegene_l() -> Self {
        Interconnect {
            name: "bgl",
            infiniband: BandwidthCost {
                latency: SimDuration::from_micros(2.5),
                bytes_per_sec: 350.0e6,
            },
            bgl_collective: BandwidthCost {
                latency: SimDuration::from_micros(2.5),
                bytes_per_sec: 350.0e6,
            },
            bgl_functional: BandwidthCost {
                latency: SimDuration::from_micros(65.0),
                bytes_per_sec: 100.0e6,
            },
            ethernet: BandwidthCost {
                latency: SimDuration::from_micros(80.0),
                bytes_per_sec: 100.0e6,
            },
            local: BandwidthCost {
                latency: SimDuration::from_micros(0.5),
                bytes_per_sec: 2.0e9,
            },
        }
    }

    /// Machine name the interconnect belongs to.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The transfer-cost model for a link class.
    pub fn link(&self, class: LinkClass) -> BandwidthCost {
        match class {
            LinkClass::InfinibandDdr => self.infiniband,
            LinkClass::BglCollective => self.bgl_collective,
            LinkClass::BglFunctional => self.bgl_functional,
            LinkClass::Ethernet1G => self.ethernet,
            LinkClass::Local => self.local,
        }
    }

    /// Time to move `bytes` over one hop of `class`.
    pub fn transfer(&self, class: LinkClass, bytes: u64) -> SimDuration {
        self.link(class).transfer(bytes)
    }

    /// The link class connecting a tool daemon to its parent communication process.
    /// On Atlas that is Infiniband; on BG/L the daemon sits on an I/O node and talks
    /// to login nodes over the functional network.
    pub fn daemon_uplink(&self) -> LinkClass {
        if self.name == "bgl" {
            LinkClass::BglFunctional
        } else {
            LinkClass::InfinibandDdr
        }
    }

    /// The link class connecting communication processes to the tool front end.
    pub fn frontend_uplink(&self) -> LinkClass {
        LinkClass::Ethernet1G
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_infiniband_is_faster_than_ethernet() {
        let net = Interconnect::atlas();
        let ib = net.transfer(LinkClass::InfinibandDdr, 1 << 20);
        let eth = net.transfer(LinkClass::Ethernet1G, 1 << 20);
        assert!(ib < eth, "ib={ib} eth={eth}");
    }

    #[test]
    fn bgl_functional_network_is_the_daemon_uplink() {
        let net = Interconnect::bluegene_l();
        assert_eq!(net.daemon_uplink(), LinkClass::BglFunctional);
        let atlas = Interconnect::atlas();
        assert_eq!(atlas.daemon_uplink(), LinkClass::InfinibandDdr);
    }

    #[test]
    fn transfer_time_grows_with_message_size() {
        let net = Interconnect::bluegene_l();
        let small = net.transfer(LinkClass::BglFunctional, 1_000);
        let big = net.transfer(LinkClass::BglFunctional, 10_000_000);
        assert!(big > small * 10);
    }

    #[test]
    fn local_link_is_cheapest() {
        let net = Interconnect::atlas();
        for class in [
            LinkClass::InfinibandDdr,
            LinkClass::Ethernet1G,
            LinkClass::BglFunctional,
        ] {
            assert!(net.transfer(LinkClass::Local, 4096) <= net.transfer(class, 4096));
        }
    }
}
