//! Placement constraints for tool processes.
//!
//! The paper's topology choices were not free: on BG/L, MRNet communication processes
//! can only run on the 14 login nodes (2 processors each), which "restricts the
//! topologies that we can use" (Section III).  On Atlas, communication processes get a
//! separate allocation of compute nodes, one process per core.  This module captures
//! those budgets so the TBON topology builder can refuse (or clamp) configurations the
//! real machines could not have run, and so the figure generators can annotate where a
//! restriction bit.

use crate::cluster::{Cluster, ClusterKind};

/// How many communication processes a machine can host, and where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommProcessBudget {
    /// Maximum number of communication processes that can exist at once.
    pub max_processes: u32,
    /// Maximum processes per hosting node (caps how much fan-in a single node's
    /// processes can absorb before they start competing for cores).
    pub per_node: u32,
    /// Number of distinct nodes available for hosting.
    pub nodes: u32,
}

impl CommProcessBudget {
    /// The budget for a given cluster.
    pub fn for_cluster(cluster: &Cluster) -> Self {
        match cluster.kind {
            ClusterKind::LinuxCluster => {
                // A dedicated allocation of compute nodes, one comm process per core.
                // We allow up to 1/8th of the machine to be used for tool processes.
                let nodes = (cluster.compute_nodes / 8).max(1);
                CommProcessBudget {
                    max_processes: nodes * cluster.cores_per_compute as u32,
                    per_node: cluster.cores_per_compute as u32,
                    nodes,
                }
            }
            ClusterKind::BlueGeneL { .. } => CommProcessBudget {
                // 14 login nodes × 2 processors each = 28 usable comm processes; the
                // paper's 2-deep fanout cap of "sqrt(n) or 28, whichever is less"
                // comes directly from this.
                max_processes: cluster.login_nodes * cluster.cores_per_login as u32,
                per_node: cluster.cores_per_login as u32,
                nodes: cluster.login_nodes,
            },
        }
    }

    /// Clamp a requested number of communication processes to the budget.
    pub fn clamp(&self, requested: u32) -> u32 {
        requested.min(self.max_processes)
    }

    /// Whether the machine can host the requested number of communication processes.
    pub fn can_host(&self, requested: u32) -> bool {
        requested <= self.max_processes
    }
}

/// A resolved placement of tool processes for one job: which hosts run daemons, how
/// many communication processes are available, and where the front end sits.
#[derive(Clone, Debug)]
pub struct PlacementPlan {
    /// Number of back-end daemons.
    pub daemons: u32,
    /// Tasks each daemon serves (the last daemon may serve fewer).
    pub tasks_per_daemon: u32,
    /// Communication-process budget for intermediate TBON levels.
    pub comm_budget: CommProcessBudget,
    /// Whether daemons run on dedicated I/O nodes.
    pub daemons_on_io_nodes: bool,
}

impl PlacementPlan {
    /// Compute the placement for a job of `tasks` MPI tasks on `cluster`.
    pub fn for_job(cluster: &Cluster, tasks: u64) -> Self {
        let shape = cluster.job(tasks);
        PlacementPlan {
            daemons: shape.daemons,
            tasks_per_daemon: shape.tasks_per_daemon,
            comm_budget: CommProcessBudget::for_cluster(cluster),
            daemons_on_io_nodes: cluster.daemons_on_io_nodes(),
        }
    }

    /// The fan-out from the front end used by the paper for a 2-deep tree:
    /// `min(sqrt(daemons), 28)` on BG/L, `sqrt(daemons)` elsewhere, at least 1.
    pub fn two_deep_fanout(&self) -> u32 {
        let sqrt = (self.daemons as f64).sqrt().ceil() as u32;
        let capped = sqrt.min(self.comm_budget.max_processes);
        capped.max(1)
    }

    /// The second-level width used by the paper for a 3-deep tree: the front end uses
    /// a fan-out of 4, and the next level employs 16 or 24 communication processes
    /// depending on job scale.
    pub fn three_deep_level_widths(&self) -> (u32, u32) {
        let first = 4u32;
        let second = if self.daemons >= 1_024 { 24 } else { 16 };
        (first, second.min(self.comm_budget.max_processes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::BglMode;

    #[test]
    fn bgl_budget_is_28_comm_processes() {
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let budget = CommProcessBudget::for_cluster(&bgl);
        assert_eq!(budget.max_processes, 28);
        assert_eq!(budget.nodes, 14);
        assert!(budget.can_host(28));
        assert!(!budget.can_host(29));
        assert_eq!(budget.clamp(100), 28);
    }

    #[test]
    fn atlas_budget_scales_with_machine_size() {
        let atlas = Cluster::atlas();
        let budget = CommProcessBudget::for_cluster(&atlas);
        assert!(budget.max_processes >= 512);
        assert_eq!(budget.per_node, 8);
    }

    #[test]
    fn two_deep_fanout_follows_the_paper_rule() {
        // Atlas at 512 daemons: sqrt(512) ≈ 23 → fanout 23 (budget is not binding).
        let atlas = Cluster::atlas();
        let plan = PlacementPlan::for_job(&atlas, 4_096);
        assert_eq!(plan.daemons, 512);
        assert_eq!(plan.two_deep_fanout(), 23);

        // BG/L at 1,664 daemons: sqrt ≈ 41 but capped to 28 by the login nodes.
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let plan = PlacementPlan::for_job(&bgl, 212_992);
        assert_eq!(plan.daemons, 1_664);
        assert_eq!(plan.two_deep_fanout(), 28);
    }

    #[test]
    fn three_deep_widths_switch_at_scale() {
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let small = PlacementPlan::for_job(&bgl, 16_384);
        assert_eq!(small.three_deep_level_widths(), (4, 16));
        let large = PlacementPlan::for_job(&bgl, 106_496);
        assert_eq!(large.three_deep_level_widths(), (4, 24));
    }

    #[test]
    fn placement_tracks_daemon_location() {
        let atlas = PlacementPlan::for_job(&Cluster::atlas(), 64);
        assert!(!atlas.daemons_on_io_nodes);
        let bgl = PlacementPlan::for_job(&Cluster::bluegene_l(BglMode::CoProcessor), 64);
        assert!(bgl.daemons_on_io_nodes);
    }
}
