//! Placement constraints for tool processes.
//!
//! The paper's topology choices were not free: on BG/L, MRNet communication processes
//! can only run on the 14 login nodes (2 processors each), which "restricts the
//! topologies that we can use" (Section III).  On Atlas, communication processes get a
//! separate allocation of compute nodes, one process per core.  This module captures
//! those budgets so the TBON topology builder can refuse (or clamp) configurations the
//! real machines could not have run, and so the figure generators can annotate where a
//! restriction bit.

use crate::cluster::{Cluster, ClusterKind};

/// How many communication processes a machine can host, and where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommProcessBudget {
    /// Maximum number of communication processes that can exist at once.
    pub max_processes: u32,
    /// Maximum processes per hosting node (caps how much fan-in a single node's
    /// processes can absorb before they start competing for cores).
    pub per_node: u32,
    /// Number of distinct nodes available for hosting.
    pub nodes: u32,
}

impl CommProcessBudget {
    /// The budget for a given cluster.
    pub fn for_cluster(cluster: &Cluster) -> Self {
        match cluster.kind {
            ClusterKind::LinuxCluster => {
                // A dedicated allocation of compute nodes, one comm process per core.
                // We allow up to 1/8th of the machine to be used for tool processes.
                let nodes = (cluster.compute_nodes / 8).max(1);
                CommProcessBudget {
                    max_processes: nodes * cluster.cores_per_compute as u32,
                    per_node: cluster.cores_per_compute as u32,
                    nodes,
                }
            }
            ClusterKind::BlueGeneL { .. } => CommProcessBudget {
                // 14 login nodes × 2 processors each = 28 usable comm processes; the
                // paper's 2-deep fanout cap of "sqrt(n) or 28, whichever is less"
                // comes directly from this.
                max_processes: cluster.login_nodes * cluster.cores_per_login as u32,
                per_node: cluster.cores_per_login as u32,
                nodes: cluster.login_nodes,
            },
        }
    }

    /// Clamp a requested number of communication processes to the budget.
    pub fn clamp(&self, requested: u32) -> u32 {
        requested.min(self.max_processes)
    }

    /// Whether the machine can host the requested number of communication processes.
    pub fn can_host(&self, requested: u32) -> bool {
        requested <= self.max_processes
    }

    /// The budget of a machine of the same family grown by `factor` — used when
    /// planning topologies for job sizes beyond what the physical machine holds
    /// (the paper's "towards millions of cores" extrapolation): hosting nodes and
    /// the process ceiling scale together, the per-node density does not.
    pub fn scaled(&self, factor: u32) -> Self {
        let factor = factor.max(1);
        CommProcessBudget {
            max_processes: self.max_processes.saturating_mul(factor),
            per_node: self.per_node,
            nodes: self.nodes.saturating_mul(factor),
        }
    }
}

/// A resolved placement of tool processes for one job: which hosts run daemons, how
/// many communication processes are available, and where the front end sits.
#[derive(Clone, Debug)]
pub struct PlacementPlan {
    /// Number of back-end daemons.
    pub daemons: u32,
    /// Tasks each daemon serves (the last daemon may serve fewer).
    pub tasks_per_daemon: u32,
    /// Communication-process budget for intermediate TBON levels.
    pub comm_budget: CommProcessBudget,
    /// Whether daemons run on dedicated I/O nodes.
    pub daemons_on_io_nodes: bool,
}

impl PlacementPlan {
    /// Compute the placement for a job of `tasks` MPI tasks on `cluster`.
    pub fn for_job(cluster: &Cluster, tasks: u64) -> Self {
        let shape = cluster.job(tasks);
        PlacementPlan {
            daemons: shape.daemons,
            tasks_per_daemon: shape.tasks_per_daemon,
            comm_budget: CommProcessBudget::for_cluster(cluster),
            daemons_on_io_nodes: cluster.daemons_on_io_nodes(),
        }
    }

    /// The fan-out from the front end used by the paper for a 2-deep tree:
    /// `min(sqrt(daemons), 28)` on BG/L, `sqrt(daemons)` elsewhere, at least 1.
    pub fn two_deep_fanout(&self) -> u32 {
        let sqrt = (self.daemons as f64).sqrt().ceil() as u32;
        let capped = sqrt.min(self.comm_budget.max_processes);
        capped.max(1)
    }

    /// The second-level width used by the paper for a 3-deep tree: the front end uses
    /// a fan-out of 4, and the next level employs 16 or 24 communication processes
    /// depending on job scale.
    pub fn three_deep_level_widths(&self) -> (u32, u32) {
        let first = 4u32;
        let second = if self.daemons >= 1_024 { 24 } else { 16 };
        (first, second.min(self.comm_budget.max_processes))
    }

    /// Like [`PlacementPlan::for_job`] but extrapolating the machine family beyond
    /// its physical size: the daemon count is *not* clamped to the installed I/O or
    /// compute nodes, and the communication-process budget grows by the same factor
    /// the machine would have to grow to hold the job.  For jobs that fit the real
    /// machine this is identical to `for_job`.  This is the placement the topology
    /// planner sweeps out to millions of simulated cores.
    pub fn for_scaled_job(cluster: &Cluster, tasks: u64) -> Self {
        if tasks <= cluster.max_tasks() {
            return PlacementPlan::for_job(cluster, tasks);
        }
        let tasks = tasks.max(1);
        let per_daemon = cluster.tasks_per_daemon().max(1) as u64;
        let daemons = tasks.div_ceil(per_daemon).min(u32::MAX as u64) as u32;
        let growth = tasks
            .div_ceil(cluster.max_tasks().max(1))
            .min(u32::MAX as u64) as u32;
        PlacementPlan {
            daemons,
            tasks_per_daemon: per_daemon as u32,
            comm_budget: CommProcessBudget::for_cluster(cluster).scaled(growth),
            daemons_on_io_nodes: cluster.daemons_on_io_nodes(),
        }
    }

    /// The full list of level widths — `[1, ..., daemons]` — the paper's placement
    /// rules produce for a tree of `depth` edges, generalising
    /// [`two_deep_fanout`](PlacementPlan::two_deep_fanout) and
    /// [`three_deep_level_widths`](PlacementPlan::three_deep_level_widths) to any
    /// depth.  Depths 1–3 reproduce the paper's Section III rules exactly; deeper
    /// trees use the largest uniform fan-out whose communication levels all fit the
    /// machine's [`CommProcessBudget`], with any leftover budget given to the level
    /// closest to the daemons (matching the paper's 4-then-24 bias toward wide lower
    /// levels).
    pub fn level_widths(&self, depth: u32) -> Vec<u32> {
        let depth = depth.max(1);
        match depth {
            1 => vec![1, self.daemons.max(1)],
            2 => vec![1, self.two_deep_fanout(), self.daemons.max(1)],
            3 => {
                // The paper's fixed 4 / 16-or-24 widths assume jobs with at least
                // that many daemons; smaller jobs clamp interior levels down so no
                // level is wider than the daemon population.
                let daemons = self.daemons.max(1);
                let (first, second) = self.three_deep_level_widths();
                let first = first.clamp(1, daemons);
                let second = second.clamp(first, daemons);
                vec![1, first, second, daemons]
            }
            d => {
                let budget = self.comm_budget.max_processes.max(1);
                let comm_levels = d - 1;
                // Largest uniform fan-out f with f + f^2 + ... + f^(d-1) <= budget.
                let mut fanout = 1u32;
                loop {
                    let next = fanout + 1;
                    let mut total = 0u64;
                    let mut width = 1u64;
                    for _ in 0..comm_levels {
                        width = width.saturating_mul(next as u64);
                        total += width;
                    }
                    if total > budget as u64 {
                        break;
                    }
                    fanout = next;
                }
                let mut widths = vec![1u32];
                let mut width = 1u64;
                let mut used = 0u64;
                for _ in 0..comm_levels {
                    width = width.saturating_mul(fanout as u64).min(self.daemons as u64);
                    widths.push(width as u32);
                    used += width;
                }
                // Hand leftover budget to the deepest comm level, where the paper
                // concentrates processes; keep it at or below the daemon count.
                let leftover = (budget as u64).saturating_sub(used);
                if let Some(last) = widths.last_mut() {
                    *last = (*last as u64 + leftover).min(self.daemons as u64).max(1) as u32;
                }
                widths.push(self.daemons.max(1));
                widths
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::BglMode;

    #[test]
    fn bgl_budget_is_28_comm_processes() {
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let budget = CommProcessBudget::for_cluster(&bgl);
        assert_eq!(budget.max_processes, 28);
        assert_eq!(budget.nodes, 14);
        assert!(budget.can_host(28));
        assert!(!budget.can_host(29));
        assert_eq!(budget.clamp(100), 28);
    }

    #[test]
    fn atlas_budget_scales_with_machine_size() {
        let atlas = Cluster::atlas();
        let budget = CommProcessBudget::for_cluster(&atlas);
        assert!(budget.max_processes >= 512);
        assert_eq!(budget.per_node, 8);
    }

    #[test]
    fn two_deep_fanout_follows_the_paper_rule() {
        // Atlas at 512 daemons: sqrt(512) ≈ 23 → fanout 23 (budget is not binding).
        let atlas = Cluster::atlas();
        let plan = PlacementPlan::for_job(&atlas, 4_096);
        assert_eq!(plan.daemons, 512);
        assert_eq!(plan.two_deep_fanout(), 23);

        // BG/L at 1,664 daemons: sqrt ≈ 41 but capped to 28 by the login nodes.
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let plan = PlacementPlan::for_job(&bgl, 212_992);
        assert_eq!(plan.daemons, 1_664);
        assert_eq!(plan.two_deep_fanout(), 28);
    }

    #[test]
    fn three_deep_widths_switch_at_scale() {
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let small = PlacementPlan::for_job(&bgl, 16_384);
        assert_eq!(small.three_deep_level_widths(), (4, 16));
        let large = PlacementPlan::for_job(&bgl, 106_496);
        assert_eq!(large.three_deep_level_widths(), (4, 24));
    }

    #[test]
    fn level_widths_generalise_the_paper_rules() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let plan = PlacementPlan::for_job(&bgl, 212_992);
        assert_eq!(plan.level_widths(1), vec![1, 1_664]);
        assert_eq!(plan.level_widths(2), vec![1, 28, 1_664]);
        assert_eq!(plan.level_widths(3), vec![1, 4, 24, 1_664]);
        // Depth 4 on BG/L: fan-out 2 fits (2 + 4 + 8 = 14 <= 28); the leftover 14
        // processes widen the level next to the daemons.
        assert_eq!(plan.level_widths(4), vec![1, 2, 4, 22, 1_664]);
        let comm: u32 = plan.level_widths(5)[1..5].iter().sum();
        assert!(comm <= plan.comm_budget.max_processes);
    }

    #[test]
    fn level_widths_never_exceed_the_daemon_count() {
        // BG/L CO mode, 512 tasks: only 8 daemons, fewer than the paper's fixed
        // 3-deep second-level width of 16 — interior levels clamp down instead of
        // inventing phantom backends.
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let plan = PlacementPlan::for_job(&bgl, 512);
        assert_eq!(plan.daemons, 8);
        assert_eq!(plan.level_widths(3), vec![1, 4, 8, 8]);
        for depth in 1..=6u32 {
            let widths = plan.level_widths(depth);
            assert_eq!(*widths.last().unwrap(), 8);
            assert!(widths.iter().all(|&w| w <= 8), "{widths:?}");
        }
    }

    #[test]
    fn scaled_jobs_extrapolate_the_machine_family() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        // Within the machine: identical to for_job.
        let inside = PlacementPlan::for_scaled_job(&bgl, 212_992);
        assert_eq!(inside.daemons, 1_664);
        assert_eq!(inside.comm_budget.max_processes, 28);
        // 1M+ tasks: daemons keep the 128-tasks-per-daemon ratio instead of
        // clamping at the installed 1,664 I/O nodes, and the login-node budget
        // grows with the machine.
        let beyond = PlacementPlan::for_scaled_job(&bgl, 1_048_576);
        assert_eq!(beyond.daemons, 8_192);
        assert_eq!(beyond.comm_budget.max_processes, 28 * 5);
        assert_eq!(beyond.comm_budget.per_node, 2);
    }

    #[test]
    fn placement_tracks_daemon_location() {
        let atlas = PlacementPlan::for_job(&Cluster::atlas(), 64);
        assert!(!atlas.daemons_on_io_nodes);
        let bgl = PlacementPlan::for_job(&Cluster::bluegene_l(BglMode::CoProcessor), 64);
        assert!(bgl.daemons_on_io_nodes);
    }
}
