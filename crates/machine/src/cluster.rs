//! Cluster descriptions: Atlas and the LLNL BlueGene/L.
//!
//! A [`Cluster`] is a declarative description of a machine: how many nodes of each
//! class it has, where application tasks run, where tool daemons are allowed to run,
//! how many tasks each daemon serves, which interconnect links connect the pieces,
//! and what the default file-system layout looks like.  Everything downstream — the
//! launcher models, the sampler, the TBON topology builder, the figure generators —
//! is parameterised by one of these values plus a job size.

use crate::filesystem::MountTable;
use crate::network::Interconnect;
use crate::node::{Node, NodeClass, NodeId};

/// BlueGene/L operating modes (Section III of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BglMode {
    /// One MPI task per compute node; the second core offloads communication.
    /// Each I/O-node daemon serves 64 tasks.
    CoProcessor,
    /// One MPI task per core (two per node).  Each daemon serves 128 tasks.
    VirtualNode,
}

impl BglMode {
    /// Tasks per compute node in this mode.
    pub fn tasks_per_compute_node(self) -> u32 {
        match self {
            BglMode::CoProcessor => 1,
            BglMode::VirtualNode => 2,
        }
    }

    /// Short label used in figure series names ("CO" / "VN"), matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            BglMode::CoProcessor => "CO",
            BglMode::VirtualNode => "VN",
        }
    }
}

/// Which family of machine a cluster is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClusterKind {
    /// A commodity Linux cluster (Atlas): daemons co-located with tasks on compute
    /// nodes, launched via remote-shell or the resource manager.
    LinuxCluster,
    /// BlueGene/L: daemons restricted to dedicated I/O nodes, launched by the
    /// system software (CIOD); comm processes restricted to login nodes.
    BlueGeneL {
        /// Operating mode of the job.
        mode: BglMode,
    },
}

/// A complete machine description.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Human-readable machine name.
    pub name: &'static str,
    /// Machine family and mode.
    pub kind: ClusterKind,
    /// Number of compute nodes in the full machine.
    pub compute_nodes: u32,
    /// Cores per compute node.
    pub cores_per_compute: u16,
    /// Compute-node clock in GHz.
    pub compute_clock_ghz: f64,
    /// Memory per compute node in MiB.
    pub compute_memory_mib: u32,
    /// Number of dedicated I/O nodes (0 on clusters without them).
    pub io_nodes: u32,
    /// Compute nodes served by each I/O node (64 on LLNL's BG/L).
    pub compute_per_io: u32,
    /// I/O-node clock in GHz.
    pub io_clock_ghz: f64,
    /// Number of login/front-end nodes available for tool processes.
    pub login_nodes: u32,
    /// Cores per login node.
    pub cores_per_login: u16,
    /// Login-node clock in GHz.
    pub login_clock_ghz: f64,
    /// Interconnect model.
    pub interconnect: Interconnect,
    /// Default file-system layout.
    pub mounts: MountTable,
    /// Executable layout of the target application on this machine: (path, bytes)
    /// for the base executable and each shared library a daemon must parse.
    pub binary_working_set: Vec<(String, u64)>,
}

impl Cluster {
    /// The Atlas cluster: 1,152 nodes × 8 Opteron cores, DDR Infiniband, NFS homes.
    ///
    /// The application working set matches Section VI-B: a small (10 KB) test
    /// executable, a 4 MB MPI library, and a few supporting shared libraries that the
    /// OS update mentioned in the paper moved to faster (node-local) file systems.
    pub fn atlas() -> Self {
        let mut mounts = MountTable::llnl_default();
        mounts.add("/opt", crate::filesystem::FileSystemKind::LocalDisk);
        Cluster {
            name: "atlas",
            kind: ClusterKind::LinuxCluster,
            compute_nodes: 1_152,
            cores_per_compute: 8,
            compute_clock_ghz: 2.4,
            compute_memory_mib: 16_384,
            io_nodes: 0,
            compute_per_io: 0,
            io_clock_ghz: 0.0,
            login_nodes: 4,
            cores_per_login: 8,
            login_clock_ghz: 2.4,
            interconnect: Interconnect::atlas(),
            mounts,
            binary_working_set: vec![
                ("/g/g0/user/ring_test".to_string(), 10 * 1024),
                ("/g/g0/user/lib/libmpi.so".to_string(), 4 * 1024 * 1024),
                ("/g/g0/user/lib/libopen-rte.so".to_string(), 768 * 1024),
                ("/usr/lib64/libc.so.6".to_string(), 1_700 * 1024),
                ("/usr/lib64/libpthread.so.0".to_string(), 140 * 1024),
            ],
        }
    }

    /// The LLNL BlueGene/L: 106,496 compute nodes, 1,664 I/O nodes (1:64), 14 login
    /// nodes with two Power5 processors each.  Applications are statically linked, so
    /// a daemon's symbol-table working set is a single (large) executable.
    pub fn bluegene_l(mode: BglMode) -> Self {
        Cluster {
            name: "bgl",
            kind: ClusterKind::BlueGeneL { mode },
            compute_nodes: 106_496,
            cores_per_compute: 2,
            compute_clock_ghz: 0.7,
            compute_memory_mib: 512,
            io_nodes: 1_664,
            compute_per_io: 64,
            io_clock_ghz: 0.7,
            login_nodes: 14,
            cores_per_login: 2,
            login_clock_ghz: 1.6,
            interconnect: Interconnect::bluegene_l(),
            mounts: MountTable::llnl_default(),
            binary_working_set: vec![
                // One statically linked executable staged on NFS.
                ("/g/g0/user/ring_test_bgl".to_string(), 12 * 1024 * 1024),
            ],
        }
    }

    /// A small synthetic cluster for unit tests: `nodes` compute nodes with
    /// `cores` cores each, Atlas-style placement rules.
    pub fn test_cluster(nodes: u32, cores: u16) -> Self {
        let mut c = Cluster::atlas();
        c.name = "testcluster";
        c.compute_nodes = nodes;
        c.cores_per_compute = cores;
        c
    }

    /// Whether tool daemons run on dedicated I/O nodes (BG/L) rather than sharing
    /// compute nodes with the application (Atlas).
    pub fn daemons_on_io_nodes(&self) -> bool {
        matches!(self.kind, ClusterKind::BlueGeneL { .. })
    }

    /// MPI tasks per compute node for the machine's configuration.
    pub fn tasks_per_compute_node(&self) -> u32 {
        match self.kind {
            ClusterKind::LinuxCluster => self.cores_per_compute as u32,
            ClusterKind::BlueGeneL { mode } => mode.tasks_per_compute_node(),
        }
    }

    /// MPI tasks served by one tool daemon.
    ///
    /// Atlas: one daemon per compute node ⇒ 8 tasks.  BG/L: one daemon per I/O node ⇒
    /// 64 tasks in co-processor mode, 128 in virtual-node mode.
    pub fn tasks_per_daemon(&self) -> u32 {
        match self.kind {
            ClusterKind::LinuxCluster => self.tasks_per_compute_node(),
            ClusterKind::BlueGeneL { mode } => self.compute_per_io * mode.tasks_per_compute_node(),
        }
    }

    /// Largest job (in MPI tasks) the machine supports.
    pub fn max_tasks(&self) -> u64 {
        self.compute_nodes as u64 * self.tasks_per_compute_node() as u64
    }

    /// Number of compute nodes needed for a job of `tasks` MPI tasks.
    pub fn compute_nodes_for(&self, tasks: u64) -> u32 {
        let per = self.tasks_per_compute_node() as u64;
        tasks.div_ceil(per).min(self.compute_nodes as u64) as u32
    }

    /// Number of tool daemons needed for a job of `tasks` MPI tasks.
    pub fn daemons_for(&self, tasks: u64) -> u32 {
        let per = self.tasks_per_daemon() as u64;
        let daemons = tasks.div_ceil(per);
        let cap = match self.kind {
            ClusterKind::LinuxCluster => self.compute_nodes as u64,
            ClusterKind::BlueGeneL { .. } => self.io_nodes as u64,
        };
        daemons.min(cap) as u32
    }

    /// The slowdown factor (relative to a 2.4 GHz reference core) of the nodes that
    /// host tool daemons.  BG/L's 700 MHz I/O nodes process filter code noticeably
    /// slower than Atlas's Opterons; the merge-time figures reflect that.
    pub fn daemon_host_slowdown(&self) -> f64 {
        let clock = if self.daemons_on_io_nodes() {
            self.io_clock_ghz
        } else {
            self.compute_clock_ghz
        };
        if clock <= 0.0 {
            1.0
        } else {
            (2.4 / clock).max(0.1)
        }
    }

    /// Slowdown factor of the nodes hosting communication processes and the front end.
    pub fn login_host_slowdown(&self) -> f64 {
        if self.login_clock_ghz <= 0.0 {
            1.0
        } else {
            (2.4 / self.login_clock_ghz).max(0.1)
        }
    }

    /// The shape of one concrete job on this machine.
    pub fn job(&self, tasks: u64) -> JobShape {
        let tasks = tasks.min(self.max_tasks()).max(1);
        let compute_nodes = self.compute_nodes_for(tasks);
        let daemons = self.daemons_for(tasks);
        JobShape {
            tasks,
            compute_nodes,
            daemons,
            tasks_per_daemon: (tasks.div_ceil(daemons as u64)) as u32,
        }
    }

    /// Materialise a node inventory for a job of the given size.  Only the nodes the
    /// job actually touches are instantiated, which keeps 208K-task experiments cheap.
    pub fn nodes_for_job(&self, tasks: u64) -> Vec<Node> {
        let shape = self.job(tasks);
        let mut nodes = Vec::new();
        let mut next_id = 0u32;
        for _ in 0..shape.compute_nodes {
            nodes.push(Node::new(
                next_id,
                NodeClass::Compute,
                self.cores_per_compute,
                self.compute_clock_ghz,
                self.compute_memory_mib,
            ));
            next_id += 1;
        }
        if self.daemons_on_io_nodes() {
            for _ in 0..shape.daemons {
                nodes.push(Node::new(
                    next_id,
                    NodeClass::Io,
                    self.cores_per_compute,
                    self.io_clock_ghz,
                    512,
                ));
                next_id += 1;
            }
        }
        for _ in 0..self.login_nodes {
            nodes.push(Node::new(
                next_id,
                NodeClass::Login,
                self.cores_per_login,
                self.login_clock_ghz,
                32_768,
            ));
            next_id += 1;
        }
        nodes.push(Node::new(next_id, NodeClass::Service, 4, 2.4, 32_768));
        nodes
    }

    /// The node ids that may host tool daemons for a job of the given size.
    pub fn daemon_hosts(&self, tasks: u64) -> Vec<NodeId> {
        let nodes = self.nodes_for_job(tasks);
        let want_io = self.daemons_on_io_nodes();
        nodes
            .iter()
            .filter(|n| n.class.runs_tool_daemons(want_io))
            .map(|n| n.id)
            .collect()
    }

    /// Total bytes in the application's symbol-table working set (what each daemon
    /// must parse before it can produce its first stack trace).
    pub fn symbol_working_set_bytes(&self) -> u64 {
        self.binary_working_set.iter().map(|(_, b)| *b).sum()
    }

    /// The standard task-count sweep used by the paper's figures on this machine.
    pub fn figure_scales(&self) -> Vec<u64> {
        match self.kind {
            ClusterKind::LinuxCluster => vec![64, 128, 256, 512, 1024, 2048, 4096, 8192],
            ClusterKind::BlueGeneL { mode } => {
                let per_node = mode.tasks_per_compute_node() as u64;
                // 1K, 2K, ..., 104K compute nodes in powers of two, expressed as tasks.
                let node_counts = [
                    1_024u64, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536, 106_496,
                ];
                node_counts.iter().map(|n| n * per_node).collect()
            }
        }
    }
}

/// The shape of one job: how many tasks, nodes and daemons it uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobShape {
    /// MPI tasks in the job.
    pub tasks: u64,
    /// Compute nodes the job occupies.
    pub compute_nodes: u32,
    /// Tool daemons needed to debug it.
    pub daemons: u32,
    /// Tasks served by each daemon (last daemon may serve fewer).
    pub tasks_per_daemon: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_shape_matches_paper() {
        let atlas = Cluster::atlas();
        assert_eq!(atlas.tasks_per_daemon(), 8);
        assert_eq!(atlas.max_tasks(), 1_152 * 8);
        // 4,096 tasks → 512 daemons (the Figure 2/8 endpoints).
        let job = atlas.job(4_096);
        assert_eq!(job.daemons, 512);
        assert_eq!(job.compute_nodes, 512);
        // 1,024 tasks → 128 daemons (Figure 10).
        assert_eq!(atlas.job(1_024).daemons, 128);
    }

    #[test]
    fn bgl_shape_matches_paper() {
        let co = Cluster::bluegene_l(BglMode::CoProcessor);
        assert_eq!(co.tasks_per_daemon(), 64);
        assert_eq!(co.max_tasks(), 106_496);
        let vn = Cluster::bluegene_l(BglMode::VirtualNode);
        assert_eq!(vn.tasks_per_daemon(), 128);
        // Full machine in VN mode: 212,992 tasks and 1,664 daemons — the paper's 208K.
        assert_eq!(vn.max_tasks(), 212_992);
        assert_eq!(vn.daemons_for(212_992), 1_664);
        assert_eq!(co.daemons_for(106_496), 1_664);
        // 64K compute nodes in VN mode = 131,072 tasks on 1,024 I/O nodes.
        assert_eq!(vn.daemons_for(131_072), 1_024);
    }

    #[test]
    fn job_clamps_to_machine_capacity() {
        let atlas = Cluster::atlas();
        let job = atlas.job(10_000_000);
        assert_eq!(job.tasks, atlas.max_tasks());
        assert_eq!(job.compute_nodes, 1_152);
        let tiny = atlas.job(0);
        assert_eq!(tiny.tasks, 1);
        assert_eq!(tiny.daemons, 1);
    }

    #[test]
    fn daemon_hosts_respect_machine_style() {
        let atlas = Cluster::atlas();
        let hosts = atlas.daemon_hosts(64);
        assert_eq!(
            hosts.len(),
            8,
            "64 tasks / 8 per node = 8 compute-node hosts"
        );

        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let hosts = bgl.daemon_hosts(1_024);
        // 1,024 tasks in CO mode = 1,024 nodes = 16 I/O nodes.
        assert_eq!(hosts.len(), 16);
    }

    #[test]
    fn node_inventory_only_materialises_the_job() {
        let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
        let nodes = bgl.nodes_for_job(2_048);
        // 2,048 VN tasks = 1,024 compute nodes and 16 daemons (128 tasks/daemon),
        // plus 14 login nodes and 1 service node.
        assert_eq!(nodes.len(), 1_024 + 16 + 14 + 1);
        let io_count = nodes.iter().filter(|n| n.class == NodeClass::Io).count();
        assert_eq!(io_count, 16);
    }

    #[test]
    fn daemon_host_slowdowns_differ_between_machines() {
        let atlas = Cluster::atlas();
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        assert!(atlas.daemon_host_slowdown() < 1.01);
        assert!(bgl.daemon_host_slowdown() > 3.0);
        assert!(bgl.login_host_slowdown() > 1.0);
    }

    #[test]
    fn working_set_reflects_linking_style() {
        let atlas = Cluster::atlas();
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        assert!(
            atlas.binary_working_set.len() > 1,
            "dynamic linking on Atlas"
        );
        assert_eq!(bgl.binary_working_set.len(), 1, "static linking on BG/L");
        assert!(atlas.symbol_working_set_bytes() > 4 << 20);
    }

    #[test]
    fn figure_scales_reach_the_paper_endpoints() {
        let vn = Cluster::bluegene_l(BglMode::VirtualNode);
        let scales = vn.figure_scales();
        assert_eq!(*scales.last().unwrap(), 212_992);
        let atlas = Cluster::atlas();
        assert!(atlas.figure_scales().contains(&4_096));
    }

    #[test]
    fn mode_labels_match_paper_vocabulary() {
        assert_eq!(BglMode::CoProcessor.label(), "CO");
        assert_eq!(BglMode::VirtualNode.label(), "VN");
    }
}
