//! # launch — tool daemon launching and resource-manager integration
//!
//! Section IV of the paper is about a cost that is easy to overlook: getting the tool
//! itself started.  An interactive debugger that needs thirty minutes to launch its
//! daemons is useless, and at BG/L scale even "launch 1,664 daemons" is a parallel
//! computing problem.  The paper contrasts three launching paths:
//!
//! * **MRNet's built-in spawner** — remote shells (`rsh`/`ssh`) invoked one at a time
//!   from the front end.  Linear in the number of daemons, and on Atlas it failed
//!   outright at 512 daemons when using `rsh`.
//! * **LaunchMON** — a portable daemon-spawning infrastructure that asks the native
//!   resource manager to bulk-launch the daemons, an order of magnitude faster
//!   (512 daemons in 5.6 s on Atlas).
//! * **BG/L system software (CIOD)** — on BG/L users cannot log in to I/O nodes, so
//!   the system software launches the daemons; its process-table generation used
//!   `strcat` (quadratic in the table size) and small buffers, which made startup
//!   dominate total tool time (86 % at 64K tasks) and caused an outright hang at
//!   208K processes until IBM's patches landed.
//!
//! This crate models all three, plus a real [`proctable`] implementation whose naive
//! and indexed packing routines let the ablation benchmarks demonstrate the `strcat`
//! pathology on real data rather than taking the paper's word for it.

#![warn(rust_2018_idioms)]

pub mod bgl;
pub mod launcher;
pub mod launchmon;
pub mod mpir;
pub mod proctable;
pub mod rsh;

pub use bgl::{BglCiodLauncher, CiodPatchLevel};
pub use launcher::{Launcher, StartupEstimate, StartupFailure, StartupPhase};
pub use launchmon::LaunchMonLauncher;
pub use mpir::{establish_session, session_startup, AttachMode, MpirSession};
pub use proctable::{pack_indexed, pack_naive, ProcessTable, ProcessTableEntry};
pub use rsh::{RemoteShell, RshLauncher};
