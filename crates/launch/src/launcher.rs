//! The launcher abstraction.
//!
//! A launcher is responsible for the whole startup path of the tool: starting the
//! back-end daemons, starting the MRNet communication processes, connecting everyone
//! into the overlay network, and — on BG/L, where debugging requires launching the
//! application under the tool's control — starting the application itself.  Figures 2
//! and 3 plot exactly this total, so the estimate keeps a per-phase breakdown.

use machine::cluster::Cluster;
use simkit::time::SimDuration;
use tbon::topology::TreeShape;

/// The phases of tool startup, in the order they appear in the breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StartupPhase {
    /// Launching the target application (only when the tool must launch it itself,
    /// as on the BG/L prototype).
    ApplicationLaunch,
    /// Resource-manager/system-software work: allocating partitions, generating the
    /// process table, distributing it.
    SystemSoftware,
    /// Starting the back-end tool daemons.
    DaemonLaunch,
    /// Starting the MRNet communication processes.
    CommProcessLaunch,
    /// Connecting daemons and communication processes into the overlay network.
    NetworkConnect,
}

impl StartupPhase {
    /// All phases in presentation order.
    pub fn all() -> [StartupPhase; 5] {
        [
            StartupPhase::ApplicationLaunch,
            StartupPhase::SystemSoftware,
            StartupPhase::DaemonLaunch,
            StartupPhase::CommProcessLaunch,
            StartupPhase::NetworkConnect,
        ]
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StartupPhase::ApplicationLaunch => "application launch",
            StartupPhase::SystemSoftware => "system software",
            StartupPhase::DaemonLaunch => "daemon launch",
            StartupPhase::CommProcessLaunch => "comm process launch",
            StartupPhase::NetworkConnect => "network connect",
        }
    }
}

/// Why a startup attempt failed outright (as opposed to merely being slow).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StartupFailure {
    /// The remote-shell spawner exhausted connections/process slots — the rsh failure
    /// the paper hit at 512 daemons on Atlas.
    RemoteShellExhausted {
        /// The daemon count at which the spawner gave up.
        at_daemons: u32,
    },
    /// The resource manager hung generating/distributing the process table — the
    /// unpatched BG/L behaviour at 208K processes.
    ResourceManagerHang {
        /// The task count at which the hang occurred.
        at_tasks: u64,
    },
    /// The requested topology cannot be placed on this machine (for example, more
    /// communication processes than the login nodes can host).
    TopologyUnplaceable {
        /// Human-readable reason.
        reason: String,
    },
}

/// The result of estimating (or attempting) a startup.
#[derive(Clone, Debug)]
pub struct StartupEstimate {
    /// Phase breakdown in presentation order; missing phases cost zero.
    pub phases: Vec<(StartupPhase, SimDuration)>,
    /// Hard failure, if the startup would not have completed at all.
    pub failure: Option<StartupFailure>,
    /// Number of daemons launched (or attempted).
    pub daemons: u32,
    /// Number of communication processes launched (or attempted).
    pub comm_processes: u32,
}

impl StartupEstimate {
    /// An estimate with no phases yet.
    pub fn new(daemons: u32, comm_processes: u32) -> Self {
        StartupEstimate {
            phases: Vec::new(),
            failure: None,
            daemons,
            comm_processes,
        }
    }

    /// Append a phase cost.
    pub fn push(&mut self, phase: StartupPhase, cost: SimDuration) {
        self.phases.push((phase, cost));
    }

    /// Mark the startup as failed.
    pub fn fail(&mut self, failure: StartupFailure) {
        self.failure = Some(failure);
    }

    /// Whether the startup completes at all.
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }

    /// Total startup time across phases.
    pub fn total(&self) -> SimDuration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// The cost of one phase (zero if absent).
    pub fn phase(&self, phase: StartupPhase) -> SimDuration {
        self.phases
            .iter()
            .filter(|(p, _)| *p == phase)
            .map(|(_, d)| *d)
            .sum()
    }

    /// The fraction of total time spent in a phase (0 if the total is zero).
    pub fn phase_fraction(&self, phase: StartupPhase) -> f64 {
        let total = self.total().as_secs();
        if total <= 0.0 {
            0.0
        } else {
            self.phase(phase).as_secs() / total
        }
    }
}

/// A strategy for starting the tool on a machine.
pub trait Launcher {
    /// The name used in figure series ("MRNet rsh", "LaunchMON", ...).
    fn name(&self) -> &'static str;

    /// Estimate a startup of STAT over `topology` for a job of `tasks` MPI tasks.
    fn startup(&self, cluster: &Cluster, tasks: u64, topology: &TreeShape) -> StartupEstimate;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_accumulates_phases() {
        let mut e = StartupEstimate::new(512, 23);
        e.push(StartupPhase::DaemonLaunch, SimDuration::from_secs(4.0));
        e.push(StartupPhase::NetworkConnect, SimDuration::from_secs(1.0));
        assert_eq!(e.total(), SimDuration::from_secs(5.0));
        assert_eq!(
            e.phase(StartupPhase::DaemonLaunch),
            SimDuration::from_secs(4.0)
        );
        assert_eq!(e.phase(StartupPhase::SystemSoftware), SimDuration::ZERO);
        assert!((e.phase_fraction(StartupPhase::DaemonLaunch) - 0.8).abs() < 1e-9);
        assert!(e.succeeded());
    }

    #[test]
    fn failure_marks_the_estimate() {
        let mut e = StartupEstimate::new(512, 0);
        e.fail(StartupFailure::RemoteShellExhausted { at_daemons: 512 });
        assert!(!e.succeeded());
    }

    #[test]
    fn empty_estimate_has_zero_fraction() {
        let e = StartupEstimate::new(1, 0);
        assert_eq!(e.phase_fraction(StartupPhase::DaemonLaunch), 0.0);
        assert_eq!(e.total(), SimDuration::ZERO);
    }

    #[test]
    fn phase_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            StartupPhase::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
