//! The MPIR process table, and the `strcat` pathology, for real.
//!
//! Debuggers learn where the application's processes live through the MPIR process
//! table: one entry per MPI task giving host name, executable name and pid.  The
//! paper reports that BG/L's resource manager packed this table into a wire buffer
//! with repeated `strcat` calls.  `strcat` has to find the end of the destination
//! string before it can append, so packing n entries costs Θ(n²) character scans —
//! harmless at 4K tasks, catastrophic at 208K (and, combined with fixed-size buffers,
//! the cause of an outright hang until IBM patched it).
//!
//! We implement the table and both packing strategies for real.  The launcher models
//! use calibrated cost formulas for the 10⁵-task regime, but the ablation benchmark
//! (`ablation_proctable`) runs these functions on real data so the quadratic/linear
//! difference is measured, not asserted.

/// One MPIR-style process-table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessTableEntry {
    /// MPI rank.
    pub rank: u64,
    /// Host (compute node) name.
    pub host: String,
    /// Executable path.
    pub executable: String,
    /// Process id on the host.
    pub pid: u32,
}

/// The full process table for a job.
#[derive(Clone, Debug, Default)]
pub struct ProcessTable {
    entries: Vec<ProcessTableEntry>,
}

impl ProcessTable {
    /// An empty table.
    pub fn new() -> Self {
        ProcessTable::default()
    }

    /// Generate a synthetic table for a job of `tasks` ranks spread over compute
    /// nodes named after their index, `tasks_per_node` ranks per node.
    pub fn synthetic(tasks: u64, tasks_per_node: u32, executable: &str) -> Self {
        let tasks_per_node = tasks_per_node.max(1) as u64;
        let entries = (0..tasks)
            .map(|rank| ProcessTableEntry {
                rank,
                host: format!("bglio{:05}", rank / tasks_per_node),
                executable: executable.to_string(),
                pid: 1_000 + (rank % 60_000) as u32,
            })
            .collect();
        ProcessTable { entries }
    }

    /// Add an entry.
    pub fn push(&mut self, entry: ProcessTableEntry) {
        self.entries.push(entry);
    }

    /// The entries in rank order.
    pub fn entries(&self) -> &[ProcessTableEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render one entry in the textual wire format the packers consume.
    fn render_entry(entry: &ProcessTableEntry) -> String {
        format!(
            "{}:{}:{}:{};",
            entry.rank, entry.host, entry.executable, entry.pid
        )
    }
}

/// Pack the table the way the unpatched resource manager did: append each rendered
/// entry by scanning the destination for its current end before copying — byte-for-
/// byte what repeated `strcat` into one buffer does.  Θ(n²) in the table size.
pub fn pack_naive(table: &ProcessTable) -> Vec<u8> {
    let mut buffer: Vec<u8> = vec![0u8; 1];
    // Keep buffer NUL-terminated like the C original; capacity grows as needed (the
    // real bug also had fixed-size buffers, which we model as a failure mode in the
    // launcher rather than reproducing the overflow here).
    for entry in table.entries() {
        let rendered = ProcessTable::render_entry(entry);
        // "strcat": find the terminating NUL by scanning from the start...
        let end = buffer
            .iter()
            .position(|&b| b == 0)
            .expect("buffer is always NUL-terminated");
        // ...then copy the new bytes and re-terminate.
        buffer.truncate(end);
        buffer.extend_from_slice(rendered.as_bytes());
        buffer.push(0);
    }
    buffer.pop();
    buffer
}

/// Pack the table the way the patched resource manager does: keep a cursor to the end
/// and append directly.  Θ(n) in the table size.
pub fn pack_indexed(table: &ProcessTable) -> Vec<u8> {
    let mut buffer = Vec::new();
    for entry in table.entries() {
        buffer.extend_from_slice(ProcessTable::render_entry(entry).as_bytes());
    }
    buffer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_table_has_one_entry_per_rank() {
        let t = ProcessTable::synthetic(1_000, 64, "/g/g0/user/ring_test");
        assert_eq!(t.len(), 1_000);
        assert_eq!(t.entries()[0].host, "bglio00000");
        assert_eq!(t.entries()[999].host, "bglio00015");
        assert_eq!(t.entries()[64].host, "bglio00001");
    }

    #[test]
    fn both_packers_produce_identical_bytes() {
        let t = ProcessTable::synthetic(257, 8, "/a.out");
        assert_eq!(pack_naive(&t), pack_indexed(&t));
    }

    #[test]
    fn empty_table_packs_to_nothing() {
        let t = ProcessTable::new();
        assert!(pack_naive(&t).is_empty());
        assert!(pack_indexed(&t).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn packed_size_grows_linearly_with_entries() {
        let small = pack_indexed(&ProcessTable::synthetic(100, 8, "/a.out"));
        let large = pack_indexed(&ProcessTable::synthetic(1_000, 8, "/a.out"));
        let ratio = large.len() as f64 / small.len() as f64;
        assert!(ratio > 8.0 && ratio < 12.0, "ratio {ratio}");
    }

    #[test]
    fn naive_packing_really_is_superlinear_in_work() {
        // Count the scan work explicitly rather than relying on timing in a unit test:
        // the naive packer scans the whole buffer per entry, so total scanned bytes
        // grow quadratically.  (The benchmark measures the wall-clock consequence.)
        fn scanned_bytes(entries: u64) -> u64 {
            let t = ProcessTable::synthetic(entries, 8, "/a.out");
            let mut total = 0u64;
            let mut len = 0u64;
            for e in t.entries() {
                total += len; // bytes scanned to find the terminator
                len += ProcessTable::render_entry(e).len() as u64;
            }
            total
        }
        let s1 = scanned_bytes(200);
        let s2 = scanned_bytes(400);
        assert!(
            s2 as f64 / s1 as f64 > 3.5,
            "doubling entries should ~quadruple scans: {s1} -> {s2}"
        );
    }
}
