//! The MRNet-style remote-shell launcher.
//!
//! MRNet's built-in spawning facility starts each daemon (and each communication
//! process) by running `rsh`/`ssh` from the front end, one at a time.  Figure 2's
//! "MRNet" line is the consequence: startup time grows linearly with the daemon
//! count, and with `rsh` the spawner stopped working entirely at 512 daemons on
//! Atlas (connection/port exhaustion at the front end).  `ssh` scaled further on the
//! older Thunder machine, but Atlas's compute nodes did not accept ssh — an example
//! of the portability problem Section IV-B describes.

use machine::cluster::Cluster;
use simkit::time::SimDuration;
use tbon::topology::TreeShape;

use crate::launcher::{Launcher, StartupEstimate, StartupFailure, StartupPhase};

/// Which remote-shell protocol the spawner uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteShell {
    /// `rsh`: fails outright once too many concurrent connections have been opened.
    Rsh,
    /// `ssh`: slower per spawn but does not exhaust privileged ports as quickly.
    Ssh,
}

impl RemoteShell {
    /// Per-daemon spawn latency as seen from the front end.
    fn per_spawn(self) -> SimDuration {
        match self {
            // An rsh round trip plus remote fork/exec of the daemon.
            RemoteShell::Rsh => SimDuration::from_millis(240.0),
            // ssh adds key exchange on top.
            RemoteShell::Ssh => SimDuration::from_millis(310.0),
        }
    }

    /// The daemon count beyond which the spawner stops working (None = no hard limit
    /// within the scales we model).
    fn failure_threshold(self) -> Option<u32> {
        match self {
            RemoteShell::Rsh => Some(512),
            RemoteShell::Ssh => None,
        }
    }

    /// Label fragment for figure series.
    pub fn label(self) -> &'static str {
        match self {
            RemoteShell::Rsh => "rsh",
            RemoteShell::Ssh => "ssh",
        }
    }
}

/// The sequential remote-shell launcher.
#[derive(Clone, Debug)]
pub struct RshLauncher {
    shell: RemoteShell,
    /// Whether the target machine allows this protocol on its compute nodes at all.
    /// (Atlas rejected ssh on compute nodes; BG/L rejects both for I/O nodes.)
    machine_supports_shell: bool,
}

impl RshLauncher {
    /// A launcher using the given protocol on a machine that supports it.
    pub fn new(shell: RemoteShell) -> Self {
        RshLauncher {
            shell,
            machine_supports_shell: true,
        }
    }

    /// Mark the protocol as unsupported on the target's compute nodes.
    pub fn unsupported(mut self) -> Self {
        self.machine_supports_shell = false;
        self
    }

    /// Time to connect all tool processes into the overlay network once they exist:
    /// each parent accepts its children's connections one after another.
    pub(crate) fn connect_time(spec: &TreeShape, per_connect: SimDuration) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for w in spec.level_widths.windows(2) {
            let fanout = w[1].div_ceil(w[0].max(1));
            total += per_connect * fanout as u64;
        }
        total
    }
}

impl Launcher for RshLauncher {
    fn name(&self) -> &'static str {
        match self.shell {
            RemoteShell::Rsh => "MRNet rsh",
            RemoteShell::Ssh => "MRNet ssh",
        }
    }

    fn startup(&self, cluster: &Cluster, tasks: u64, topology: &TreeShape) -> StartupEstimate {
        let shape = cluster.job(tasks);
        let daemons = shape.daemons.min(topology.backends());
        let comm = topology.comm_processes();
        let mut est = StartupEstimate::new(daemons, comm);

        if !self.machine_supports_shell {
            est.fail(StartupFailure::TopologyUnplaceable {
                reason: format!(
                    "{} is not available on {} compute nodes",
                    self.shell.label(),
                    cluster.name
                ),
            });
            return est;
        }

        // Communication processes are spawned first, then the daemons, all serially
        // from the front end.
        let per = self.shell.per_spawn();
        est.push(StartupPhase::CommProcessLaunch, per * comm as u64);
        est.push(StartupPhase::DaemonLaunch, per * daemons as u64);
        est.push(
            StartupPhase::NetworkConnect,
            Self::connect_time(topology, SimDuration::from_millis(4.0)),
        );

        if let Some(limit) = self.shell.failure_threshold() {
            if daemons >= limit {
                est.fail(StartupFailure::RemoteShellExhausted {
                    at_daemons: daemons,
                });
            }
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::Cluster;

    #[test]
    fn rsh_startup_is_linear_in_daemons() {
        let atlas = Cluster::atlas();
        let launcher = RshLauncher::new(RemoteShell::Rsh);
        let t64 = launcher
            .startup(&atlas, 64 * 8, &TreeShape::flat(64))
            .total()
            .as_secs();
        let t256 = launcher
            .startup(&atlas, 256 * 8, &TreeShape::flat(256))
            .total()
            .as_secs();
        let ratio = t256 / t64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rsh_fails_at_512_daemons_like_the_paper() {
        let atlas = Cluster::atlas();
        let launcher = RshLauncher::new(RemoteShell::Rsh);
        let est = launcher.startup(&atlas, 512 * 8, &TreeShape::flat(512));
        assert!(!est.succeeded());
        assert!(matches!(
            est.failure,
            Some(StartupFailure::RemoteShellExhausted { at_daemons: 512 })
        ));
        // The estimate still records how long the serial spawning would have taken:
        // "over 2 minutes based on the clear linear scaling trend".
        assert!(est.total().as_secs() > 120.0);
    }

    #[test]
    fn ssh_scales_past_512_but_is_slower_per_daemon() {
        let atlas = Cluster::atlas();
        let ssh = RshLauncher::new(RemoteShell::Ssh);
        let est = ssh.startup(&atlas, 512 * 8, &TreeShape::flat(512));
        assert!(est.succeeded());
        let rsh = RshLauncher::new(RemoteShell::Rsh);
        let rsh_256 = rsh.startup(&atlas, 256 * 8, &TreeShape::flat(256));
        let ssh_256 = ssh.startup(&atlas, 256 * 8, &TreeShape::flat(256));
        assert!(ssh_256.total() > rsh_256.total());
    }

    #[test]
    fn unsupported_shell_fails_immediately() {
        let atlas = Cluster::atlas();
        let launcher = RshLauncher::new(RemoteShell::Ssh).unsupported();
        let est = launcher.startup(&atlas, 64, &TreeShape::flat(8));
        assert!(!est.succeeded());
        assert_eq!(est.total(), SimDuration::ZERO);
    }

    #[test]
    fn comm_processes_add_to_the_serial_cost() {
        let atlas = Cluster::atlas();
        let launcher = RshLauncher::new(RemoteShell::Rsh);
        let flat = launcher.startup(&atlas, 128 * 8, &TreeShape::flat(128));
        let deep = launcher.startup(&atlas, 128 * 8, &TreeShape::two_deep(128, 12));
        assert!(deep.total() > flat.total());
        assert_eq!(deep.comm_processes, 12);
    }
}
