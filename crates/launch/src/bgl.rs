//! The BG/L system-software launcher (CIOD / mpirun path).
//!
//! On BG/L, users cannot log into the I/O nodes, so the tool daemons are started by
//! the system software alongside the job.  The prototype STAT additionally only
//! supported debugging applications *launched under the tool's control*, so Figure 3's
//! startup time includes launching the application itself.  The paper attributes most
//! of the time to the system software: partition boot and job setup, and above all
//! generation and distribution of the MPIR process table, which the unpatched
//! resource manager packed with `strcat` (quadratic) into undersized buffers —
//! causing a hang at 208K processes.  IBM's patches (larger buffers, pointer-bump
//! packing) recovered more than a 2× startup improvement at 104K tasks.
//!
//! MRNet's communication processes are still launched by the MRNet remote-shell
//! spawner onto the login nodes, which is why even the BG/L startup model keeps a
//! serial per-comm-process term.

use machine::cluster::{Cluster, ClusterKind};
use machine::placement::CommProcessBudget;
use simkit::model::{CostModel, LinearCost, QuadraticCost};
use simkit::time::SimDuration;
use tbon::topology::TreeShape;

use crate::launcher::{Launcher, StartupEstimate, StartupFailure, StartupPhase};
use crate::rsh::RshLauncher;

/// Whether the IBM scalability patches are applied to the resource manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CiodPatchLevel {
    /// As first measured: `strcat` packing, small buffers, hang at 208K processes.
    Unpatched,
    /// After IBM's patches: linear packing, larger buffers, 208K runs succeed.
    Patched,
}

impl CiodPatchLevel {
    /// Label used in figure series.
    pub fn label(self) -> &'static str {
        match self {
            CiodPatchLevel::Unpatched => "unpatched",
            CiodPatchLevel::Patched => "patched",
        }
    }
}

/// The BG/L system-software launcher model.
#[derive(Clone, Debug)]
pub struct BglCiodLauncher {
    patch_level: CiodPatchLevel,
    /// Fixed partition-boot / job-setup cost (dominates small jobs; ≈90 s even at
    /// 1,024 compute nodes in Figure 3).
    partition_setup: SimDuration,
    /// Per-task cost of launching the application binary onto compute nodes.
    app_launch_per_task: SimDuration,
    /// Per-daemon cost of CIOD spawning the tool daemon on each I/O node.
    daemon_spawn_per_io_node: SimDuration,
    /// Per-comm-process cost of the MRNet spawner on the login nodes.
    comm_spawn: SimDuration,
    /// Per-connection cost when wiring the overlay.
    per_connect: SimDuration,
    /// Task count at which the unpatched resource manager hangs.
    unpatched_hang_threshold: u64,
}

impl BglCiodLauncher {
    /// A launcher at the given patch level with the default calibration.
    pub fn new(patch_level: CiodPatchLevel) -> Self {
        BglCiodLauncher {
            patch_level,
            partition_setup: SimDuration::from_secs(98.0),
            app_launch_per_task: SimDuration::from_millis(2.5),
            daemon_spawn_per_io_node: SimDuration::from_millis(9.0),
            comm_spawn: SimDuration::from_millis(260.0),
            per_connect: SimDuration::from_millis(6.0),
            unpatched_hang_threshold: 208_000,
        }
    }

    /// The patch level this launcher models.
    pub fn patch_level(&self) -> CiodPatchLevel {
        self.patch_level
    }

    /// The process-table generation cost for `tasks` entries.
    ///
    /// Unpatched: repeated `strcat` packing scans the growing buffer for every entry —
    /// quadratic work — plus the linear rendering cost.  Patched: linear packing only.
    pub fn process_table_cost(&self, tasks: u64) -> SimDuration {
        let linear = LinearCost {
            base: SimDuration::from_millis(200.0),
            per_unit: SimDuration::from_micros(120.0),
        };
        match self.patch_level {
            CiodPatchLevel::Patched => linear.cost(tasks),
            CiodPatchLevel::Unpatched => {
                let quad = QuadraticCost {
                    base: SimDuration::from_millis(200.0),
                    per_unit: SimDuration::from_micros(120.0),
                    // ~40 ns of buffer scanning per (entry, prior entry) pair.
                    per_unit_sq: SimDuration::from_nanos(40),
                };
                quad.cost(tasks)
            }
        }
    }
}

impl Launcher for BglCiodLauncher {
    fn name(&self) -> &'static str {
        match self.patch_level {
            CiodPatchLevel::Unpatched => "BG/L system software (unpatched)",
            CiodPatchLevel::Patched => "BG/L system software (patched)",
        }
    }

    fn startup(&self, cluster: &Cluster, tasks: u64, topology: &TreeShape) -> StartupEstimate {
        let shape = cluster.job(tasks);
        let daemons = shape.daemons.min(topology.backends());
        let comm = topology.comm_processes();
        let mut est = StartupEstimate::new(daemons, comm);

        if !matches!(cluster.kind, ClusterKind::BlueGeneL { .. }) {
            est.fail(StartupFailure::TopologyUnplaceable {
                reason: format!(
                    "the CIOD launcher only exists on BG/L, not {}",
                    cluster.name
                ),
            });
            return est;
        }
        let budget = CommProcessBudget::for_cluster(cluster);
        if !budget.can_host(comm) {
            est.fail(StartupFailure::TopologyUnplaceable {
                reason: format!(
                    "{comm} communication processes requested but the login nodes host at most {}",
                    budget.max_processes
                ),
            });
            return est;
        }

        // The application is launched under the tool's control, so its cost counts.
        est.push(
            StartupPhase::ApplicationLaunch,
            self.app_launch_per_task * shape.tasks,
        );
        // System software: partition/job setup plus process-table generation and
        // distribution to the front end.
        est.push(
            StartupPhase::SystemSoftware,
            self.partition_setup + self.process_table_cost(shape.tasks),
        );
        // CIOD spawns one daemon per I/O node; the spawns proceed in parallel across
        // I/O nodes but the control traffic serialises per rack, giving a mild linear
        // term in the daemon count.
        est.push(
            StartupPhase::DaemonLaunch,
            self.daemon_spawn_per_io_node * daemons as u64,
        );
        // MRNet still launches the communication processes serially on login nodes.
        est.push(
            StartupPhase::CommProcessLaunch,
            self.comm_spawn * comm as u64,
        );
        est.push(
            StartupPhase::NetworkConnect,
            RshLauncher::connect_time(topology, self.per_connect),
        );

        if self.patch_level == CiodPatchLevel::Unpatched
            && shape.tasks >= self.unpatched_hang_threshold
        {
            // "...the BG/L resource manager also suffered from a scalability
            // correctness issue and caused an apparent run time failure (hang) at
            // 208K processes."
            est.fail(StartupFailure::ResourceManagerHang {
                at_tasks: shape.tasks,
            });
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::BglMode;
    use machine::placement::PlacementPlan;

    fn bgl_spec(cluster: &Cluster, tasks: u64, depth: u32) -> TreeShape {
        let plan = PlacementPlan::for_job(cluster, tasks);
        TreeShape::for_placement(&plan, depth)
    }

    #[test]
    fn startup_exceeds_100_seconds_even_at_1024_nodes() {
        let cluster = Cluster::bluegene_l(BglMode::CoProcessor);
        let launcher = BglCiodLauncher::new(CiodPatchLevel::Unpatched);
        let spec = bgl_spec(&cluster, 1_024, 2);
        let est = launcher.startup(&cluster, 1_024, &spec);
        assert!(est.succeeded());
        assert!(
            est.total().as_secs() > 100.0,
            "paper: >100 s at 1,024 compute nodes; got {}",
            est.total().as_secs()
        );
    }

    #[test]
    fn system_software_dominates_at_64k_virtual_node() {
        // "At 64K compute nodes in virtual node mode, the system software accounts
        // for over 86% of the startup time."
        let cluster = Cluster::bluegene_l(BglMode::VirtualNode);
        let launcher = BglCiodLauncher::new(CiodPatchLevel::Unpatched);
        let tasks = 65_536 * 2;
        let spec = bgl_spec(&cluster, tasks, 2);
        let est = launcher.startup(&cluster, tasks, &spec);
        let system = est.phase_fraction(StartupPhase::SystemSoftware)
            + est.phase_fraction(StartupPhase::ApplicationLaunch);
        assert!(
            system > 0.80,
            "system software + app launch should dominate, got {system}"
        );
    }

    #[test]
    fn unpatched_hangs_at_208k_processes() {
        let cluster = Cluster::bluegene_l(BglMode::VirtualNode);
        let unpatched = BglCiodLauncher::new(CiodPatchLevel::Unpatched);
        let patched = BglCiodLauncher::new(CiodPatchLevel::Patched);
        let spec = bgl_spec(&cluster, 212_992, 2);
        let bad = unpatched.startup(&cluster, 212_992, &spec);
        assert!(matches!(
            bad.failure,
            Some(StartupFailure::ResourceManagerHang { .. })
        ));
        let good = patched.startup(&cluster, 212_992, &spec);
        assert!(good.succeeded());
    }

    #[test]
    fn patches_give_better_than_2x_at_104k() {
        // "The drops in startup time ... show the performance improvement, with more
        // than a two fold speedup at 104K processes in the 2-deep CO case."
        let cluster = Cluster::bluegene_l(BglMode::CoProcessor);
        let tasks = 106_496;
        let spec = bgl_spec(&cluster, tasks, 2);
        let before = BglCiodLauncher::new(CiodPatchLevel::Unpatched)
            .startup(&cluster, tasks, &spec)
            .total()
            .as_secs();
        let after = BglCiodLauncher::new(CiodPatchLevel::Patched)
            .startup(&cluster, tasks, &spec)
            .total()
            .as_secs();
        assert!(
            before / after > 2.0,
            "expected >2x improvement, got {before:.1}s -> {after:.1}s"
        );
    }

    #[test]
    fn startup_grows_linearly_after_the_fixed_setup() {
        let cluster = Cluster::bluegene_l(BglMode::CoProcessor);
        let launcher = BglCiodLauncher::new(CiodPatchLevel::Patched);
        let t8k = launcher
            .startup(&cluster, 8_192, &bgl_spec(&cluster, 8_192, 2))
            .total()
            .as_secs();
        let t64k = launcher
            .startup(&cluster, 65_536, &bgl_spec(&cluster, 65_536, 2))
            .total()
            .as_secs();
        assert!(t64k > t8k, "bigger jobs take longer");
        // Subtracting the fixed setup, the remainder should be close to linear (8x).
        let fixed = 98.0;
        let growth = (t64k - fixed) / (t8k - fixed);
        assert!((4.0..12.0).contains(&growth), "growth {growth}");
    }

    #[test]
    fn rejects_non_bgl_clusters() {
        let atlas = Cluster::atlas();
        let launcher = BglCiodLauncher::new(CiodPatchLevel::Patched);
        let est = launcher.startup(&atlas, 1_024, &TreeShape::flat(128));
        assert!(!est.succeeded());
    }

    #[test]
    fn process_table_cost_is_quadratic_only_when_unpatched() {
        let unpatched = BglCiodLauncher::new(CiodPatchLevel::Unpatched);
        let patched = BglCiodLauncher::new(CiodPatchLevel::Patched);
        let small = 10_000u64;
        let large = 100_000u64;
        let up_growth = unpatched.process_table_cost(large).as_secs()
            / unpatched.process_table_cost(small).as_secs();
        let p_growth = patched.process_table_cost(large).as_secs()
            / patched.process_table_cost(small).as_secs();
        assert!(
            up_growth > 20.0,
            "quadratic growth expected, got {up_growth}"
        );
        assert!(p_growth < 12.0, "linear growth expected, got {p_growth}");
    }
}
