//! The LaunchMON-style bulk launcher.
//!
//! LaunchMON (Ahn et al., ICPP'08) decouples daemon spawning from the tool and hands
//! it to the native resource manager, which already knows how to start one process on
//! every node of an allocation quickly: SLURM's `srun`, for instance, fans the
//! request out through its own control tree.  Figure 2's "LaunchMON" line shows the
//! effect — 512 daemons in 5.6 seconds on Atlas, against a projected 2+ minutes for
//! serial rsh.
//!
//! The model below charges a fixed hand-shake with the resource manager, a
//! logarithmic fan-out term for the resource manager's own control tree, a small
//! per-daemon cost (the daemons still have to fork/exec and read their environment),
//! and the usual overlay-connection time.  The communication processes are launched
//! by the resource manager too (on clusters) — this is the "systematic, reusable tool
//! and job startup" the paper advocates.

use machine::cluster::Cluster;
use machine::placement::CommProcessBudget;
use simkit::time::SimDuration;
use tbon::topology::TreeShape;

use crate::launcher::{Launcher, StartupEstimate, StartupFailure, StartupPhase};
use crate::rsh::RshLauncher;

/// The LaunchMON-style launcher.
#[derive(Clone, Debug)]
pub struct LaunchMonLauncher {
    /// Fixed cost of negotiating with the resource manager (job-step creation,
    /// credential checks).
    pub rm_handshake: SimDuration,
    /// Cost per level of the resource manager's internal fan-out tree.
    pub rm_tree_level: SimDuration,
    /// Per-daemon cost once the bulk launch reaches the node.
    pub per_daemon: SimDuration,
    /// Per-connection cost when wiring the overlay network.
    pub per_connect: SimDuration,
}

impl Default for LaunchMonLauncher {
    fn default() -> Self {
        LaunchMonLauncher {
            rm_handshake: SimDuration::from_secs(2.0),
            rm_tree_level: SimDuration::from_millis(120.0),
            per_daemon: SimDuration::from_millis(4.0),
            per_connect: SimDuration::from_millis(1.0),
        }
    }
}

impl LaunchMonLauncher {
    /// A launcher with the default calibration (matches the 5.6 s / 512 daemons
    /// measurement from the paper).
    pub fn new() -> Self {
        LaunchMonLauncher::default()
    }
}

impl Launcher for LaunchMonLauncher {
    fn name(&self) -> &'static str {
        "LaunchMON"
    }

    fn startup(&self, cluster: &Cluster, tasks: u64, topology: &TreeShape) -> StartupEstimate {
        let shape = cluster.job(tasks);
        let daemons = shape.daemons.min(topology.backends());
        let comm = topology.comm_processes();
        let mut est = StartupEstimate::new(daemons, comm);

        let budget = CommProcessBudget::for_cluster(cluster);
        if !budget.can_host(comm) {
            est.fail(StartupFailure::TopologyUnplaceable {
                reason: format!(
                    "{comm} communication processes requested but only {} can be hosted",
                    budget.max_processes
                ),
            });
            return est;
        }

        // Resource-manager bulk launch of the daemons.
        let levels = (daemons.max(2) as f64).log2().ceil() as u64;
        let bulk =
            self.rm_handshake + self.rm_tree_level * levels + self.per_daemon * daemons as u64;
        est.push(StartupPhase::SystemSoftware, self.rm_handshake);
        est.push(StartupPhase::DaemonLaunch, bulk - self.rm_handshake);

        // Communication processes are a second, much smaller bulk launch.
        let comm_levels = (comm.max(2) as f64).log2().ceil() as u64;
        let comm_cost = if comm == 0 {
            SimDuration::ZERO
        } else {
            self.rm_tree_level * comm_levels + self.per_daemon * comm as u64
        };
        est.push(StartupPhase::CommProcessLaunch, comm_cost);

        est.push(
            StartupPhase::NetworkConnect,
            RshLauncher::connect_time(topology, self.per_connect),
        );
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cluster::Cluster;

    #[test]
    fn matches_the_paper_calibration_point() {
        // "STAT starts 512 daemons in 5.6 seconds."
        let atlas = Cluster::atlas();
        let launcher = LaunchMonLauncher::new();
        let est = launcher.startup(&atlas, 4_096, &TreeShape::flat(512));
        let total = est.total().as_secs();
        assert!(
            (4.5..7.0).contains(&total),
            "expected about 5.6 s, got {total}"
        );
        assert!(est.succeeded());
    }

    #[test]
    fn scales_far_better_than_serial_rsh() {
        let atlas = Cluster::atlas();
        let lm = LaunchMonLauncher::new();
        let rsh = crate::rsh::RshLauncher::new(crate::rsh::RemoteShell::Rsh);
        let spec = TreeShape::flat(256);
        let lm_t = lm.startup(&atlas, 2_048, &spec).total();
        let rsh_t = rsh.startup(&atlas, 2_048, &spec).total();
        assert!(rsh_t.as_secs() / lm_t.as_secs() > 5.0);
    }

    #[test]
    fn growth_is_sublinear() {
        let atlas = Cluster::atlas();
        let lm = LaunchMonLauncher::new();
        let t128 = lm
            .startup(&atlas, 1_024, &TreeShape::flat(128))
            .total()
            .as_secs();
        let t1024 = lm
            .startup(&atlas, 8_192, &TreeShape::flat(1_024))
            .total()
            .as_secs();
        assert!(
            t1024 / t128 < 3.0,
            "8x daemons should cost well under 3x: {t128} -> {t1024}"
        );
    }

    #[test]
    fn rejects_unplaceable_topologies() {
        use machine::cluster::BglMode;
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let lm = LaunchMonLauncher::new();
        // 64 comm processes cannot be hosted on 14 login nodes × 2 cores.
        let est = lm.startup(&bgl, 65_536, &TreeShape::two_deep(1_024, 64));
        assert!(!est.succeeded());
    }
}
