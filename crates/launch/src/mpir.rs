//! The MPIR debugger interface and attach-versus-launch session setup.
//!
//! Parallel debuggers learn about a job's processes through the MPIR interface: the
//! starter process (srun/mpirun) exposes `MPIR_proctable`, and a debugger either
//! *launches* the job under its control or *attaches* to an already-running starter.
//! The BG/L STAT prototype in the paper only supported the launch path — which is why
//! Figure 3's startup time includes launching the application — while the cluster
//! version attaches to running jobs.  This module models both paths on top of the
//! concrete launchers, so sessions can ask "what does it cost to get a tool on this
//! job?" without caring which machine they are on.

use machine::cluster::Cluster;
use simkit::time::SimDuration;
use tbon::topology::TreeShape;

use crate::launcher::{Launcher, StartupEstimate, StartupPhase};
use crate::proctable::ProcessTable;

/// How the tool gets hold of the job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttachMode {
    /// Launch the application under the tool's control (the BG/L prototype's only
    /// mode); the application's own launch cost is part of tool startup.
    LaunchUnderTool,
    /// Attach to an already-running job via its starter process; the application is
    /// already up, so only the tool pieces need to start.
    AttachToRunning,
}

impl AttachMode {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AttachMode::LaunchUnderTool => "launch under tool",
            AttachMode::AttachToRunning => "attach to running job",
        }
    }
}

/// The MPIR-style view of a job a debugger obtains from the starter process.
#[derive(Clone, Debug)]
pub struct MpirSession {
    /// How the session was established.
    pub mode: AttachMode,
    /// The process table describing every MPI task.
    pub proctable: ProcessTable,
    /// Time spent acquiring the table (ptrace attach to the starter, reading the
    /// table out of its address space, or receiving it from the resource manager).
    pub acquisition_cost: SimDuration,
}

impl MpirSession {
    /// The number of tasks the table describes.
    pub fn tasks(&self) -> usize {
        self.proctable.len()
    }

    /// The distinct hosts the tasks run on — what the tool needs in order to know
    /// where daemons must go.
    pub fn hosts(&self) -> Vec<&str> {
        let mut hosts: Vec<&str> = self
            .proctable
            .entries()
            .iter()
            .map(|e| e.host.as_str())
            .collect();
        hosts.dedup();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }
}

/// Establish an MPIR session for a job of `tasks` tasks on `cluster`.
///
/// The acquisition cost models reading one proctable entry per task out of the
/// starter process (attach) or receiving the table the resource manager already built
/// (launch-under-tool, where the cost is accounted in the launcher's system-software
/// phase instead).
pub fn establish_session(cluster: &Cluster, tasks: u64, mode: AttachMode) -> MpirSession {
    let shape = cluster.job(tasks);
    let proctable = ProcessTable::synthetic(
        shape.tasks,
        cluster.tasks_per_compute_node().max(1),
        "/g/g0/user/target_app",
    );
    let acquisition_cost = match mode {
        // ptrace attach to the starter plus one read per entry.
        AttachMode::AttachToRunning => {
            SimDuration::from_millis(35.0) + SimDuration::from_micros(2.0) * shape.tasks
        }
        // The launcher already delivers the table; only a local parse remains.
        AttachMode::LaunchUnderTool => SimDuration::from_micros(0.4) * shape.tasks,
    };
    MpirSession {
        mode,
        proctable,
        acquisition_cost,
    }
}

/// Full tool-startup estimate for a session: the launcher's own phases plus, for the
/// attach path, proctable acquisition (the launch path already includes it).
pub fn session_startup(
    cluster: &Cluster,
    tasks: u64,
    topology: &TreeShape,
    launcher: &dyn Launcher,
    mode: AttachMode,
) -> StartupEstimate {
    let mut estimate = launcher.startup(cluster, tasks, topology);
    match mode {
        AttachMode::AttachToRunning => {
            // The application is already running: its launch cost does not apply, but
            // the tool must acquire the proctable itself.
            let app_launch = estimate.phase(StartupPhase::ApplicationLaunch);
            if !app_launch.is_zero() {
                estimate
                    .phases
                    .retain(|(phase, _)| *phase != StartupPhase::ApplicationLaunch);
            }
            let session = establish_session(cluster, tasks, mode);
            estimate.push(StartupPhase::SystemSoftware, session.acquisition_cost);
        }
        AttachMode::LaunchUnderTool => {}
    }
    estimate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgl::{BglCiodLauncher, CiodPatchLevel};
    use crate::launchmon::LaunchMonLauncher;
    use machine::cluster::BglMode;

    #[test]
    fn session_describes_every_task_and_host() {
        let atlas = Cluster::atlas();
        let session = establish_session(&atlas, 1_024, AttachMode::AttachToRunning);
        assert_eq!(session.tasks(), 1_024);
        // 8 tasks per node -> 128 distinct hosts.
        assert_eq!(session.hosts().len(), 128);
        assert!(session.acquisition_cost > SimDuration::ZERO);
    }

    #[test]
    fn attach_is_cheaper_than_launching_the_application_on_bgl() {
        let bgl = Cluster::bluegene_l(BglMode::CoProcessor);
        let tasks = 65_536;
        let plan = machine::placement::PlacementPlan::for_job(&bgl, tasks);
        let spec = TreeShape::for_placement(&plan, 2);
        let launcher = BglCiodLauncher::new(CiodPatchLevel::Patched);
        let launch = session_startup(&bgl, tasks, &spec, &launcher, AttachMode::LaunchUnderTool);
        let attach = session_startup(&bgl, tasks, &spec, &launcher, AttachMode::AttachToRunning);
        assert!(launch.succeeded() && attach.succeeded());
        assert!(
            attach.total() < launch.total(),
            "attach {:?} should beat launch {:?}",
            attach.total(),
            launch.total()
        );
        assert_eq!(
            attach.phase(StartupPhase::ApplicationLaunch),
            SimDuration::ZERO
        );
    }

    #[test]
    fn attach_mode_costs_scale_with_the_job() {
        let atlas = Cluster::atlas();
        let small = establish_session(&atlas, 512, AttachMode::AttachToRunning);
        let large = establish_session(&atlas, 8_192, AttachMode::AttachToRunning);
        assert!(large.acquisition_cost > small.acquisition_cost);
        let launched = establish_session(&atlas, 8_192, AttachMode::AttachToRunning);
        assert_eq!(launched.tasks(), 8_192);
    }

    #[test]
    fn cluster_attach_startup_remains_interactive() {
        // LaunchMON + attach on Atlas at full scale stays well inside interactive
        // bounds — the point of Section IV.
        let atlas = Cluster::atlas();
        let spec = TreeShape::two_deep(1_152, 34);
        let est = session_startup(
            &atlas,
            atlas.max_tasks(),
            &spec,
            &LaunchMonLauncher::new(),
            AttachMode::AttachToRunning,
        );
        assert!(est.succeeded());
        assert!(
            est.total().as_secs() < 30.0,
            "got {}",
            est.total().as_secs()
        );
    }

    #[test]
    fn mode_labels() {
        assert_eq!(AttachMode::LaunchUnderTool.label(), "launch under tool");
        assert_eq!(AttachMode::AttachToRunning.label(), "attach to running job");
    }
}
