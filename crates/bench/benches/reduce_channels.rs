//! Single-pass multi-channel reduction vs. three sequential walks.
//!
//! The session front end merges three streams per gather (2D tree, 3D tree, rank
//! map).  Before the `reduce_channels` redesign it paid for three full bottom-up
//! walks of the overlay; now all three ride one walk.  This benchmark measures that
//! difference on emulated 64K-endpoint topologies (65,536 back-end daemons, the
//! paper's 2-deep shape and a 3-deep variant), with payloads sized like locally
//! merged ring-hang trees.
//!
//! In-process the reduction is memcpy-bound, so the headline quantity is the
//! *walk count* (level barriers and per-walk overhead paid once instead of three
//! times); on a real distributed TBON each extra walk would also pay the full
//! per-level network latency again.

// Benches are not public API; criterion_group! generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use tbon::filter::{Filter, IdentityFilter};
use tbon::network::{ChannelInput, InProcessTbon};
use tbon::packet::{Packet, PacketTag};
use tbon::topology::{Topology, TreeShape};

const ENDPOINTS: u32 = 65_536;

/// One leaf packet per backend for one channel, `bytes` bytes each.
fn channel_leaves(net: &InProcessTbon, bytes: usize) -> Vec<Packet> {
    let payload = vec![0x5Au8; bytes];
    net.topology()
        .backends()
        .iter()
        .map(|&ep| Packet::new(PacketTag::Custom(0), ep, payload.clone()))
        .collect()
}

fn bench_shape(c: &mut Criterion, label: &str, spec: TreeShape) {
    let net = InProcessTbon::new(Topology::build(spec));
    // Three channels with distinct payload sizes, shaped like a hierarchical
    // session's streams: a small 2D tree, a larger 3D tree, and an 8-byte-per-task
    // rank map chunk.
    let leaves = || {
        [
            channel_leaves(&net, 96),
            channel_leaves(&net, 256),
            channel_leaves(&net, 64),
        ]
    };
    let filters: [&dyn Filter; 3] = [&IdentityFilter, &IdentityFilter, &IdentityFilter];

    let mut group = c.benchmark_group(label);
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(8));

    group.bench_function("three_sequential_walks", |b| {
        b.iter_batched(
            leaves,
            |[a2d, a3d, amap]| {
                let o1 = net.reduce(a2d, &IdentityFilter).expect("leaf counts match");
                let o2 = net.reduce(a3d, &IdentityFilter).expect("leaf counts match");
                let o3 = net
                    .reduce(amap, &IdentityFilter)
                    .expect("leaf counts match");
                (o1, o2, o3)
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("single_pass_reduce_channels", |b| {
        b.iter_batched(
            || {
                let [a2d, a3d, amap] = leaves();
                vec![
                    ChannelInput::new("2d-tree", a2d),
                    ChannelInput::new("3d-tree", a3d),
                    ChannelInput::new("rank-map", amap),
                ]
            },
            |channels| {
                net.reduce_channels(channels, &filters)
                    .expect("leaf counts match")
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

fn bench_single_pass_vs_sequential(c: &mut Criterion) {
    bench_shape(
        c,
        "reduce_64k_endpoints_2deep",
        TreeShape::two_deep(ENDPOINTS, 256),
    );
    bench_shape(
        c,
        "reduce_64k_endpoints_3deep",
        TreeShape::three_deep(ENDPOINTS, 16, 1_024),
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default();
    targets = bench_single_pass_vs_sequential
);
criterion_main!(benches);
