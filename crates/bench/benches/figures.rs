//! Criterion wrappers around one representative point of each figure's harness, so
//! `cargo bench` exercises every experiment path end to end (full sweeps live in the
//! `fig*` binaries and `make_all`).

// Benches are not public API; criterion_group! generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};

use launch::{BglCiodLauncher, CiodPatchLevel, LaunchMonLauncher, Launcher};
use machine::cluster::{BglMode, Cluster};
use machine::placement::PlacementPlan;
use stackwalk::sampler::{BinaryPlacement, SamplingCostModel};
use stat_core::prelude::*;
use tbon::topology::TreeShape;

fn bench_startup_models(c: &mut Criterion) {
    let atlas = Cluster::atlas();
    let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
    c.bench_function("fig02_point_launchmon_512_daemons", |b| {
        let launcher = LaunchMonLauncher::new();
        b.iter(|| launcher.startup(&atlas, 4_096, &TreeShape::flat(512)))
    });
    c.bench_function("fig03_point_bgl_208k_patched", |b| {
        let launcher = BglCiodLauncher::new(CiodPatchLevel::Patched);
        let plan = PlacementPlan::for_job(&bgl, 212_992);
        let spec = TreeShape::for_placement(&plan, 2);
        b.iter(|| launcher.startup(&bgl, 212_992, &spec))
    });
}

fn bench_merge_models(c: &mut Criterion) {
    let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
    c.bench_function("fig05_point_original_208k", |b| {
        let est = PhaseEstimator::new(bgl.clone(), Representation::GlobalBitVector);
        b.iter(|| est.merge_estimate(212_992, 2))
    });
    c.bench_function("fig07_point_optimized_208k", |b| {
        let est = PhaseEstimator::new(bgl.clone(), Representation::HierarchicalTaskList);
        b.iter(|| est.merge_estimate(212_992, 2))
    });
}

fn bench_sampling_models(c: &mut Criterion) {
    let atlas = Cluster::atlas();
    c.bench_function("fig10_point_sbrs_1024_tasks", |b| {
        let model = SamplingCostModel::new(atlas.clone());
        b.iter(|| model.estimate(1_024, BinaryPlacement::RelocatedRamDisk, 1))
    });
    let bgl = Cluster::bluegene_l(BglMode::VirtualNode);
    c.bench_function("fig09_point_bgl_208k_nfs", |b| {
        let model = SamplingCostModel::new(bgl.clone());
        b.iter(|| model.estimate(212_992, BinaryPlacement::NfsHome, 1))
    });
}

fn bench_real_session(c: &mut Criterion) {
    c.bench_function("real_session_ring_hang_512_tasks", |b| {
        let app = appsim::RingHangApp::new(512, appsim::FrameVocabulary::BlueGeneL);
        let session = Session::builder(Cluster::test_cluster(64, 8))
            .samples_per_task(3)
            .build();
        b.iter(|| session.attach(&app).expect("the session merges cleanly"))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets =     bench_startup_models,
    bench_merge_models,
    bench_sampling_models,
    bench_real_session
);
criterion_main!(benches);
