//! Criterion micro-benchmarks of the task-set representations: union, concatenation
//! (rebase) and the front-end remap step.

// Benches are not public API; criterion_group! generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use stat_core::prelude::*;

fn bench_dense_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_union");
    for tasks in [8_192u64, 212_992] {
        let mut a = DenseBitVector::empty(tasks);
        let mut b = DenseBitVector::empty(tasks);
        for i in (0..tasks).step_by(3) {
            a.insert(i);
        }
        for i in (1..tasks).step_by(3) {
            b.insert(i);
        }
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |bench, _| {
            bench.iter(|| {
                let mut acc = a.clone();
                acc.union_in_place(&b);
                acc
            })
        });
    }
    group.finish();
}

fn bench_subtree_concat(c: &mut Criterion) {
    let mut group = c.benchmark_group("subtree_concatenate");
    for local in [64u64, 1_024, 106_496] {
        let mut a = SubtreeTaskList::empty(local);
        let mut b = SubtreeTaskList::empty(local);
        for i in 0..local {
            a.insert(i);
            if i % 2 == 0 {
                b.insert(i);
            }
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(local),
            &local,
            |bench, &local| {
                bench.iter(|| {
                    let mut left = a.clone();
                    let mut right = b.clone();
                    left.rebase(0, local * 2);
                    right.rebase(local, local * 2);
                    left.union_in_place(&right);
                    left
                })
            },
        );
    }
    group.finish();
}

/// The rank map the front end actually sees: positions arrive in daemon
/// (TBON child) order, each daemon's block of ranks contiguous and ascending,
/// with the daemon blocks themselves permuted.  BG/L VN shape: 128 tasks per
/// I/O-node daemon.
fn blocked_rank_map(tasks: u64, tasks_per_daemon: u64) -> Vec<u64> {
    let daemons = tasks / tasks_per_daemon;
    (0..tasks)
        .map(|pos| {
            let daemon = pos / tasks_per_daemon;
            let local = pos % tasks_per_daemon;
            (daemons - 1 - daemon) * tasks_per_daemon + local
        })
        .collect()
}

fn bench_remap(c: &mut Criterion) {
    // The realistic front-end workload (daemon-blocked rank map) — the series
    // `results/BENCH_merge.md` tracks.
    let mut group = c.benchmark_group("remap_to_rank_order");
    group.sample_size(10);
    for tasks in [8_192u64, 212_992] {
        let mut set = SubtreeTaskList::empty(tasks);
        for i in 0..tasks {
            set.insert(i);
        }
        let map = blocked_rank_map(tasks, 128);
        group.bench_with_input(
            BenchmarkId::from_parameter(tasks),
            &tasks,
            |bench, &tasks| bench.iter(|| set.remap_to_dense(&map, tasks)),
        );
    }
    group.finish();

    // The adversarial map (every position reverses): no contiguous runs at all.
    let mut group = c.benchmark_group("remap_to_rank_order_scattered");
    group.sample_size(10);
    for tasks in [8_192u64, 212_992] {
        let mut set = SubtreeTaskList::empty(tasks);
        for i in 0..tasks {
            set.insert(i);
        }
        let map: Vec<u64> = (0..tasks).rev().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(tasks),
            &tasks,
            |bench, &tasks| bench.iter(|| set.remap_to_dense(&map, tasks)),
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dense_union, bench_subtree_concat, bench_remap);
criterion_main!(benches);
