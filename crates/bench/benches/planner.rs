//! Criterion micro-benchmarks of cost-model-driven topology planning.
//!
//! `TopologyPlanner::plan` enumerates the full fan-in × depth candidate grid,
//! builds each candidate tree, prices it with the reduction cost model and ranks
//! the results — all of which must stay cheap enough to run inside a session's
//! attach path.  Timed at the paper's scales and beyond: 64K tasks, the 208K
//! headline point, and the extrapolated million-core machine.

// Benches are not public API; criterion_group! generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use machine::cluster::{BglMode, Cluster};
use tbon::planner::TopologyPlanner;

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_plan");
    let planner = TopologyPlanner::new(Cluster::bluegene_l(BglMode::VirtualNode));
    for tasks in [65_536u64, 212_992, 1_048_576] {
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let pick = planner.plan(tasks);
                assert!(pick.feasible);
                pick
            })
        });
    }
    group.finish();
}

fn bench_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_rank_full_grid");
    let planner = TopologyPlanner::new(Cluster::bluegene_l(BglMode::VirtualNode));
    for tasks in [212_992u64, 1_048_576] {
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| planner.rank(tasks))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_plan, bench_rank);
criterion_main!(benches);
