//! Quiescent-wave incremental fold vs. full re-reduce at 64K endpoints.
//!
//! A streaming session maintains the job-wide temporal tree across waves.  The
//! naive way is to re-reduce every daemon's *full* cumulative tree through the
//! overlay each wave; the delta path ships only what changed and folds it into
//! per-node resident state.  On a **quiescent** wave — the common case for a
//! hung job, where nothing moves between samples — the deltas are root-only
//! stubs, so the incremental path's work collapses while the full re-reduce
//! still pays for every byte of every cumulative tree.
//!
//! This bench pins that gap on the paper's 2-deep 65,536-endpoint overlay
//! (65,536 back-end daemons under 256 communication processes), with leaf
//! payloads shaped like locally merged ring-hang trees.  The acceptance bar
//! (`results/BENCH_streaming.md`) is ≥5× in favour of the incremental fold.

// Benches are not public API; criterion_group! generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use stackwalk::{FrameDictionary, FrameTable, StackTrace};
use stat_core::prelude::{encode_tree, StatMergeFilter, SubtreePrefixTree, SubtreeTaskList};
use stat_core::streaming::TreeResidentFactory;
use tbon::delta::IncrementalTbon;
use tbon::packet::{Packet, PacketTag};
use tbon::topology::{Topology, TreeShape};

const ENDPOINTS: u32 = 65_536;

/// One daemon's cumulative local 3D tree: a ring-hang-shaped call path with a
/// little per-daemon variety so the merged tree carries a few dozen classes.
fn cumulative_payload(daemon: usize, table: &mut FrameTable, dict: &FrameDictionary) -> Vec<u8> {
    let mut tree = SubtreePrefixTree::new_subtree(1);
    let tail = format!("poll_depth_{}", daemon % 48);
    let trace = StackTrace::new(table.intern_path(&[
        "_start",
        "main",
        "PMPI_Barrier",
        "MPIR_Barrier_impl",
        "MPIR_Barrier_intra",
        "MPID_Progress_wait",
        "MPIDI_CH3I_Progress",
        &tail,
    ]));
    tree.add_trace(&trace, 0);
    let timer = StackTrace::new(table.intern_path(&["_start", "main", "timer_handler"]));
    tree.add_trace(&timer, 0);
    encode_tree(&tree, table, dict)
}

/// A quiescent wave's delta: the wave tree minus the cumulative tree, which is
/// an empty single-task stub.
fn quiescent_payload(table: &mut FrameTable, dict: &FrameDictionary) -> Vec<u8> {
    let tree = SubtreePrefixTree::new_subtree(1);
    encode_tree(&tree, table, dict)
}

fn bench_quiescent_wave(c: &mut Criterion) {
    let topology = Topology::build(TreeShape::two_deep(ENDPOINTS, 256));
    let filter = StatMergeFilter::<SubtreeTaskList>::new();

    let mut table = FrameTable::new();
    let dict = FrameDictionary::default();
    let full_leaves: Vec<Packet> = topology
        .backends()
        .iter()
        .enumerate()
        .map(|(i, &ep)| {
            Packet::new(
                PacketTag::Merged3d,
                ep,
                cumulative_payload(i, &mut table, &dict),
            )
        })
        .collect();
    let stub = quiescent_payload(&mut table, &dict);
    let delta_leaves: Vec<Packet> = topology
        .backends()
        .iter()
        .map(|&ep| Packet::new(PacketTag::TreeDelta, ep, stub.clone()))
        .collect();

    // The resident state a mid-stream session carries: every node has already
    // folded one full wave.  Quiescent folds leave it unchanged, so one
    // seeded network serves every measured iteration.
    let net = tbon::network::InProcessTbon::new(topology.clone());
    let mut incremental =
        IncrementalTbon::new(topology, TreeResidentFactory::<SubtreeTaskList>::new());
    let seed: Vec<Packet> = full_leaves
        .iter()
        .map(|p| Packet::new(PacketTag::TreeDelta, p.source, p.payload.clone()))
        .collect();
    incremental
        .fold_wave(seed, &filter)
        .expect("seeding the resident state succeeds");

    let mut group = c.benchmark_group("streaming_64k_quiescent_wave");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(8));

    group.bench_function("full_rereduce", |b| {
        b.iter_batched(
            || full_leaves.clone(),
            |leaves| net.reduce(leaves, &filter).expect("leaf counts match"),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("incremental_fold", |b| {
        b.iter_batched(
            || delta_leaves.clone(),
            |deltas| {
                incremental
                    .fold_wave(deltas, &filter)
                    .expect("leaf counts match")
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default();
    targets = bench_quiescent_wave
);
criterion_main!(benches);
