//! Wire-format v2 vs. the v1 string format on a 64K-endpoint gather wave.
//!
//! Every daemon in a hierarchical gather serialises its locally merged subtree
//! tree once per wave, and every byte it emits crosses the overlay's slowest
//! links.  This bench pins both sides of the v2 trade at the paper's 65,536-task
//! scale: encode wall time for a full wave of daemon trees under the
//! session-dictionary varint format and under the legacy per-node string
//! format, plus the v2 decode cost the communication processes pay.
//!
//! The byte totals themselves (the ≥3× acceptance bar) are pinned by
//! `tests/wire.rs` and recorded in `results/BENCH_wire.md`.

// Benches are not public API; criterion_group! generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};

use appsim::{Application, FrameVocabulary, RingHangApp};
use stackwalk::{FrameDictionary, FrameTable, Walker};
use stat_core::prelude::*;
use stat_core::serialize::encode_tree_v1;

const TASKS: u64 = 65_536;
const DAEMONS: u64 = 1_024;

/// One locally merged subtree tree per daemon for the 64K ring hang — the wave
/// of payloads a gather actually serialises.
fn build_daemon_trees(table: &mut FrameTable) -> Vec<SubtreePrefixTree> {
    let app = RingHangApp::new(TASKS, FrameVocabulary::BlueGeneL);
    let mut walker = Walker::new();
    let local = TASKS / DAEMONS;
    (0..DAEMONS)
        .map(|d| {
            let mut tree = SubtreePrefixTree::new_subtree(local);
            for pos in 0..local {
                let path = app.main_thread_path(d * local + pos, 0);
                let trace = walker.walk(table, &path);
                tree.add_trace(&trace, pos);
            }
            tree
        })
        .collect()
}

fn bench_gather_wave(c: &mut Criterion) {
    let mut table = FrameTable::new();
    let trees = build_daemon_trees(&mut table);
    let dict = FrameDictionary::negotiate(
        RingHangApp::new(TASKS, FrameVocabulary::BlueGeneL).frame_hints(),
    );
    let packets: Vec<Vec<u8>> = trees
        .iter()
        .map(|t| encode_tree(t, &table, &dict))
        .collect();

    let mut group = c.benchmark_group("wire_64k_gather_wave");
    group.sample_size(20);

    group.bench_function("encode_v2_dictionary_varint", |b| {
        b.iter(|| {
            trees
                .iter()
                .map(|t| encode_tree(t, &table, &dict).len())
                .sum::<usize>()
        })
    });

    group.bench_function("encode_v1_string_format", |b| {
        b.iter(|| {
            trees
                .iter()
                .map(|t| {
                    encode_tree_v1(t, &table)
                        .expect("paper vocabulary fits v1")
                        .len()
                })
                .sum::<usize>()
        })
    });

    group.bench_function("decode_v2", |b| {
        b.iter(|| {
            packets
                .iter()
                .map(|p| {
                    let (tree, _frames): (SubtreePrefixTree, WireFrames) =
                        decode_tree(p).expect("round trip");
                    tree.node_count()
                })
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default();
    targets = bench_gather_wave
);
criterion_main!(benches);
