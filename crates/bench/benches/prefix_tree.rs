//! Criterion micro-benchmarks of the prefix-tree operations every experiment rests
//! on: building daemon-local trees, merging them, and serialising them for the TBON.

// Benches are not public API; criterion_group! generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use appsim::{Application, FrameVocabulary, RingHangApp};
use stackwalk::{FrameTable, Walker};
use stat_core::prelude::*;

fn build_tree(tasks: u64, table: &mut FrameTable) -> GlobalPrefixTree {
    let app = RingHangApp::new(tasks, FrameVocabulary::BlueGeneL);
    let mut walker = Walker::new();
    let mut tree = GlobalPrefixTree::new_global(tasks);
    for rank in 0..tasks {
        let path = app.main_thread_path(rank, 0);
        let trace = walker.walk(table, &path);
        tree.add_trace(&trace, rank);
    }
    tree
}

/// One locally merged subtree tree per daemon, in daemon order — the input wave a
/// level of the hierarchical merge actually sees.
fn build_daemon_trees(tasks: u64, daemons: u64, table: &mut FrameTable) -> Vec<SubtreePrefixTree> {
    let app = RingHangApp::new(tasks, FrameVocabulary::BlueGeneL);
    let mut walker = Walker::new();
    let local = tasks / daemons;
    (0..daemons)
        .map(|d| {
            let mut tree = SubtreePrefixTree::new_subtree(local);
            for pos in 0..local {
                let path = app.main_thread_path(d * local + pos, 0);
                let trace = walker.walk(table, &path);
                tree.add_trace(&trace, pos);
            }
            tree
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_tree_build");
    for tasks in [128u64, 1_024, 8_192] {
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let mut table = FrameTable::new();
                build_tree(tasks, &mut table)
            })
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_tree_merge");
    for tasks in [1_024u64, 8_192] {
        let mut table = FrameTable::new();
        let left = build_tree(tasks, &mut table);
        let right = build_tree(tasks, &mut table);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            b.iter(|| {
                let mut acc = left.clone();
                acc.merge_ref(&right);
                acc
            })
        });
    }
    group.finish();
}

/// The hierarchical merge chain: fold one subtree tree per daemon into the job-wide
/// merged tree, exactly what a comm process (and ultimately the front end) does.
/// This is the hot path ISSUE 4 rewrites; `results/BENCH_merge.md` tracks it.
fn bench_hierarchical_merge_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_merge_chain");
    for (tasks, daemons) in [(1_024u64, 8u64), (8_192, 64)] {
        let mut table = FrameTable::new();
        let trees = build_daemon_trees(tasks, daemons, &mut table);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, _| {
            b.iter_batched(
                || trees.clone(),
                |mut waves| {
                    let mut acc = waves.remove(0);
                    for tree in waves {
                        acc.merge(tree);
                    }
                    acc
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut table = FrameTable::new();
    let tree = build_tree(4_096, &mut table);
    let dict = FrameDictionary::negotiate(
        RingHangApp::new(4_096, FrameVocabulary::BlueGeneL).frame_hints(),
    );
    c.bench_function("prefix_tree_encode_4096", |b| {
        b.iter(|| encode_tree(&tree, &table, &dict))
    });
    let bytes = encode_tree(&tree, &table, &dict);
    c.bench_function("prefix_tree_decode_4096", |b| {
        b.iter(|| decode_tree::<DenseBitVector>(&bytes).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_build, bench_merge, bench_hierarchical_merge_chain, bench_encode_decode);
criterion_main!(benches);
