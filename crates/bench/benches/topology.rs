//! Criterion micro-benchmarks of topology construction and the in-process TBON.

// Benches are not public API; criterion_group! generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tbon::filter::SumFilter;
use tbon::network::InProcessTbon;
use tbon::packet::{Packet, PacketTag};
use tbon::topology::{Topology, TreeShape};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_build");
    for daemons in [128u32, 1_664, 16_384] {
        group.bench_with_input(
            BenchmarkId::from_parameter(daemons),
            &daemons,
            |b, &daemons| {
                b.iter(|| {
                    let t = Topology::build(TreeShape::balanced(daemons, 3));
                    assert!(t.validate().is_ok());
                    t
                })
            },
        );
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tbon_sum_reduction");
    for daemons in [64u32, 1_664] {
        let topo = Topology::build(TreeShape::two_deep(daemons, 28));
        let net = InProcessTbon::new(topo);
        group.bench_with_input(BenchmarkId::from_parameter(daemons), &daemons, |b, _| {
            b.iter(|| {
                let leaves: Vec<Packet> = net
                    .topology()
                    .backends()
                    .iter()
                    .enumerate()
                    .map(|(i, &ep)| {
                        Packet::new(PacketTag::Custom(0), ep, SumFilter::encode(i as u64))
                    })
                    .collect();
                net.reduce(leaves, &SumFilter).expect("leaf counts match")
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_build, bench_reduction);
criterion_main!(benches);
