//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These are not figures from the paper; they isolate individual design decisions —
//! tree depth/fan-out, task-set representation, the `strcat` process-table packing,
//! and the Section VII threading projection — so that each lesson can be examined on
//! its own rather than only in the composed end-to-end experiments.

use appsim::{FrameVocabulary, RingHangApp};
use launch::{pack_indexed, pack_naive, ProcessTable};
use machine::cluster::{BglMode, Cluster};
use simkit::stats::SeriesTable;
use stat_core::prelude::*;
use tbon::topology::TreeShape;

/// Sweep tree depth (1–6 levels of balanced fan-out) at a fixed job size and report
/// the estimated merge time and front-end byte load for each.
pub fn ablation_topology(tasks: u64) -> SeriesTable {
    let cluster = Cluster::bluegene_l(BglMode::CoProcessor);
    let estimator = PhaseEstimator::new(cluster.clone(), Representation::GlobalBitVector);
    let shape = cluster.job(tasks);
    let mut table = SeriesTable::new(
        format!("Ablation: tree depth at {tasks} tasks (original bit vector)"),
        "tree depth",
        "seconds / bytes",
    );
    for depth in 1..=6u32 {
        let spec = TreeShape::balanced(shape.daemons, depth);
        let topo = tbon::topology::Topology::build(spec);
        let model = tbon::cost::ReductionCostModel::standard(
            &topo,
            &cluster.interconnect,
            cluster.login_host_slowdown(),
            cluster.daemon_host_slowdown(),
        );
        let edges = estimator.tree_edges_2d + estimator.tree_edges_3d;
        let label_bytes = shape.tasks.div_ceil(8) + 8;
        let cost = model.reduce(&|_, _| edges * label_bytes + estimator.frame_names_bytes);
        table.push("merge seconds", depth as u64, cost.critical_path.as_secs());
        table.push(
            "front-end megabytes in",
            depth as u64,
            cost.frontend_bytes_in as f64 / 1.0e6,
        );
        table.push(
            "max fan-out",
            depth as u64,
            tbon::topology::Topology::build(TreeShape::balanced(shape.daemons, depth)).max_fanout()
                as f64,
        );
    }
    table.note(format!(
        "job shape: {} daemons, {} tasks",
        shape.daemons, shape.tasks
    ));
    table
}

/// Sweep the task-set representation against job size and report both modelled merge
/// time and *real* serialised packet sizes from real daemon-local trees.
pub fn ablation_bitvector() -> SeriesTable {
    let cluster = Cluster::bluegene_l(BglMode::VirtualNode);
    let mut table = SeriesTable::new(
        "Ablation: task-set representation (2-deep BG/L VN)",
        "tasks",
        "seconds / bytes",
    );
    for representation in [
        Representation::GlobalBitVector,
        Representation::HierarchicalTaskList,
    ] {
        let estimator = PhaseEstimator::new(cluster.clone(), representation);
        for tasks in [8_192u64, 32_768, 131_072, 212_992] {
            let est = estimator.merge_estimate(tasks, 2);
            table.push(
                format!("{} merge seconds", representation.label()),
                tasks,
                est.time.as_secs(),
            );
            table.push(
                format!("{} front-end MB", representation.label()),
                tasks,
                est.frontend_bytes as f64 / 1.0e6,
            );
        }
    }
    // Real packet sizes from one daemon's locally merged trees (the largest scale
    // is shrunk under `STATBENCH_FAST`).
    for tasks in [8_192u64, 32_768, crate::scaled(131_072, 65_536)] {
        let app = RingHangApp::new(tasks, FrameVocabulary::BlueGeneL);
        let dict = stackwalk::FrameDictionary::negotiate(appsim::Application::frame_hints(&app));
        let daemons = StatDaemon::partition(tasks, cluster.daemons_for(tasks));
        let daemon = &daemons[0];
        let dense =
            daemon.contribute::<DenseBitVector>(&app, 3, tbon::packet::EndpointId(1), &dict);
        let hier =
            daemon.contribute::<SubtreeTaskList>(&app, 3, tbon::packet::EndpointId(1), &dict);
        table.push(
            "real daemon packet bytes (original)",
            tasks,
            dense.tree_3d.size_bytes() as f64,
        );
        table.push(
            "real daemon packet bytes (optimized)",
            tasks,
            hier.tree_3d.size_bytes() as f64,
        );
    }
    table.note("real packet sizes come from serialising one daemon's actual 3D tree".to_string());
    table
}

/// The `strcat` pathology measured on real data: wall-clock time of the naive versus
/// indexed process-table packers.
pub fn ablation_proctable() -> SeriesTable {
    let mut table = SeriesTable::new(
        "Ablation: process-table packing (real execution)",
        "entries",
        "milliseconds",
    );
    // The largest (quadratic-cost) point is dropped under `STATBENCH_FAST`; the
    // slope is still unmistakable from the remaining decade and a half.
    let mut scales = vec![1_000u64, 4_000, 16_000];
    if !crate::fast_mode() {
        scales.push(64_000);
    }
    for entries in scales {
        let pt = ProcessTable::synthetic(entries, 64, "/g/g0/user/ring_test_bgl");
        let start = std::time::Instant::now();
        let naive = pack_naive(&pt);
        let naive_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = std::time::Instant::now();
        let indexed = pack_indexed(&pt);
        let indexed_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(naive, indexed);
        table.push("strcat-style (unpatched)", entries, naive_ms);
        table.push("indexed append (patched)", entries, indexed_ms);
    }
    if let (Some(n), Some(i)) = (
        table.loglog_slope("strcat-style (unpatched)"),
        table.loglog_slope("indexed append (patched)"),
    ) {
        table.note(format!(
            "log-log slopes: strcat {n:.2} (≈2 = quadratic), indexed {i:.2} (≈1 = linear)"
        ));
    }
    table
}

/// The Section VII threading projection: measured per-daemon data growth plus
/// projected sampling and merge times as threads per task increase.
pub fn ablation_threads() -> SeriesTable {
    let cluster = Cluster::bluegene_l(BglMode::CoProcessor);
    let mut table = SeriesTable::new(
        "Ablation: threads per task (Section VII projection)",
        "threads per task",
        "mixed units",
    );
    let worker_threads = [0u32, 1, 3, 7, 15];
    for m in measure_thread_scaling(8, &worker_threads, 3) {
        table.push(
            "real traces per daemon",
            m.threads_per_task as u64,
            m.traces_gathered as f64,
        );
        table.push(
            "real tree bytes per daemon",
            m.threads_per_task as u64,
            m.tree_bytes as f64,
        );
    }
    let counts: Vec<u32> = worker_threads.iter().map(|w| w + 1).collect();
    for p in project_thread_counts(&cluster, 65_536, &counts, 5) {
        table.push(
            "projected sampling seconds",
            p.threads_per_task as u64,
            p.sampling.as_secs(),
        );
        table.push(
            "projected merge seconds",
            p.threads_per_task as u64,
            p.merge.as_secs(),
        );
    }
    table.note(
        "sampling grows roughly linearly with threads (constant per-thread cost); the merge \
         grows far more slowly because the TBON absorbs the extra volume"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_trees_reduce_frontend_load() {
        let table = ablation_topology(65_536);
        let flat_mb = table.value_at("front-end megabytes in", 1).unwrap();
        let deep_mb = table.value_at("front-end megabytes in", 3).unwrap();
        assert!(flat_mb > deep_mb);
        let flat_fanout = table.value_at("max fan-out", 1).unwrap();
        let deep_fanout = table.value_at("max fan-out", 3).unwrap();
        assert!(flat_fanout > deep_fanout);
    }

    #[test]
    fn representation_ablation_shows_the_gap_in_real_packets() {
        let table = ablation_bitvector();
        let largest = crate::scaled(131_072, 65_536);
        let dense = table
            .value_at("real daemon packet bytes (original)", largest)
            .unwrap();
        let hier = table
            .value_at("real daemon packet bytes (optimized)", largest)
            .unwrap();
        assert!(dense / hier > 50.0, "got {dense} vs {hier}");
    }

    #[test]
    fn proctable_ablation_measures_a_quadratic() {
        let table = ablation_proctable();
        let slope_note = table
            .notes()
            .iter()
            .find(|n| n.contains("log-log slopes"))
            .expect("slope note present");
        assert!(slope_note.contains("strcat"));
    }

    #[test]
    fn thread_ablation_covers_measured_and_projected_series() {
        let table = ablation_threads();
        assert!(table.value_at("real traces per daemon", 8).unwrap() > 0.0);
        assert!(table.value_at("projected merge seconds", 8).unwrap() > 0.0);
    }
}
