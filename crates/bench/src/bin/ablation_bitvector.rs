//! Ablation: task-set representation sweep (modelled and real packet sizes).
fn main() {
    println!("{}", stat_bench::ablation_bitvector());
}
