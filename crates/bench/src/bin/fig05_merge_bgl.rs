//! Regenerates one figure of the paper; see the library docs for details.
fn main() {
    println!("{}", stat_bench::fig05_merge_bgl());
}
