//! Ablation: how tree depth / fan-out changes merge time at a fixed job size.
fn main() {
    let tasks = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(65_536);
    println!("{}", stat_bench::ablation_topology(tasks));
}
