//! STATBench class-count stress sweep at a fixed job size (companion to
//! `statbench_sweep`, which sweeps the job size instead).
use machine::Cluster;
use statbench::{sweep_equivalence_classes, SweepConfig};

fn main() {
    let tasks = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4_096);
    let config = SweepConfig::new(Cluster::test_cluster(1_024, 8));
    println!(
        "{}",
        sweep_equivalence_classes(&config, tasks, &[1, 4, 16, 64, 256, 1_024])
    );
}
