//! Regenerates every figure and ablation, writing one text file per experiment under
//! `results/` and printing everything to stdout as well.
use std::fs;
use std::path::Path;

fn emit(dir: &Path, name: &str, contents: &str) {
    let path = dir.join(format!("{name}.txt"));
    fs::write(&path, contents).expect("write result file");
    println!("{contents}");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results directory");

    let (dot, summary) = stat_bench::fig01_prefix_tree(1_024);
    emit(dir, "fig01_prefix_tree", &format!("{summary}\n{dot}"));
    emit(
        dir,
        "fig02_startup_atlas",
        &stat_bench::fig02_startup_atlas().to_string(),
    );
    emit(
        dir,
        "fig03_startup_bgl",
        &stat_bench::fig03_startup_bgl().to_string(),
    );
    emit(
        dir,
        "fig04_merge_atlas",
        &stat_bench::fig04_merge_atlas().to_string(),
    );
    emit(
        dir,
        "fig05_merge_bgl",
        &stat_bench::fig05_merge_bgl().to_string(),
    );
    emit(
        dir,
        "fig06_bitvector_demo",
        &stat_bench::fig06_bitvector_demo().to_string(),
    );
    emit(
        dir,
        "fig07_merge_optimized",
        &stat_bench::fig07_merge_optimized().to_string(),
    );
    emit(
        dir,
        "fig08_sampling_atlas",
        &stat_bench::fig08_sampling_atlas().to_string(),
    );
    emit(
        dir,
        "fig09_sampling_bgl",
        &stat_bench::fig09_sampling_bgl().to_string(),
    );
    emit(
        dir,
        "fig10_sampling_sbrs",
        &stat_bench::fig10_sampling_sbrs().to_string(),
    );
    emit(
        dir,
        "ablation_topology",
        &stat_bench::ablation_topology(65_536).to_string(),
    );
    emit(
        dir,
        "ablation_bitvector",
        &stat_bench::ablation_bitvector().to_string(),
    );
    emit(
        dir,
        "ablation_proctable",
        &stat_bench::ablation_proctable().to_string(),
    );
    emit(
        dir,
        "ablation_threads",
        &stat_bench::ablation_threads().to_string(),
    );
}
