//! Regenerate the fault-campaign artifacts: `results/CAMPAIGN.md` (the
//! verdict-stability surface plus the class-saturated depth-crossover study) and
//! `results/campaign_surface.csv` (one row per campaign cell).
//!
//! Everything here is deterministic — the campaign grid, the seeds, and the cost
//! model carry no wall-clock or host dependence — so the committed artifacts
//! reproduce bit-for-bit with:
//!
//! ```text
//! cargo run --release -p stat-bench --bin campaign_surface
//! ```
//!
//! `STATBENCH_FAST=1` shrinks the grid (fewer seeds, one scale) for smoke runs;
//! the committed artifacts come from the full grid.

use std::fs;
use std::path::Path;

use appsim::FrameVocabulary;
use machine::cluster::{BglMode, Cluster};
use simkit::stats::SeriesTable;
use stat_core::prelude::Representation;
use statbench::campaign::{run_campaign, CampaignConfig};
use statbench::{sweep_tree_shapes, sweep_tree_shapes_saturated};

/// `writeln!` into a report `String` without a `Result` to discard (appending
/// to a `String` cannot fail; the per-line `format!` allocation is noise next
/// to running the campaign itself).
macro_rules! out_line {
    ($out:expr, $($arg:tt)*) => {{
        $out.push_str(&format!($($arg)*));
        $out.push('\n');
    }};
}

/// Minimum-cost series label at one scale of a tree-shape sweep.
fn winner(table: &SeriesTable, tasks: u64) -> (String, f64) {
    table
        .series_names()
        .iter()
        .filter_map(|name| table.value_at(name, tasks).map(|v| (name.to_string(), v)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("the sweep emitted rows at this scale")
}

fn main() {
    let fast = stat_bench::fast_mode();
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results directory");

    // ---- the campaign grid -----------------------------------------------------
    let config = CampaignConfig {
        cluster: Cluster::test_cluster(512, 8),
        vocab: FrameVocabulary::BlueGeneL,
        seeds: if fast { vec![1] } else { vec![1, 2, 3] },
        scales: if fast {
            vec![1_024]
        } else {
            vec![1_024, 4_096]
        },
        depths: vec![2, 3],
        samples_per_task: 2,
        randomized_per_seed: 2,
        include_degraded: true,
        include_catalogue: true,
        catalogue_filter: None,
        representation: Representation::HierarchicalTaskList,
        latency_waves: 4,
        latency_fault_wave: 2,
    };
    let surface = run_campaign(&config);

    let csv_path = dir.join("campaign_surface.csv");
    fs::write(&csv_path, surface.to_csv()).expect("write campaign CSV");
    eprintln!("wrote {}", csv_path.display());

    // ---- the saturated depth-crossover study ------------------------------------
    let cluster = Cluster::bluegene_l(BglMode::VirtualNode);
    let knee = 4_194_304u64;
    let scales = [4_194_304u64, 16_777_216, 33_554_432, 67_108_864];
    let plain = sweep_tree_shapes(&cluster, &scales);
    let saturated = sweep_tree_shapes_saturated(&cluster, &scales, knee);

    let mut crossover = String::new();
    out_line!(
        crossover,
        "| tasks | unsaturated winner | predicted (s) | saturated winner | predicted (s) |"
    );
    out_line!(crossover, "|---|---|---|---|---|");
    for &tasks in &scales {
        let (p_label, p_cost) = winner(&plain, tasks);
        let (s_label, s_cost) = winner(&saturated, tasks);
        out_line!(
            crossover,
            "| {tasks} | {p_label} | {p_cost:.3} | {s_label} | {s_cost:.3} |"
        );
    }

    // ---- the report --------------------------------------------------------------
    let mut md = String::new();
    out_line!(md, "# Randomized fault campaigns\n");
    out_line!(
        md,
        "A campaign sweeps the deterministic fault-scenario catalogue *and* \
         seed-derived randomized scenarios (random fault ranks and flavors, random \
         daemon loss, random mid-tree filter corruption) across a grid of seeds × \
         scales × overlay depths × healthy/degraded overlays.  Every cell runs \
         through the real `Session` → `run_scenario_in` pipeline and is judged \
         against its machine-checkable ground truth; mid-tree corruption cells are \
         judged **inverted** — they pass only when the poison is *detected* (a \
         failed verdict or a typed decode error), never when the poisoned diagnosis \
         sails through clean.\n"
    );
    out_line!(md, "## Seed protocol\n");
    out_line!(
        md,
        "Randomized scenarios come from `appsim::randomized_scenarios(tasks, vocab, \
         seed, count)`: draw `i` forks a child RNG from the campaign seed \
         (`DeterministicRng::new(seed).fork(i)`), so scenario `i` is a pure function \
         of `(tasks, vocab, seed, i)` — prefix-stable, platform-independent, and \
         independent of how many scenarios the batch requests after it.  The same \
         `CampaignConfig` therefore reproduces the same `StabilitySurface` cell for \
         cell (a property pinned by `tests/campaigns.rs`).  This surface used seeds \
         {:?} over scales {:?}, depths {:?}, {} samples/task, {} randomized \
         scenarios per seed.\n",
        config.seeds,
        config.scales,
        config.depths,
        config.samples_per_task,
        config.randomized_per_seed
    );
    out_line!(md, "## Reproducing a cell\n");
    out_line!(
        md,
        "Each row of [`campaign_surface.csv`](campaign_surface.csv) names its \
         scenario, seed, scale, depth and overlay.  To re-run one cell: regenerate \
         the scenario (`randomized_scenarios(tasks, vocab, seed, i + 1)[i]`, or \
         `catalogue(tasks, vocab)` for seedless rows; the draw index `i` is the \
         number in the scenario name, e.g. `rand_stall_s2_0` is seed 2, draw 0), \
         re-derive the degraded variant with `with_overlay(BackendFromEnd(0))` if \
         the row says `degraded=true` and the name has no `_degraded` suffix, then \
         run it through `EmulatedJob::new(cluster, tasks)\
         .with_tree_depth(depth).with_samples_per_task(samples).run_scenario(..)`. \
         `cargo run --example campaign_runner -- <tasks>` replays a whole small \
         grid and prints every cell.\n"
    );
    md.push_str(&surface.to_markdown());
    out_line!(md, "## Depth crossover under class-saturated payloads\n");
    out_line!(
        md,
        "Under the unsaturated worst-case payload model, packets grow with subtree \
         task counts forever and the flat(ter) tree wins at every scale the front \
         end can still fan to.  With the class-saturated model (knee at {knee} \
         tasks: past the knee, a subtree's packet is bounded by its equivalence-\
         class population, not its task count), per-node ingest stops growing and \
         the per-level latency cost of depth is finally amortised — deep trees \
         overtake the flat-world winner past 16M simulated cores:\n"
    );
    md.push_str(&crossover);
    out_line!(
        md,
        "\nThe crossover is inside the swept range: at 16M tasks the saturated \
         model still agrees with the flat-world pick, at 33M it flips to a deep \
         tree (`tests` pin this in `statbench::sweep` and `tbon::planner`).  \
         Regenerate with `cargo run --release -p stat-bench --bin campaign_surface`."
    );

    let md_path = dir.join("CAMPAIGN.md");
    fs::write(&md_path, &md).expect("write CAMPAIGN.md");
    eprintln!("wrote {}", md_path.display());
    println!("{md}");
}
