//! Ablation: the strcat process-table packing pathology, measured on real data.
fn main() {
    println!("{}", stat_bench::ablation_proctable());
}
