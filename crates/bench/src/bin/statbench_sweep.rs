//! STATBench-style emulation sweeps: scaling over daemon counts and stress over
//! equivalence-class counts, with real merges behind synthetic traces.
use machine::Cluster;
use statbench::{sweep_daemon_counts, sweep_equivalence_classes, SweepConfig};

fn main() {
    let config = SweepConfig::new(Cluster::test_cluster(1_024, 8));
    println!(
        "{}",
        sweep_daemon_counts(&config, &[512, 1_024, 2_048, 4_096, 8_192])
    );
    println!(
        "{}",
        sweep_equivalence_classes(&config, 4_096, &[1, 4, 16, 64, 256])
    );
}
