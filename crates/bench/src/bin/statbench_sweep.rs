//! STATBench-style emulation sweeps: scaling over daemon counts and stress over
//! equivalence-class counts, with real merges behind synthetic traces — plus the
//! fan-in × depth tree-shape sweep the planner runs out past a million cores.
use machine::cluster::BglMode;
use machine::Cluster;
use statbench::{sweep_daemon_counts, sweep_equivalence_classes, sweep_tree_shapes, SweepConfig};

fn main() {
    let config = SweepConfig::new(Cluster::test_cluster(1_024, 8));
    println!(
        "{}",
        sweep_daemon_counts(&config, &[512, 1_024, 2_048, 4_096, 8_192])
    );
    println!(
        "{}",
        sweep_equivalence_classes(&config, 4_096, &[1, 4, 16, 64, 256])
    );
    // The cost-model sweep: the paper's measured scales, the 208K headline point,
    // and the extrapolated machine out to 16M simulated cores.
    println!(
        "{}",
        sweep_tree_shapes(
            &Cluster::bluegene_l(BglMode::VirtualNode),
            &[65_536, 212_992, 1_048_576, 4_194_304, 16_777_216],
        )
    );
}
