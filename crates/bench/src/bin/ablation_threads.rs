//! Ablation: the Section VII threading projection.
fn main() {
    println!("{}", stat_bench::ablation_threads());
}
