//! Regenerates Figure 1: the 3D trace/space/time prefix tree of the 1,024-task ring hang.
fn main() {
    let tasks = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_024);
    let (dot, summary) = stat_bench::fig01_prefix_tree(tasks);
    println!("{summary}");
    println!("{dot}");
}
