//! One regenerator function per figure of the paper.

use appsim::{Application, FrameVocabulary, RingHangApp};
use launch::{
    BglCiodLauncher, CiodPatchLevel, LaunchMonLauncher, Launcher, RemoteShell, RshLauncher,
};
use machine::cluster::{BglMode, Cluster};
use machine::placement::PlacementPlan;
use simkit::stats::SeriesTable;
use stackwalk::sampler::{BinaryPlacement, SamplingConfig, SamplingCostModel};
use stat_core::prelude::*;
use tbon::topology::TreeShape;

/// Figure 1: the 3D trace/space/time call-graph prefix tree of the 1,024-task ring
/// hang, rendered as DOT.  Returns the DOT text plus a one-paragraph summary of the
/// behaviour classes it contains.
pub fn fig01_prefix_tree(tasks: u64) -> (String, String) {
    let app = RingHangApp::new(tasks, FrameVocabulary::BlueGeneL);
    let session = Session::builder(Cluster::bluegene_l(BglMode::CoProcessor))
        .representation(Representation::HierarchicalTaskList)
        .samples_per_task(3)
        .build();
    let result = session.attach(&app).expect("the session merges cleanly");
    let dot = result.gather.to_dot();
    let mut summary = String::new();
    summary.push_str(&format!(
        "{} tasks merged into {} behaviour classes over {} daemons\n",
        tasks,
        result.gather.classes.len(),
        result.daemons
    ));
    for class in &result.gather.classes {
        summary.push_str(&format!(
            "  {}  <- {}\n",
            class.tasks_string(),
            class.path_string(&result.gather.frames)
        ));
    }
    (dot, summary)
}

/// Figure 2: STAT startup time on Atlas, LaunchMON versus MRNet's rsh-based spawner,
/// over a flat 1-to-N topology.
pub fn fig02_startup_atlas() -> SeriesTable {
    let atlas = Cluster::atlas();
    let mut table = SeriesTable::new(
        "Figure 2: STAT startup time on Atlas (flat topology)",
        "daemons",
        "seconds",
    );
    let rsh = RshLauncher::new(RemoteShell::Rsh);
    let launchmon = LaunchMonLauncher::new();
    for daemons in [4u32, 8, 16, 32, 64, 128, 256, 512] {
        let tasks = daemons as u64 * atlas.tasks_per_daemon() as u64;
        let spec = TreeShape::flat(daemons);
        let rsh_est = rsh.startup(&atlas, tasks, &spec);
        // The rsh spawner stops working at 512 daemons; the paper extrapolates its
        // linear trend, so we plot the projected time but note the failure.
        table.push("MRNet rsh", daemons as u64, rsh_est.total().as_secs());
        if !rsh_est.succeeded() {
            table.note(format!(
                "MRNet rsh failed outright at {daemons} daemons (paper: consistent failure at 512); \
                 the plotted value is the projected serial cost"
            ));
        }
        let lm_est = launchmon.startup(&atlas, tasks, &spec);
        table.push("LaunchMON", daemons as u64, lm_est.total().as_secs());
    }
    if let Some(t) = table.value_at("LaunchMON", 512) {
        table.note(format!(
            "LaunchMON launches 512 daemons in {t:.1} s (paper: 5.6 s)"
        ));
    }
    table
}

/// Figure 3: STAT startup time on BG/L for several topologies and modes, before and
/// after the IBM resource-manager patches.
pub fn fig03_startup_bgl() -> SeriesTable {
    let mut table = SeriesTable::new("Figure 3: STAT startup time on BG/L", "tasks", "seconds");
    let node_counts: [u64; 8] = [1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536, 106_496];
    for &mode in &[BglMode::CoProcessor, BglMode::VirtualNode] {
        let cluster = Cluster::bluegene_l(mode);
        for &depth in &[2u32, 3] {
            for &patch in &[CiodPatchLevel::Unpatched, CiodPatchLevel::Patched] {
                let launcher = BglCiodLauncher::new(patch);
                let series = format!("{depth}-deep {} {}", mode.label(), patch.label());
                for &nodes in &node_counts {
                    let tasks = nodes * mode.tasks_per_compute_node() as u64;
                    let plan = PlacementPlan::for_job(&cluster, tasks);
                    let spec = TreeShape::for_placement(&plan, depth);
                    let est = launcher.startup(&cluster, tasks, &spec);
                    if est.succeeded() {
                        table.push(series.clone(), tasks, est.total().as_secs());
                    } else {
                        table.note(format!(
                            "{series}: startup hang at {tasks} tasks (unpatched resource manager)"
                        ));
                    }
                }
            }
        }
    }
    // The headline comparisons the paper calls out.
    let co_tasks = 106_496;
    if let (Some(before), Some(after)) = (
        table.value_at("2-deep CO unpatched", co_tasks),
        table.value_at("2-deep CO patched", co_tasks),
    ) {
        table.note(format!(
            "IBM patches at 104K tasks (2-deep CO): {before:.0} s -> {after:.0} s ({:.1}x, paper: >2x)",
            before / after
        ));
    }
    table
}

fn merge_figure(
    title: &str,
    cluster_modes: &[(Cluster, &str)],
    scales_of: &dyn Fn(&Cluster) -> Vec<u64>,
    representation: Representation,
    depths: &[u32],
) -> SeriesTable {
    let mut table = SeriesTable::new(title, "tasks", "seconds");
    for (cluster, mode_label) in cluster_modes {
        let estimator = PhaseEstimator::new(cluster.clone(), representation);
        for &depth in depths {
            let series = if mode_label.is_empty() {
                format!("{depth}-deep")
            } else {
                format!("{depth}-deep {}", mode_label)
            };
            for tasks in scales_of(cluster) {
                let est = estimator.merge_estimate(tasks, depth);
                match est.failed {
                    None => table.push(series.clone(), tasks, est.time.as_secs()),
                    Some(reason) => table.note(format!("{series} at {tasks} tasks: {reason}")),
                }
            }
        }
    }
    table
}

/// Figure 4: merge time on Atlas with the original (global bit vector)
/// representation, for the three topology families.
pub fn fig04_merge_atlas() -> SeriesTable {
    merge_figure(
        "Figure 4: STAT merge time on Atlas (original bit vector)",
        &[(Cluster::atlas(), "")],
        &|c| {
            c.figure_scales()
                .into_iter()
                .filter(|&t| t <= 4_096)
                .collect()
        },
        Representation::GlobalBitVector,
        &[1, 2, 3],
    )
}

/// Figure 5: merge time on BG/L with the original representation; the 1-deep tree
/// fails past 256 I/O nodes and the deeper trees still scale linearly because every
/// edge label is a job-wide bit vector.
pub fn fig05_merge_bgl() -> SeriesTable {
    let mut table = merge_figure(
        "Figure 5: STAT merge time on BG/L (original bit vector)",
        &[
            (Cluster::bluegene_l(BglMode::CoProcessor), "CO"),
            (Cluster::bluegene_l(BglMode::VirtualNode), "VN"),
        ],
        &|c| c.figure_scales(),
        Representation::GlobalBitVector,
        &[1, 2, 3],
    );
    for kind in ["2-deep CO", "2-deep VN"] {
        if let Some(slope) = table.loglog_slope(kind) {
            table.note(format!(
                "{kind}: log-log slope {slope:.2} (≈1 means the linear scaling the paper observed)"
            ));
        }
    }
    table
}

/// Figure 6: the didactic 4-task / 2-daemon bit-vector example, as a table of bytes
/// rather than a drawing: what each daemon stores and sends under each
/// representation, and what the remap produces.
pub fn fig06_bitvector_demo() -> SeriesTable {
    use stat_core::taskset::{DenseBitVector, SubtreeTaskList, TaskSetOps};
    let mut table = SeriesTable::new(
        "Figure 6: original vs optimized task-set representation (4 tasks, 2 daemons)",
        "daemon",
        "bits per edge label (and useful bits among them)",
    );
    // Daemon 0 debugs ranks {0, 2}; daemon 1 debugs ranks {1, 3} (Figure 6's layout).
    for daemon in 0..2u64 {
        let mut original = DenseBitVector::empty(4);
        let mut optimized = SubtreeTaskList::empty(2);
        for local in 0..2u64 {
            let rank = daemon + 2 * local;
            original.insert(rank);
            optimized.insert(local);
        }
        table.push("original bits stored", daemon, original.width() as f64);
        table.push("original bits that matter", daemon, original.count() as f64);
        table.push("optimized bits stored", daemon, optimized.width() as f64);
        table.push(
            "optimized bits that matter",
            daemon,
            optimized.count() as f64,
        );
    }
    table.note(
        "original: every daemon stores one bit per task of the whole job (white boxes in \
         the paper's Figure 6 are wasted bits)"
            .to_string(),
    );
    table.note(
        "optimized: each daemon stores bits only for its own tasks; the front end remaps \
         concatenated positions [d0t0,d0t1,d1t0,d1t1] back to MPI ranks [0,2,1,3]"
            .to_string(),
    );
    table
}

/// Figure 7: merge time on BG/L with the optimised (hierarchical) representation
/// versus the original, plus the remap cost called out in Section V-C.
pub fn fig07_merge_optimized() -> SeriesTable {
    let mut table = SeriesTable::new(
        "Figure 7: optimized vs original bit vector merge time on BG/L (2-deep)",
        "tasks",
        "seconds",
    );
    for &mode in &[BglMode::CoProcessor, BglMode::VirtualNode] {
        let cluster = Cluster::bluegene_l(mode);
        for (representation, label) in [
            (Representation::GlobalBitVector, "original"),
            (Representation::HierarchicalTaskList, "optimized"),
        ] {
            let estimator = PhaseEstimator::new(cluster.clone(), representation);
            let series = format!("{label} {}", mode.label());
            for tasks in cluster.figure_scales() {
                let est = estimator.merge_estimate(tasks, 2);
                if est.failed.is_none() {
                    table.push(series.clone(), tasks, est.time.as_secs());
                }
            }
        }
    }
    for series in ["original VN", "optimized VN"] {
        if let Some(slope) = table.loglog_slope(series) {
            table.note(format!("{series}: log-log slope {slope:.2}"));
        }
    }
    // Remap cost: the model's estimate and a real measurement at 208K positions
    // (shrunk under `STATBENCH_FAST` so the unit suite stays fast).
    let estimator = PhaseEstimator::new(
        Cluster::bluegene_l(BglMode::VirtualNode),
        Representation::HierarchicalTaskList,
    );
    table.note(format!(
        "remap estimate at 208K tasks: {:.2} s (paper: 0.66 s)",
        estimator.remap_estimate(208_000).as_secs()
    ));
    let remap_tasks = crate::scaled(212_992, 8_192);
    table.note(format!(
        "real remap of a {remap_tasks}-position merged tree on this host: {:.3} s",
        measure_real_remap(remap_tasks)
    ));
    table
}

/// Really build and remap a full-scale merged subtree tree, returning seconds.
fn measure_real_remap(tasks: u64) -> f64 {
    use stat_core::taskset::TaskSetOps;
    // A merged tree shaped like the ring hang: ~14 levels of shared spine plus the
    // class split; every task appears on ~14 edges.
    let mut table = stackwalk::FrameTable::new();
    let app = RingHangApp::new(tasks, FrameVocabulary::BlueGeneL);
    let mut tree = stat_core::graph::SubtreePrefixTree::new_subtree(tasks);
    // Build directly (one trace per task) — this is the front end's input shape.
    let mut walker = stackwalk::Walker::new();
    for rank in 0..tasks {
        let path = app.main_thread_path(rank, 0);
        let trace = walker.walk(&mut table, &path);
        tree.add_trace(&trace, rank);
    }
    let position_to_rank: Vec<u64> = (0..tasks).rev().collect();
    let start = std::time::Instant::now();
    let remapped = tree.remap(&position_to_rank, tasks);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(remapped.tasks(remapped.root()).count(), tasks);
    elapsed
}

/// Figure 8: sampling time on Atlas with a flat topology and binaries on NFS, before
/// the OS update (the configuration the paper first measured).
pub fn fig08_sampling_atlas() -> SeriesTable {
    let mut table = SeriesTable::new(
        "Figure 8: STAT sampling time on Atlas (binaries on NFS, pre-OS-update)",
        "tasks",
        "seconds",
    );
    let cfg = SamplingConfig {
        pre_os_update: true,
        ..SamplingConfig::default()
    };
    let model = SamplingCostModel::new(Cluster::atlas()).with_config(cfg);
    for tasks in [64u64, 128, 256, 512, 1_024, 2_048, 4_096] {
        let est = model.estimate(tasks, BinaryPlacement::NfsHome, 42 + tasks);
        table.push("NFS (flat 1-to-N)", tasks, est.total.as_secs());
    }
    if let Some(slope) = table.loglog_slope("NFS (flat 1-to-N)") {
        table.note(format!(
            "log-log slope {slope:.2}: slightly worse than linear once the file server saturates"
        ));
    }
    table
}

/// Figure 9: sampling time on BG/L up to 212,992 tasks, with the run-to-run
/// variation the paper observed between nominally identical configurations.
pub fn fig09_sampling_bgl() -> SeriesTable {
    let mut table = SeriesTable::new("Figure 9: STAT sampling time on BG/L", "tasks", "seconds");
    for &mode in &[BglMode::CoProcessor, BglMode::VirtualNode] {
        let cluster = Cluster::bluegene_l(mode);
        let model = SamplingCostModel::new(cluster.clone());
        // The paper runs each topology as a separate job; the topology does not change
        // what the daemons do locally, but each run sees different file-server load,
        // which is where the >20% (occasionally 2x) spread comes from.  Different
        // seeds per series model exactly that.
        for (depth, seed) in [(2u32, 11u64), (3, 1215)] {
            let series = format!("{depth}-deep {}", mode.label());
            for tasks in cluster.figure_scales() {
                let est = model.estimate(tasks, BinaryPlacement::NfsHome, seed ^ tasks);
                table.push(series.clone(), tasks, est.total.as_secs());
            }
        }
    }
    let vn2 = table.value_at("2-deep VN", 212_992);
    let vn3 = table.value_at("3-deep VN", 212_992);
    if let (Some(a), Some(b)) = (vn2, vn3) {
        table.note(format!(
            "two nominally identical VN runs at 212,992 tasks differ by {:.2}x (paper saw >2x)",
            a.max(b) / a.min(b)
        ));
    }
    table
}

/// Figure 10: sampling time on Atlas with the SBRS prototype: NFS vs Lustre vs
/// binaries relocated to RAM disks, plus the measured relocation overhead.
pub fn fig10_sampling_sbrs() -> SeriesTable {
    let atlas = Cluster::atlas();
    let mut table = SeriesTable::new(
        "Figure 10: STAT sampling time on Atlas with the binary relocation service",
        "tasks",
        "seconds",
    );
    let model = SamplingCostModel::new(atlas.clone());
    for tasks in [64u64, 128, 256, 512, 1_024] {
        for placement in [
            BinaryPlacement::NfsHome,
            BinaryPlacement::LustreScratch,
            BinaryPlacement::RelocatedRamDisk,
        ] {
            let est = model.estimate(tasks, placement, 7 + tasks);
            table.push(placement.label(), tasks, est.total.as_secs());
        }
    }
    // The SBRS overhead itself, on the paper's exact configuration.
    let service = sbrs::RelocationService::new(atlas.clone());
    let two_files = vec![
        stackwalk::symtab::BinaryImage::new("/g/g0/user/ring_test", 10 * 1024),
        stackwalk::symtab::BinaryImage::new("/g/g0/user/lib/libmpi.so", 4 * 1024 * 1024),
    ];
    let plan = sbrs::RelocationPlan::for_working_set(&atlas, &two_files);
    let outcome = service.execute(&plan, 128);
    table.note(format!(
        "SBRS relocation of 10 KB + 4 MB to 128 nodes: {:.3} s (paper: 0.088 s)",
        outcome.relocation_overhead().as_secs()
    ));
    if let Some(g) = table.growth_factor("SBRS (RAM disk)") {
        table.note(format!(
            "relocated sampling grows only {g:.2}x from 64 to 1,024 tasks (paper: constant ≈2 s)"
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_reproduces_the_ring_hang_classes() {
        let (dot, summary) = fig01_prefix_tree(256);
        assert!(dot.contains("do_SendOrStall"));
        assert!(summary.contains("3 behaviour classes"));
    }

    #[test]
    fn figure_2_shows_the_launchmon_win() {
        let table = fig02_startup_atlas();
        let rsh = table.value_at("MRNet rsh", 256).unwrap();
        let lm = table.value_at("LaunchMON", 256).unwrap();
        assert!(rsh / lm > 5.0);
        assert!(table
            .notes()
            .iter()
            .any(|n| n.contains("failed outright at 512")));
    }

    #[test]
    fn figure_4_and_5_shapes() {
        let atlas = fig04_merge_atlas();
        // 1-deep merge at 4,096 tasks stays under a second on Atlas (paper: <0.5 s).
        assert!(atlas.value_at("1-deep", 4_096).unwrap() < 1.0);
        let bgl = fig05_merge_bgl();
        // The 1-deep series stops before the largest scales (it fails at 256 daemons).
        assert!(bgl.value_at("1-deep CO", 106_496).is_none());
        assert!(bgl.value_at("2-deep CO", 106_496).is_some());
    }

    #[test]
    fn figure_7_optimized_beats_original_at_scale() {
        let table = fig07_merge_optimized();
        let orig = table.value_at("original VN", 212_992).unwrap();
        let opt = table.value_at("optimized VN", 212_992).unwrap();
        assert!(
            orig / opt > 3.0,
            "expected a large gap, got {orig} vs {opt}"
        );
    }

    #[test]
    fn figure_10_relocated_sampling_is_flat() {
        let table = fig10_sampling_sbrs();
        let g = table.growth_factor("SBRS (RAM disk)").unwrap();
        assert!(g < 1.6);
        let nfs = table.growth_factor("NFS").unwrap();
        assert!(nfs > 2.0);
    }
}
