//! # stat-bench — figure regenerators and benchmark harnesses
//!
//! One function per figure of the paper's evaluation, each returning a
//! [`simkit::stats::SeriesTable`] whose rows are the same series the paper plots.
//! The binaries in `src/bin/` print these tables (and `make_all` writes them under
//! `results/`), and the Criterion benches in `benches/` measure the real data
//! structures and filters that the small-scale points of the figures execute.
//!
//! Absolute numbers are not expected to match the 2008 hardware; what the harness
//! checks — and what EXPERIMENTS.md records — is the *shape*: which configuration
//! wins, by roughly what factor, and where failures and crossovers occur.

#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod figures;

/// True when the `STATBENCH_FAST` environment variable is set (to anything but
/// `0` or the empty string): the figure generators shrink their largest scales so
/// the unit-test suite fits in CI time instead of re-running the full 212,992-task
/// campaign.  `results/BENCH_merge.md` records the suite wall time both ways.
pub fn fast_mode() -> bool {
    std::env::var("STATBENCH_FAST")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// `full` normally, `fast` under [`fast_mode`] — the one-line knob the figure
/// generators scale themselves with.
pub fn scaled(full: u64, fast: u64) -> u64 {
    if fast_mode() {
        fast
    } else {
        full
    }
}

pub use figures::{
    fig01_prefix_tree, fig02_startup_atlas, fig03_startup_bgl, fig04_merge_atlas, fig05_merge_bgl,
    fig06_bitvector_demo, fig07_merge_optimized, fig08_sampling_atlas, fig09_sampling_bgl,
    fig10_sampling_sbrs,
};

pub use ablations::{ablation_bitvector, ablation_proctable, ablation_threads, ablation_topology};
