//! # stat-bench — figure regenerators and benchmark harnesses
//!
//! One function per figure of the paper's evaluation, each returning a
//! [`simkit::stats::SeriesTable`] whose rows are the same series the paper plots.
//! The binaries in `src/bin/` print these tables (and `make_all` writes them under
//! `results/`), and the Criterion benches in `benches/` measure the real data
//! structures and filters that the small-scale points of the figures execute.
//!
//! Absolute numbers are not expected to match the 2008 hardware; what the harness
//! checks — and what EXPERIMENTS.md records — is the *shape*: which configuration
//! wins, by roughly what factor, and where failures and crossovers occur.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablations;
pub mod figures;

pub use figures::{
    fig01_prefix_tree, fig02_startup_atlas, fig03_startup_bgl, fig04_merge_atlas, fig05_merge_bgl,
    fig06_bitvector_demo, fig07_merge_optimized, fig08_sampling_atlas, fig09_sampling_bgl,
    fig10_sampling_sbrs,
};

pub use ablations::{ablation_bitvector, ablation_proctable, ablation_threads, ablation_topology};
