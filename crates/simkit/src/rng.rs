//! Deterministic pseudo-randomness.
//!
//! The environment models need small amounts of randomness — run-to-run jitter on NFS
//! service times, the >20% variation the paper observed between "identical" BG/L
//! sampling runs, randomised daemon→rank mappings for the remap experiment.  All of it
//! flows through [`DeterministicRng`], a thin wrapper around a SplitMix64/xoshiro-style
//! generator with convenience samplers, so that every experiment is reproducible from
//! a single seed printed in its output.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random number generator with the samplers the models need.
#[derive(Clone, Debug)]
pub struct DeterministicRng {
    inner: StdRng,
    seed: u64,
}

impl DeterministicRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DeterministicRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with (recorded in experiment output).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator; used to give each daemon or node its own
    /// stream so that adding one actor does not perturb every other actor's draws.
    pub fn fork(&mut self, stream: u64) -> DeterministicRng {
        // Mix the parent's seed with the stream id through SplitMix64 so forked
        // streams are decorrelated even for consecutive stream ids.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DeterministicRng::new(z)
    }

    /// Uniform draw in `[lo, hi)`.  Returns `lo` if the interval is empty/inverted.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer draw in `[lo, hi)`.  Returns `lo` if the interval is empty.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// A multiplicative jitter factor in `[1 - spread, 1 + spread]`, clamped to stay
    /// positive.  `spread = 0.2` reproduces the ±20% run-to-run variation the paper
    /// reports for BG/L sampling.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        let spread = spread.clamp(0.0, 0.99);
        self.uniform(1.0 - spread, 1.0 + spread)
    }

    /// Exponentially distributed draw with the given mean (M/M/c-style service noise).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n`, used for daemon→rank mappings.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

impl RngCore for DeterministicRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(99);
        let mut b = DeterministicRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let mut parent1 = DeterministicRng::new(5);
        let mut parent2 = DeterministicRng::new(5);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut c3 = parent1.fork(4);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DeterministicRng::new(7);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform(5.0, 1.0), 5.0);
    }

    #[test]
    fn jitter_stays_within_spread() {
        let mut rng = DeterministicRng::new(11);
        for _ in 0..1000 {
            let j = rng.jitter(0.2);
            assert!((0.8..=1.2).contains(&j));
        }
        // degenerate spreads do not panic
        assert!(rng.jitter(0.0) == 1.0);
        let extreme = rng.jitter(5.0);
        assert!(extreme > 0.0);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = DeterministicRng::new(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DeterministicRng::new(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = DeterministicRng::new(19);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            p,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut rng = DeterministicRng::new(23);
        let mut empty: Vec<u8> = vec![];
        rng.shuffle(&mut empty);
        let mut one = vec![42];
        rng.shuffle(&mut one);
        assert_eq!(one, vec![42]);
    }
}
