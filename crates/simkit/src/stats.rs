//! Statistics collectors and result tables.
//!
//! Every experiment in the paper is presented as a scaling curve: an x-axis of task
//! or node counts and one line per configuration.  [`SeriesTable`] is the common
//! output format all figure generators produce; it renders to an aligned text table
//! and to CSV so EXPERIMENTS.md and downstream plotting can both consume it.

use std::collections::BTreeMap;
use std::fmt;

/// Streaming accumulator for mean / min / max / variance without storing samples.
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add a sample (Welford's online algorithm).
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bucket histogram over non-negative values (queue waits, latencies).
#[derive(Clone, Debug)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    acc: Accumulator,
}

impl Histogram {
    /// A histogram with `buckets` buckets of `bucket_width` each; values beyond the
    /// last bucket are counted in an overflow bin.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        Histogram {
            bucket_width: bucket_width.max(f64::MIN_POSITIVE),
            buckets: vec![0; buckets.max(1)],
            overflow: 0,
            acc: Accumulator::new(),
        }
    }

    /// Record a value (negative values clamp to the first bucket).
    pub fn add(&mut self, value: f64) {
        self.acc.add(value);
        let v = value.max(0.0);
        let idx = (v / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.acc.count()
    }

    /// The underlying accumulator (mean/min/max/stddev).
    pub fn summary(&self) -> &Accumulator {
        &self.acc
    }

    /// Approximate quantile from the bucket midpoints (q in [0, 1]).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as f64 + 0.5) * self.bucket_width;
            }
        }
        self.acc.max()
    }

    /// Number of values that exceeded the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

/// One measured point of a scaling curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// The x value (task count, daemon count, node count).
    pub x: u64,
    /// The y value (seconds, bytes, ...).
    pub y: f64,
}

/// A named collection of scaling curves sharing an x-axis, i.e. one paper figure.
#[derive(Clone, Debug, Default)]
pub struct SeriesTable {
    title: String,
    x_label: String,
    y_label: String,
    series: BTreeMap<String, Vec<SeriesPoint>>,
    notes: Vec<String>,
}

impl SeriesTable {
    /// Create a table with axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        SeriesTable {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: BTreeMap::new(),
            notes: Vec::new(),
        }
    }

    /// The figure/table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Append a point to a named series (created on first use).
    pub fn push(&mut self, series: impl Into<String>, x: u64, y: f64) {
        self.series
            .entry(series.into())
            .or_default()
            .push(SeriesPoint { x, y });
    }

    /// Attach a free-form annotation (e.g. "remap at 208K tasks: 0.66 s").
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The annotations attached so far.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Names of all series, in sorted order.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Points of one series.
    pub fn series(&self, name: &str) -> Option<&[SeriesPoint]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// The y value of a series at a given x, if measured.
    pub fn value_at(&self, name: &str, x: u64) -> Option<f64> {
        self.series
            .get(name)?
            .iter()
            .find(|p| p.x == x)
            .map(|p| p.y)
    }

    /// All distinct x values across every series, sorted.
    pub fn x_values(&self) -> Vec<u64> {
        let mut xs: Vec<u64> = self
            .series
            .values()
            .flat_map(|pts| pts.iter().map(|p| p.x))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        xs
    }

    /// Render as CSV: `x,series1,series2,...` with empty cells for missing points.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let names = self.series_names();
        out.push_str(&self.x_label);
        for n in &names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for x in self.x_values() {
            out.push_str(&x.to_string());
            for n in &names {
                out.push(',');
                if let Some(v) = self.value_at(n, x) {
                    out.push_str(&format!("{v:.6}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Least-squares slope of log2(y) against log2(x) for one series: ≈1 for linear
    /// scaling, ≈0 for constant, and between 0 and ~0.5 for logarithmic-ish curves.
    /// Used by tests and EXPERIMENTS.md to characterise curve shapes.
    pub fn loglog_slope(&self, name: &str) -> Option<f64> {
        let pts = self.series.get(name)?;
        let usable: Vec<(f64, f64)> = pts
            .iter()
            .filter(|p| p.x > 0 && p.y > 0.0)
            .map(|p| ((p.x as f64).log2(), p.y.log2()))
            .collect();
        if usable.len() < 2 {
            return None;
        }
        let n = usable.len() as f64;
        let sx: f64 = usable.iter().map(|(x, _)| *x).sum();
        let sy: f64 = usable.iter().map(|(_, y)| *y).sum();
        let sxx: f64 = usable.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = usable.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some((n * sxy - sx * sy) / denom)
    }

    /// Ratio of the largest-x y value to the smallest-x y value of a series.
    /// A constant-time curve has a growth factor near 1.
    pub fn growth_factor(&self, name: &str) -> Option<f64> {
        let pts = self.series.get(name)?;
        if pts.len() < 2 {
            return None;
        }
        let first = pts.iter().min_by_key(|p| p.x)?;
        let last = pts.iter().max_by_key(|p| p.x)?;
        if first.y <= 0.0 {
            return None;
        }
        Some(last.y / first.y)
    }
}

impl fmt::Display for SeriesTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let names = self.series_names();
        write!(f, "{:>12}", self.x_label)?;
        for n in &names {
            write!(f, "  {n:>22}")?;
        }
        writeln!(f)?;
        for x in self.x_values() {
            write!(f, "{x:>12}")?;
            for n in &names {
                match self.value_at(n, x) {
                    Some(v) => write!(f, "  {v:>22.4}")?,
                    None => write!(f, "  {:>22}", "-")?,
                }
            }
            writeln!(f)?;
        }
        if !self.y_label.is_empty() {
            writeln!(f, "(y axis: {})", self.y_label)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic_moments() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.variance() - 4.0).abs() < 1e-9);
        assert!((a.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn empty_accumulator_is_all_zeroes() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_accumulation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() + 2.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.add(1.0);
        a.add(3.0);
        let before = a.clone();
        a.merge(&Accumulator::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Accumulator::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(1.0, 10);
        for v in 0..10 {
            h.add(v as f64 + 0.1);
        }
        h.add(100.0); // overflow
        assert_eq!(h.count(), 11);
        assert_eq!(h.overflow(), 1);
        let median = h.quantile(0.5);
        assert!((3.0..=6.0).contains(&median), "median was {median}");
        assert_eq!(Histogram::new(1.0, 4).quantile(0.5), 0.0);
    }

    #[test]
    fn series_table_round_trips() {
        let mut t = SeriesTable::new("Figure X", "tasks", "seconds");
        t.push("1-deep", 8, 1.0);
        t.push("1-deep", 16, 2.0);
        t.push("2-deep", 8, 0.9);
        t.note("example note");
        assert_eq!(t.value_at("1-deep", 16), Some(2.0));
        assert_eq!(t.value_at("2-deep", 16), None);
        assert_eq!(t.x_values(), vec![8, 16]);
        let csv = t.to_csv();
        assert!(csv.starts_with("tasks,1-deep,2-deep"));
        assert!(csv.contains("16,2.000000,"));
        let rendered = format!("{t}");
        assert!(rendered.contains("Figure X"));
        assert!(rendered.contains("example note"));
    }

    #[test]
    fn loglog_slope_classifies_shapes() {
        let mut t = SeriesTable::new("shapes", "n", "s");
        for k in 1..=8u32 {
            let n = 1u64 << k;
            t.push("linear", n, n as f64 * 0.01);
            t.push("constant", n, 2.0);
            t.push("log", n, (n as f64).log2());
        }
        let lin = t.loglog_slope("linear").unwrap();
        let con = t.loglog_slope("constant").unwrap();
        let log = t.loglog_slope("log").unwrap();
        assert!((lin - 1.0).abs() < 0.05, "linear slope {lin}");
        assert!(con.abs() < 0.05, "constant slope {con}");
        assert!(log > 0.1 && log < 0.8, "log slope {log}");
    }

    #[test]
    fn growth_factor_detects_flat_curves() {
        let mut t = SeriesTable::new("flat", "n", "s");
        t.push("flat", 10, 2.0);
        t.push("flat", 1000, 2.2);
        let g = t.growth_factor("flat").unwrap();
        assert!(g < 1.5);
        assert!(t.growth_factor("missing").is_none());
    }
}
