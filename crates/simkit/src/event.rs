//! Events and the event log.
//!
//! The engine deals in a small, closed vocabulary of event kinds rather than boxed
//! closures.  This keeps the engine allocation-light, makes the event trace printable
//! and diffable (important when comparing unpatched vs. patched resource-manager
//! models), and sidesteps the borrow-checker gymnastics of self-scheduling closures.

use crate::resource::ResourceId;
use crate::time::{SimDuration, SimTime};

/// Opaque identifier of an actor in a model (a daemon, a node, an MPI task, ...).
/// The engine does not interpret it; models use it to correlate completions.
pub type ActorId = u64;

/// What an event does when it fires.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// An actor asks a resource for `service` worth of service time.  The request is
    /// queued according to the resource's policy and a [`EventKind::Completion`] is
    /// emitted when the service finishes.
    Request {
        /// Resource being requested.
        resource: ResourceId,
        /// Requesting actor.
        actor: ActorId,
        /// Amount of service time consumed once the request reaches a server slot.
        service: SimDuration,
    },
    /// Emitted by the engine when a previously queued request finishes service.
    Completion {
        /// Resource that completed the request.
        resource: ResourceId,
        /// Actor whose request completed.
        actor: ActorId,
        /// How long the request waited in the queue before service began.
        queued_for: SimDuration,
    },
    /// A pure time marker: nothing happens, but the event appears in the log.  Models
    /// use markers to timestamp phase boundaries (e.g. "all daemons connected").
    Marker {
        /// Free-form label recorded in the event log.
        label: &'static str,
        /// Actor associated with the marker.
        actor: ActorId,
    },
    /// Fires a model callback registered with [`crate::engine::Simulation::add_process`].
    Wakeup {
        /// Index of the process to wake.
        process: usize,
        /// Actor on whose behalf the wakeup was scheduled.
        actor: ActorId,
    },
}

/// An event scheduled to fire at a particular virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor for a resource request fired immediately.
    pub fn request(resource: ResourceId, actor: ActorId, service: SimDuration) -> EventKind {
        EventKind::Request {
            resource,
            actor,
            service,
        }
    }

    /// Convenience constructor for a phase marker.
    pub fn marker(label: &'static str, actor: ActorId) -> EventKind {
        EventKind::Marker { label, actor }
    }

    /// Convenience constructor for a process wakeup.
    pub fn wakeup(process: usize, actor: ActorId) -> EventKind {
        EventKind::Wakeup { process, actor }
    }
}

/// A record of one fired event, kept by the [`EventLog`].
#[derive(Clone, Debug, PartialEq)]
pub struct LoggedEvent {
    /// Virtual time at which the event fired.
    pub at: SimTime,
    /// Monotonic sequence number (firing order).
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// An append-only log of fired events.
///
/// Logging every event of a 200K-actor model would be wasteful, so the log can be
/// switched off (the default for large runs) or restricted to markers and completions.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    entries: Vec<LoggedEvent>,
    policy: LogPolicy,
}

/// Which events the log retains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LogPolicy {
    /// Keep nothing (cheapest; the run report still carries aggregate statistics).
    #[default]
    Nothing,
    /// Keep only [`EventKind::Marker`] events.
    MarkersOnly,
    /// Keep markers and completions.
    MarkersAndCompletions,
    /// Keep everything (tests and small didactic runs).
    Everything,
}

impl EventLog {
    /// Create a log with the given retention policy.
    pub fn with_policy(policy: LogPolicy) -> Self {
        EventLog {
            entries: Vec::new(),
            policy,
        }
    }

    /// Record a fired event, subject to the retention policy.
    pub fn record(&mut self, at: SimTime, seq: u64, kind: &EventKind) {
        let keep = match self.policy {
            LogPolicy::Nothing => false,
            LogPolicy::MarkersOnly => matches!(kind, EventKind::Marker { .. }),
            LogPolicy::MarkersAndCompletions => matches!(
                kind,
                EventKind::Marker { .. } | EventKind::Completion { .. }
            ),
            LogPolicy::Everything => true,
        };
        if keep {
            self.entries.push(LoggedEvent {
                at,
                seq,
                kind: kind.clone(),
            });
        }
    }

    /// All retained entries, in firing order.
    pub fn entries(&self) -> &[LoggedEvent] {
        &self.entries
    }

    /// The time of the first marker with the given label, if any.
    pub fn marker_time(&self, wanted: &str) -> Option<SimTime> {
        self.entries.iter().find_map(|e| match &e.kind {
            EventKind::Marker { label, .. } if *label == wanted => Some(e.at),
            _ => None,
        })
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_policy_filters_events() {
        let marker = EventKind::Marker {
            label: "phase",
            actor: 1,
        };
        let completion = EventKind::Completion {
            resource: ResourceId(0),
            actor: 1,
            queued_for: SimDuration::ZERO,
        };
        let request = EventKind::Request {
            resource: ResourceId(0),
            actor: 1,
            service: SimDuration::from_millis(1.0),
        };

        let mut log = EventLog::with_policy(LogPolicy::MarkersOnly);
        log.record(SimTime::ZERO, 0, &marker);
        log.record(SimTime::ZERO, 1, &completion);
        log.record(SimTime::ZERO, 2, &request);
        assert_eq!(log.len(), 1);

        let mut log = EventLog::with_policy(LogPolicy::MarkersAndCompletions);
        log.record(SimTime::ZERO, 0, &marker);
        log.record(SimTime::ZERO, 1, &completion);
        log.record(SimTime::ZERO, 2, &request);
        assert_eq!(log.len(), 2);

        let mut log = EventLog::with_policy(LogPolicy::Everything);
        log.record(SimTime::ZERO, 0, &marker);
        log.record(SimTime::ZERO, 1, &completion);
        log.record(SimTime::ZERO, 2, &request);
        assert_eq!(log.len(), 3);

        let mut log = EventLog::with_policy(LogPolicy::Nothing);
        log.record(SimTime::ZERO, 0, &marker);
        assert!(log.is_empty());
    }

    #[test]
    fn marker_time_finds_first_occurrence() {
        let mut log = EventLog::with_policy(LogPolicy::Everything);
        log.record(
            SimTime::from_secs(1.0),
            0,
            &EventKind::Marker {
                label: "a",
                actor: 0,
            },
        );
        log.record(
            SimTime::from_secs(2.0),
            1,
            &EventKind::Marker {
                label: "b",
                actor: 0,
            },
        );
        log.record(
            SimTime::from_secs(3.0),
            2,
            &EventKind::Marker {
                label: "a",
                actor: 0,
            },
        );
        assert_eq!(log.marker_time("a"), Some(SimTime::from_secs(1.0)));
        assert_eq!(log.marker_time("b"), Some(SimTime::from_secs(2.0)));
        assert_eq!(log.marker_time("c"), None);
    }
}
