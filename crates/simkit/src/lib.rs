//! # simkit — a deterministic discrete-event simulation engine
//!
//! The STAT reproduction executes its *algorithms* (prefix-tree merging, task-set
//! algebra, filter reductions) for real, but the *environment* the original tool ran
//! in — a 104-rack BlueGene/L, an 1,152-node Infiniband cluster, NFS and Lustre file
//! servers, rsh daemons, resource managers — is modelled.  `simkit` is the substrate
//! those models are built on: a small, fully deterministic discrete-event simulator.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.**  Two runs with the same seed and the same schedule of calls
//!    produce bit-identical virtual timelines.  All tie-breaking between simultaneous
//!    events uses a monotonically increasing sequence number, never pointer identity
//!    or hash-map iteration order.
//! 2. **Analysability.**  The engine exposes the full event trace and per-resource
//!    queueing statistics so that the figure generators can report utilisation and
//!    contention alongside latency.
//! 3. **No global state.**  Everything hangs off an explicit [`engine::Simulation`]
//!    value; tests can run thousands of tiny simulations in parallel under the normal
//!    test harness.
//!
//! The engine is intentionally synchronous and single-threaded: the workloads we model
//! (launching daemons, queueing on a file server, broadcasting a binary) involve at
//! most a few hundred thousand events per experiment, far below the point where a
//! parallel discrete-event engine would pay off, and a single-threaded engine keeps
//! repeatability trivial.
//!
//! ```
//! use simkit::prelude::*;
//!
//! let mut sim = Simulation::new(42);
//! // A file server that serves one request at a time, 1 ms per request.
//! let server = sim.add_resource(Resource::fifo("nfs", 1));
//! for client in 0..4 {
//!     sim.schedule(SimTime::ZERO, Event::request(server, client, SimDuration::from_millis(1.0)));
//! }
//! let report = sim.run();
//! assert_eq!(report.completed_requests, 4);
//! assert!(sim.now() >= SimTime::from_millis(4.0));
//! ```

#![warn(rust_2018_idioms)]

pub mod engine;
pub mod event;
pub mod model;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenience re-exports used by nearly every consumer of the crate.
pub mod prelude {
    pub use crate::engine::{RunReport, Simulation};
    pub use crate::event::{Event, EventKind, EventLog};
    pub use crate::model::{CostModel, LinearCost, QuadraticCost};
    pub use crate::resource::{Resource, ResourceId, ResourcePolicy};
    pub use crate::rng::DeterministicRng;
    pub use crate::stats::{Accumulator, Histogram, SeriesPoint, SeriesTable};
    pub use crate::time::{SimDuration, SimTime};
}

pub use prelude::*;
